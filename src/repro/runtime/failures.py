"""Failure schedules and injection.

In the demo, conference attendees pick which partitions to fail and in
which iterations via the GUI. Programmatically this is a
:class:`FailureSchedule` — a set of :class:`FailureEvent` entries, each
naming a superstep and the workers to kill at the end of that superstep's
compute phase. Random schedules (for the robustness experiments) are
generated with an explicit seed so every run is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConfigError


@dataclass(frozen=True)
class FailureEvent:
    """Kill ``worker_ids`` during superstep ``superstep`` (0-based).

    The failure takes effect after the superstep's compute phase but
    before its results are committed, so the state produced in that
    superstep on the failed workers is lost — the scenario §2.2 of the
    paper describes.
    """

    superstep: int
    worker_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ConfigError(f"failure superstep must be >= 0, got {self.superstep}")
        if not self.worker_ids:
            raise ConfigError("a failure event must name at least one worker")
        object.__setattr__(self, "worker_ids", tuple(sorted(set(self.worker_ids))))


@dataclass
class FailureSchedule:
    """An ordered collection of failure events."""

    events: list[FailureEvent] = field(default_factory=list)

    @classmethod
    def none(cls) -> "FailureSchedule":
        """A failure-free schedule."""
        return cls([])

    @classmethod
    def single(cls, superstep: int, worker_ids: Iterable[int]) -> "FailureSchedule":
        """One failure at ``superstep`` killing ``worker_ids``."""
        return cls([FailureEvent(superstep, tuple(worker_ids))])

    @classmethod
    def at(cls, *events: tuple[int, Iterable[int]]) -> "FailureSchedule":
        """Build from ``(superstep, worker_ids)`` pairs."""
        return cls([FailureEvent(step, tuple(ids)) for step, ids in events])

    @classmethod
    def random(
        cls,
        num_workers: int,
        max_superstep: int,
        num_failures: int,
        seed: int,
        workers_per_failure: int = 1,
    ) -> "FailureSchedule":
        """A reproducible random schedule.

        Picks ``num_failures`` distinct supersteps in
        ``[1, max_superstep]`` and, for each, a random subset of
        ``workers_per_failure`` workers. Superstep 0 is excluded so that a
        run always completes at least one full iteration before the first
        failure, matching the demo's scenarios.
        """
        if num_failures < 0:
            raise ConfigError(f"num_failures must be >= 0, got {num_failures}")
        if workers_per_failure < 1 or workers_per_failure > num_workers:
            raise ConfigError(
                f"workers_per_failure must be in [1, {num_workers}], got {workers_per_failure}"
            )
        if num_failures > max_superstep:
            raise ConfigError(
                f"cannot place {num_failures} failures in supersteps 1..{max_superstep}"
            )
        rng = random.Random(seed)
        steps = rng.sample(range(1, max_superstep + 1), num_failures)
        events = [
            FailureEvent(step, tuple(rng.sample(range(num_workers), workers_per_failure)))
            for step in sorted(steps)
        ]
        return cls(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_superstep(self, superstep: int) -> list[FailureEvent]:
        """Events scheduled for ``superstep``."""
        return [event for event in self.events if event.superstep == superstep]

    def max_superstep(self) -> int:
        """Largest superstep with a scheduled failure (``-1`` if none)."""
        return max((event.superstep for event in self.events), default=-1)


class FailureInjector:
    """Drives a :class:`FailureSchedule` during a run.

    The iteration drivers ask :meth:`pop` once per superstep. Events fire
    exactly once: re-running the same injector object continues from where
    it stopped, so drivers create a fresh injector per run. When the
    iteration restarts from scratch (restart recovery), already-fired
    events do not fire again — the machines are already dead.
    """

    def __init__(self, schedule: FailureSchedule):
        self.schedule = schedule
        self._fired: set[int] = set()
        # Pre-index events by superstep so pop() is O(events due) instead
        # of rescanning the whole schedule every superstep. Indexing keeps
        # schedule order within a superstep, so firing order is unchanged.
        self._by_superstep: dict[int, list[tuple[int, FailureEvent]]] = {}
        for index, event in enumerate(schedule.events):
            self._by_superstep.setdefault(event.superstep, []).append((index, event))

    def pop(self, superstep: int) -> list[FailureEvent]:
        """Events that fire in ``superstep`` and have not fired before."""
        due = []
        for index, event in self._by_superstep.get(superstep, ()):
            if index not in self._fired:
                self._fired.add(index)
                due.append(event)
        return due

    @property
    def pending(self) -> int:
        """How many scheduled events have not fired yet."""
        return len(self.schedule.events) - len(self._fired)
