"""Superstep execution cache: loop-invariant results reused across supersteps.

Every superstep re-executes the full step plan, yet much of that plan is
*loop-invariant* (see :mod:`repro.dataflow.invariants`): operators whose
upstream closure touches only static sources produce bit-identical output
every round, joins rebuild the same hash table over the static edge set
every round, and misplaced static inputs are re-shuffled with the same
placement every round. :class:`SuperstepExecutionCache` materializes each
of those results once and serves it on every later ``execute()`` call:

* **operator outputs** — the full :class:`~repro.runtime.executor.\
  PartitionedDataset` of an invariant non-source operator;
* **shuffle placements** — the hash-repartitioned form of an invariant
  operator's output, keyed by target key spec (the static build side of
  a dynamic join keeps its placement across supersteps);
* **join/co-group build indexes** — the per-partition hash tables built
  over an invariant input of a *dynamic* join or co-group (Flink keeps
  the static build side of such joins resident across iterations).

Two cache modes exist, selected by ``EngineConfig.execution_cache``:

* ``"transparent"`` (the default) skips the redundant wall-clock work
  but **replays the recorded simulated charges bit-identically** on every
  hit — the simulated clock, the cost breakdown, and every metrics
  counter advance exactly as they would with the cache off, so all
  archived figures and benchmark baselines still reproduce exactly;
* ``"modeled"`` also skips the simulated charges (what a real engine
  with loop-invariant caching — Flink — actually does), for ablations
  that quantify how much of a superstep's modeled cost is invariant
  recomputation. Per-operator ``records_in.*`` counters then reflect
  only the records actually processed.

How transparency is achieved: the first (miss) execution of a cacheable
operator runs with the executor's clock and metrics wrapped in recording
proxies that forward every charge and log it; a hit replays the logged
``advance`` calls in their original order with their original float
amounts, which accumulates bit-identically to re-execution.

Failure handling: cached results model data resident on workers. When
workers fail and partitions are re-assigned, the driver calls
:meth:`SuperstepExecutionCache.invalidate` and every entry is dropped —
the next superstep re-materializes (and, in ``modeled`` mode, re-charges
the placement network cost of) whatever the plan still needs. In
``transparent`` mode this is cost-invisible by construction: a miss
charges exactly what a hit would have replayed.

The cache reports ``cache.hits`` / ``cache.misses`` /
``cache.invalidations`` counters (plus per-kind ``cache.hits.<kind>``
breakdowns for ``output`` / ``shuffle`` / ``build``) through the run's
:class:`~repro.runtime.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..dataflow.datatypes import KeySpec
from ..dataflow.invariants import InvariantAnalysis
from ..dataflow.operators import Operator, SourceOperator
from ..errors import ExecutionError
from .clock import CostCategory, SimulatedClock
from .metrics import MetricsRegistry

if TYPE_CHECKING:
    from ..dataflow.plan import Plan
    from .executor import PartitionedDataset, PlanExecutor

#: the valid ``EngineConfig.execution_cache`` settings.
EXECUTION_CACHE_MODES = ("off", "transparent", "modeled")


class ChargeLog:
    """The simulated charges one cached execution made on its miss.

    Replaying the log re-applies the exact sequence of clock advances
    (same float amounts, same order — so account totals accumulate
    bit-identically to re-execution) and metric operations.
    """

    __slots__ = ("advances", "increments", "observations", "deliveries")

    def __init__(self) -> None:
        #: ``(seconds, category)`` clock advances, in charge order.
        self.advances: list[tuple[float, CostCategory]] = []
        #: ``(counter name, amount)`` increments, in order.
        self.increments: list[tuple[str, int]] = []
        #: ``(histogram name, value)`` observations, in order.
        self.observations: list[tuple[str, float]] = []
        #: ``(per-partition sizes, local)`` message-log deliveries made
        #: while confined recovery's log was attached, in order.
        self.deliveries: list[tuple[tuple[int, ...], bool]] = []

    def replay(
        self,
        clock: SimulatedClock,
        metrics: MetricsRegistry,
        *,
        charge: bool = True,
        message_log: Any | None = None,
    ) -> None:
        """Re-apply the log. With ``charge=False`` nothing is applied
        (modeled mode: the whole point is skipping the charges). When a
        ``message_log`` is passed (confined recovery active), recorded
        deliveries are re-delivered so the log's contents stay
        bit-identical to a cache-off run."""
        if not charge:
            return
        for seconds, category in self.advances:
            clock.advance(seconds, category)
        for name, amount in self.increments:
            metrics.increment(name, amount)
        for name, value in self.observations:
            metrics.observe(name, value)
        if message_log is not None:
            for sizes, local in self.deliveries:
                message_log.deliver(sizes, local=local)


class _RecordingClock:
    """Forwards every charge to the real clock while logging it.

    Implements the :class:`~repro.runtime.clock.SimulatedClock` surface
    the executor touches; anything else falls through to the real clock
    un-logged (nothing in the executor's operator paths does).
    """

    def __init__(self, clock: SimulatedClock, log: ChargeLog):
        self._clock = clock
        self._log = log

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def cost_model(self):
        return self._clock.cost_model

    def advance(self, seconds: float, category: CostCategory = CostCategory.COMPUTE) -> float:
        self._log.advances.append((seconds, category))
        return self._clock.advance(seconds, category)

    def charge_compute(self, records: int) -> None:
        self.advance(records * self._clock.cost_model.cpu_per_record, CostCategory.COMPUTE)

    def charge_network(self, records: int) -> None:
        self.advance(records * self._clock.cost_model.network_per_record, CostCategory.NETWORK)

    def charge_log(self, records: int) -> None:
        self.advance(records * self._clock.cost_model.log_per_record, CostCategory.LOG_IO)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._clock, name)


class _RecordingMetrics:
    """Forwards counter/histogram writes to the real registry, logging them."""

    def __init__(self, metrics: MetricsRegistry, log: ChargeLog):
        self._metrics = metrics
        self._log = log

    def increment(self, name: str, amount: int = 1) -> int:
        self._log.increments.append((name, amount))
        return self._metrics.increment(name, amount)

    def observe(self, name: str, value: float) -> None:
        self._log.observations.append((name, value))
        self._metrics.observe(name, value)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._metrics, name)


class _RecordingMessageLog:
    """Forwards deliveries to the real message log, logging them."""

    def __init__(self, message_log: Any, log: ChargeLog):
        self._message_log = message_log
        self._log = log

    def deliver(self, sizes: Sequence[int], *, local: bool = False) -> None:
        self._log.deliveries.append((tuple(sizes), local))
        self._message_log.deliver(sizes, local=local)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._message_log, name)


class SuperstepExecutionCache:
    """Per-run cache of loop-invariant execution results.

    One instance belongs to one iteration run and one step plan; the
    drivers build it from the plan's :class:`InvariantAnalysis` and pass
    it to every :meth:`~repro.runtime.executor.PlanExecutor.execute`
    call.

    Args:
        analysis: which operators of the step plan are loop-invariant.
        mode: ``"transparent"`` or ``"modeled"`` (see the module
            docstring; ``"off"`` is represented by not building a cache).
        metrics: registry receiving the ``cache.*`` counters.
    """

    def __init__(
        self,
        analysis: InvariantAnalysis,
        mode: str = "transparent",
        *,
        metrics: MetricsRegistry | None = None,
    ):
        if mode not in ("transparent", "modeled"):
            raise ExecutionError(
                f"execution cache mode must be 'transparent' or 'modeled', got {mode!r}"
            )
        self.analysis = analysis
        self.mode = mode
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._plan_id: int | None = None
        self._outputs: dict[int, tuple["PartitionedDataset", ChargeLog]] = {}
        self._shuffles: dict[tuple[int, KeySpec], tuple["PartitionedDataset", ChargeLog]] = {}
        self._builds: dict[tuple[int, str], list[dict[Any, list[Any]]]] = {}
        self._broadcasts: dict[int, tuple[list[Any], ChargeLog]] = {}
        #: running totals, mirrored into the metrics registry.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- bookkeeping -------------------------------------------------------------

    @property
    def transparent(self) -> bool:
        """Whether hits replay their recorded simulated charges."""
        return self.mode == "transparent"

    def bind_plan(self, plan: "Plan") -> None:
        """Pin the cache to the one plan it was analyzed for.

        The analysis is positional (op_ids), so serving a different plan
        — even a semantically equal optimized clone — would corrupt
        results; the executor calls this on every ``execute()``.
        """
        if self._plan_id is None:
            if plan.name != self.analysis.plan_name:
                raise ExecutionError(
                    f"execution cache was analyzed for plan "
                    f"{self.analysis.plan_name!r}, not {plan.name!r}"
                )
            self._plan_id = id(plan)
        elif self._plan_id != id(plan):
            raise ExecutionError(
                f"execution cache for plan {self.analysis.plan_name!r} was handed "
                f"a different plan instance; build one cache per plan object"
            )

    def _record_hit(self, kind: str) -> None:
        self.hits += 1
        self.metrics.increment("cache.hits")
        self.metrics.increment(f"cache.hits.{kind}")

    def _record_miss(self, kind: str) -> None:
        self.misses += 1
        self.metrics.increment("cache.misses")
        self.metrics.increment(f"cache.misses.{kind}")

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- recording ---------------------------------------------------------------

    @contextmanager
    def recording(self, executor: "PlanExecutor") -> Iterator[ChargeLog]:
        """Swap the executor's clock/metrics for recording proxies.

        Nesting is safe: an inner recording wraps the outer proxy, so the
        outer log still sees every charge (an invariant operator whose
        execution consults the shuffle memo records the shuffle charges
        in both logs, and each log replays correctly on its own path).
        """
        log = ChargeLog()
        saved_clock, saved_metrics = executor.clock, executor.metrics
        saved_message_log = executor.message_log
        executor.clock = _RecordingClock(saved_clock, log)  # type: ignore[assignment]
        executor.metrics = _RecordingMetrics(saved_metrics, log)  # type: ignore[assignment]
        if saved_message_log is not None:
            executor.message_log = _RecordingMessageLog(saved_message_log, log)
        try:
            yield log
        finally:
            executor.clock, executor.metrics = saved_clock, saved_metrics
            executor.message_log = saved_message_log

    # -- operator outputs --------------------------------------------------------

    def serves_output(self, op: Operator) -> bool:
        """Whether ``op``'s full output is cacheable (invariant, non-source)."""
        return not isinstance(op, SourceOperator) and self.analysis.is_cacheable(op)

    def lookup_output(
        self, op: Operator
    ) -> "tuple[PartitionedDataset, ChargeLog] | None":
        """Fetch ``op``'s materialized output and its recorded charges.

        The executor replays the log itself (against whatever clock and
        metrics it currently exposes) so nested recordings re-log
        correctly.
        """
        entry = self._outputs.get(op.op_id)
        if entry is not None:
            self._record_hit("output")
        return entry

    def store_output(self, op: Operator, dataset: "PartitionedDataset", log: ChargeLog) -> None:
        self._record_miss("output")
        self._outputs[op.op_id] = (dataset, log)

    # -- shuffle placements ------------------------------------------------------

    def serves_shuffle(self, producer: Operator) -> bool:
        """Whether repartitions of ``producer``'s output are memoizable."""
        return self.analysis.is_invariant(producer)

    def lookup_shuffle(
        self, producer: Operator, key: KeySpec
    ) -> "tuple[PartitionedDataset, ChargeLog] | None":
        entry = self._shuffles.get((producer.op_id, key))
        if entry is not None:
            self._record_hit("shuffle")
        return entry

    def store_shuffle(
        self,
        producer: Operator,
        key: KeySpec,
        dataset: "PartitionedDataset",
        log: ChargeLog,
    ) -> None:
        self._record_miss("shuffle")
        self._shuffles[(producer.op_id, key)] = (dataset, log)

    # -- join / co-group build indexes -------------------------------------------

    def serves_build(self, op: Operator, side: str) -> bool:
        """Whether the ``side`` build index of join/co-group ``op`` is
        loop-invariant and therefore reusable across supersteps."""
        return side in self.analysis.reusable_build_sides(op)

    def lookup_build(self, op: Operator, side: str) -> "list[dict[Any, list[Any]]] | None":
        tables = self._builds.get((op.op_id, side))
        if tables is not None:
            self._record_hit("build")
        return tables

    def store_build(
        self, op: Operator, side: str, tables: "list[dict[Any, list[Any]]]"
    ) -> None:
        self._record_miss("build")
        self._builds[(op.op_id, side)] = tables

    # -- cross broadcast copies --------------------------------------------------

    def lookup_broadcast(self, op: Operator) -> "tuple[list[Any], ChargeLog] | None":
        """The memoized broadcast copy of a cross's invariant right side,
        with the network charges its placement cost."""
        entry = self._broadcasts.get(op.op_id)
        if entry is not None:
            self._record_hit("build")
        return entry

    def store_broadcast(self, op: Operator, records: list[Any], log: ChargeLog) -> None:
        self._record_miss("build")
        self._broadcasts[op.op_id] = (records, log)

    # -- invalidation ------------------------------------------------------------

    def invalidate(
        self, lost_partitions: Sequence[int] | None = None, reason: str = "failure"
    ) -> int:
        """Drop every cache entry touched by a failure.

        Cached datasets and build indexes are partitioned exactly like
        the iterative state — partition ``p`` of every entry lived on the
        worker hosting state partition ``p`` — so losing any partition
        invalidates every entry (each entry spans all partitions). The
        next ``execute()`` re-materializes on the replacement workers,
        charging placement costs per the active mode.

        Returns the number of entries dropped (also added to the
        ``cache.invalidations`` counter).
        """
        dropped = (
            len(self._outputs)
            + len(self._shuffles)
            + len(self._builds)
            + len(self._broadcasts)
        )
        self._outputs.clear()
        self._shuffles.clear()
        self._builds.clear()
        self._broadcasts.clear()
        if dropped:
            self.invalidations += dropped
            self.metrics.increment("cache.invalidations", dropped)
            self.metrics.increment(f"cache.invalidations.{reason}", dropped)
        return dropped
