"""Counters and per-superstep statistics.

The demo GUI plots four statistic series (§3.2–3.3 of the paper):

* Connected Components: (i) vertices converged to their final component
  per iteration, (ii) messages (candidate labels sent to neighbors) per
  iteration;
* PageRank: (i) vertices converged to their true rank per iteration,
  (ii) the L1 norm of the difference between consecutive rank estimates.

:class:`IterationStats` captures one superstep's worth of those numbers,
:class:`StatsSeries` collects the run-long series, and
:class:`MetricsRegistry` provides the low-level named counters the executor
increments (e.g. records entering each named operator, which is how we
count "messages").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from ..observability.metrics import HistogramStats, Timer


class MetricsRegistry:
    """A registry of named counters, gauges, histograms and timers.

    Counter names are free-form strings. The executor uses the convention
    ``records_in.<operator name>`` for per-operator input cardinalities and
    ``shuffled.<operator name>`` for exchange volumes, which lets the demo
    read off "messages per iteration" as the input count of the paper's
    ``candidate-label`` reduce.

    Counters are the original (and still primary) surface —
    :meth:`increment` / :meth:`get` / :meth:`snapshot` / :meth:`diff`
    behave exactly as they always did and see only counters. On top of
    them the registry now keeps:

    * **gauges** (:meth:`set_gauge`) — last-write-wins instantaneous
      values, e.g. the delta iteration's current workset size;
    * **histograms** (:meth:`observe`) — value distributions summarized
      as count/min/max/mean/p50/p95 (:meth:`histogram`), e.g. per-shuffle
      exchange volumes;
    * **timers** (:meth:`timer`) — wall-clock context managers whose
      durations land in the histogram of the same name.

    The registry is thread-safe: the job service shares one registry
    across its worker pool, so every read-modify-write goes through an
    internal lock (uncontended in the single-threaded engine paths).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
        return value

    def get(self, name: str) -> int:
        """Current value of ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0)

    def names(self) -> list[str]:
        """All counter names, sorted."""
        with self._lock:
            return sorted(self._counters)

    def snapshot(self) -> dict[str, int]:
        """A copy of all counters, taken atomically."""
        with self._lock:
            return dict(self._counters)

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Per-counter increase since an ``earlier`` :meth:`snapshot`."""
        with self._lock:
            return {
                name: value - earlier.get(name, 0)
                for name, value in self._counters.items()
                if value != earlier.get(name, 0)
            }

    def snapshot_all(
        self, include_histograms: bool = True
    ) -> dict[str, dict[str, Any]]:
        """One atomic copy of every counter, gauge and histogram.

        All three families are copied under a single lock acquisition, so
        a concurrent sampler (the telemetry collector) never sees a torn
        view — e.g. a counter from before an increment paired with a
        gauge from after it. With ``include_histograms=False`` the raw
        observation lists are skipped (they can be large; the sampler
        only needs counters and gauges every tick).
        """
        with self._lock:
            snapshot: dict[str, dict[str, Any]] = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }
            if include_histograms:
                snapshot["histograms"] = {
                    name: list(values) for name, values in self._histograms.items()
                }
            return snapshot

    def histogram_summaries(self) -> dict[str, HistogramStats]:
        """Atomic :class:`HistogramStats` of every non-empty histogram.

        Unlike :meth:`histograms` the raw values are copied under the
        lock first, so a summary never reads a list mid-append.
        """
        with self._lock:
            copies = {
                name: list(values)
                for name, values in self._histograms.items()
                if values
            }
        return {name: HistogramStats.of(values) for name, values in sorted(copies.items())}

    # -- gauges ----------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str, default: float | None = None) -> float | None:
        """Current value of gauge ``name`` (``default`` if never set)."""
        return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        """A copy of all gauges, taken atomically."""
        with self._lock:
            return dict(self._gauges)

    # -- histograms and timers -------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            self._histograms.setdefault(name, []).append(value)

    def histogram(self, name: str) -> HistogramStats | None:
        """Summary stats of histogram ``name`` (``None`` if unobserved)."""
        with self._lock:
            values = list(self._histograms.get(name, ()))
        return HistogramStats.of(values) if values else None

    def histogram_values(self, name: str) -> list[float]:
        """The raw observations of histogram ``name``, in order."""
        with self._lock:
            return list(self._histograms.get(name, ()))

    def histograms(self) -> dict[str, HistogramStats]:
        """Summary stats of every non-empty histogram."""
        return self.histogram_summaries()

    def timer(self, name: str) -> Timer:
        """A context manager observing its wall-clock duration into the
        histogram ``name``::

            with metrics.timer("superstep_wall_seconds"):
                ...
        """
        return Timer(self, name)

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter, gauge and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


@dataclass
class IterationStats:
    """Statistics of one superstep.

    Attributes:
        superstep: 0-based superstep index.
        messages: records exchanged between vertices this superstep (the
            GUI's "messages" plot for Connected Components; for PageRank it
            counts rank contributions).
        updates: solution-set updates (delta iterations) or state records
            recomputed (bulk iterations).
        converged: number of state entries already equal to the precomputed
            ground truth at the *end* of this superstep.
        l1_delta: L1 norm between this superstep's state and the previous
            one (the GUI's PageRank convergence plot); ``None`` when the
            observer does not compute it.
        workset_size: size of the delta-iteration workset *entering* the
            superstep (``None`` for bulk iterations).
        sim_time_start: simulated clock at superstep start.
        sim_time_end: simulated clock at superstep end.
        failed: True when a failure struck during this superstep.
        compensated: True when a compensation function ran this superstep.
        rolled_back: True when rollback recovery restored a checkpoint.
        restarted: True when the iteration was restarted from scratch.
        confined: True when confined recovery replayed only the lost
            partitions (survivors kept their state).
    """

    superstep: int
    messages: int = 0
    updates: int = 0
    converged: int = 0
    l1_delta: float | None = None
    workset_size: int | None = None
    sim_time_start: float = 0.0
    sim_time_end: float = 0.0
    failed: bool = False
    compensated: bool = False
    rolled_back: bool = False
    restarted: bool = False
    confined: bool = False

    @property
    def sim_duration(self) -> float:
        """Simulated seconds spent in this superstep."""
        return self.sim_time_end - self.sim_time_start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form for the structured trace exporter."""
        return {
            "superstep": self.superstep,
            "messages": self.messages,
            "updates": self.updates,
            "converged": self.converged,
            "l1_delta": self.l1_delta,
            "workset_size": self.workset_size,
            "sim_time_start": self.sim_time_start,
            "sim_time_end": self.sim_time_end,
            "sim_duration": self.sim_duration,
            "failed": self.failed,
            "compensated": self.compensated,
            "rolled_back": self.rolled_back,
            "restarted": self.restarted,
            "confined": self.confined,
        }


class StatsSeries:
    """The run-long sequence of :class:`IterationStats`.

    Provides the column accessors the demo plots and the benchmark reports
    need (``converged_series()``, ``messages_series()``, ...).
    """

    def __init__(self) -> None:
        self._stats: list[IterationStats] = []

    def append(self, stats: IterationStats) -> None:
        self._stats.append(stats)

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[IterationStats]:
        return iter(self._stats)

    def __getitem__(self, index: int) -> IterationStats:
        return self._stats[index]

    @property
    def last(self) -> IterationStats | None:
        """The most recent superstep's stats, or ``None`` if empty."""
        return self._stats[-1] if self._stats else None

    def converged_series(self) -> list[int]:
        """Converged-entity count per superstep (GUI plot (i))."""
        return [s.converged for s in self._stats]

    def messages_series(self) -> list[int]:
        """Messages per superstep (GUI plot (ii) for CC)."""
        return [s.messages for s in self._stats]

    def l1_series(self) -> list[float | None]:
        """L1 deltas per superstep (GUI plot (ii) for PageRank)."""
        return [s.l1_delta for s in self._stats]

    def updates_series(self) -> list[int]:
        """Solution-set updates per superstep."""
        return [s.updates for s in self._stats]

    def duration_series(self) -> list[float]:
        """Simulated duration per superstep."""
        return [s.sim_duration for s in self._stats]

    def failure_supersteps(self) -> list[int]:
        """Supersteps during which a failure struck."""
        return [s.superstep for s in self._stats if s.failed]

    def total_messages(self) -> int:
        """Sum of the message series."""
        return sum(s.messages for s in self._stats)

    def total_sim_time(self) -> float:
        """Simulated seconds from first superstep start to last end."""
        if not self._stats:
            return 0.0
        return self._stats[-1].sim_time_end - self._stats[0].sim_time_start
