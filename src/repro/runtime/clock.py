"""Simulated cost clock.

Real wall-clock measurements of a single-process simulator would say
nothing about the paper's cluster-level trade-offs (checkpoint I/O vs.
recomputation vs. compensation). Instead, every runtime component charges
its work to a :class:`SimulatedClock` using the cost constants from
:class:`repro.config.CostModel`. Experiments then compare deterministic
simulated times whose *ratios* reflect the modeled cluster.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..config import CostModel
from ..errors import ConfigError


class CostCategory(enum.Enum):
    """Buckets that simulated time is charged to.

    Keeping per-category accounts lets benchmarks decompose total runtime
    into compute / network / checkpoint-I/O / recovery components, which is
    how the paper argues about failure-free overhead.
    """

    COMPUTE = "compute"
    NETWORK = "network"
    CHECKPOINT_IO = "checkpoint_io"
    RESTORE_IO = "restore_io"
    RECOVERY = "recovery"
    COMPENSATION = "compensation"
    LOG_IO = "log_io"
    REPLAY = "replay"


@dataclass
class SimulatedClock:
    """Accumulates simulated time, broken down by :class:`CostCategory`.

    Attributes:
        cost_model: the constants used by the ``charge_*`` helpers.
    """

    cost_model: CostModel = field(default_factory=CostModel)
    _now: float = 0.0
    _accounts: dict[CostCategory, float] = field(default_factory=dict)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, category: CostCategory = CostCategory.COMPUTE) -> float:
        """Advance the clock by ``seconds``, charging ``category``.

        Returns the new simulated time. Negative durations are rejected.
        """
        if seconds < 0:
            raise ConfigError(f"cannot advance the clock by {seconds} seconds")
        self._now += seconds
        self._accounts[category] = self._accounts.get(category, 0.0) + seconds
        return self._now

    def spent(self, category: CostCategory) -> float:
        """Simulated seconds charged to ``category`` so far."""
        return self._accounts.get(category, 0.0)

    def breakdown(self) -> dict[str, float]:
        """Return ``{category value: seconds}`` for all non-zero accounts."""
        return {cat.value: secs for cat, secs in sorted(self._accounts.items(), key=lambda kv: kv[0].value)}

    def accounts(self) -> dict[CostCategory, float]:
        """A copy of the raw per-category accounts.

        Tracers snapshot this at span boundaries to attribute cost deltas
        to spans; reading it never advances the clock.
        """
        return dict(self._accounts)

    # -- record-count helpers -------------------------------------------------

    def charge_compute(self, records: int) -> None:
        """Charge CPU time for pushing ``records`` through one operator."""
        self.advance(records * self.cost_model.cpu_per_record, CostCategory.COMPUTE)

    def charge_network(self, records: int) -> None:
        """Charge network time for shuffling ``records``."""
        self.advance(records * self.cost_model.network_per_record, CostCategory.NETWORK)

    def charge_checkpoint(self, records: int) -> None:
        """Charge stable-storage write time for checkpointing ``records``."""
        self.advance(records * self.cost_model.checkpoint_per_record, CostCategory.CHECKPOINT_IO)

    def charge_restore(self, records: int) -> None:
        """Charge stable-storage read time for restoring ``records``."""
        self.advance(records * self.cost_model.restore_per_record, CostCategory.RESTORE_IO)

    def charge_failure_detection(self) -> None:
        """Charge the flat cost of detecting a failure and pausing."""
        self.advance(self.cost_model.failure_detection, CostCategory.RECOVERY)

    def charge_worker_acquisition(self, workers: int = 1) -> None:
        """Charge the flat cost of acquiring ``workers`` replacements."""
        self.advance(workers * self.cost_model.worker_acquisition, CostCategory.RECOVERY)

    def charge_compensation(self, records: int) -> None:
        """Charge the cost of running a compensation function over state."""
        self.advance(records * self.cost_model.compensation_per_record, CostCategory.COMPENSATION)

    def charge_log(self, records: int) -> None:
        """Charge the cost of appending ``records`` to the message log."""
        self.advance(records * self.cost_model.log_per_record, CostCategory.LOG_IO)

    def charge_replay(self, records: int) -> None:
        """Charge the cost of replaying ``records`` of logged messages."""
        self.advance(records * self.cost_model.replay_per_record, CostCategory.REPLAY)

    def reset(self) -> None:
        """Zero the clock and all accounts (used between benchmark runs)."""
        self._now = 0.0
        self._accounts.clear()
