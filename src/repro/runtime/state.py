"""Keyed solution-set state backends.

A delta iteration (paper §2.1) *selectively* updates its solution set:
each superstep touches only the records named by the delta, which shrinks
as the algorithm converges. The original driver nevertheless rebuilt a
``{key: record}`` dict over the **entire** solution set every superstep —
O(|state|) maintenance work per superstep where the paper's model is
O(|delta|). *Spinning Fast Iterative Data Flows* (Ewen et al.) describes
the fix Flink uses: the solution set lives in a partitioned hash index and
deltas are applied in place.

:class:`KeyedStateBackend` is that index. It owns the solution set as one
hash index per partition (key → slot in the partition's record list),
maintained across supersteps:

* :meth:`~StateBackend.apply_delta` merges a delta in O(|delta|),
* convergence counts against a ground truth and ``value_fn`` L1 deltas are
  maintained incrementally from the same per-record transitions,
* :meth:`~StateBackend.to_dataset` exposes a zero-copy
  :class:`~repro.runtime.executor.PartitionedDataset` view so the plan
  executor and the recovery strategies keep working on datasets,
* :meth:`~StateBackend.lose` / :meth:`~StateBackend.replace_partition` /
  :meth:`~StateBackend.restore_from` give the failure path the same
  partition-destruction and reinstall operations datasets have, and
* an opt-in change log (:meth:`~StateBackend.enable_change_tracking`)
  hands incremental checkpointing the records changed since the last
  commit without any full-state scan.

:class:`RebuildStateBackend` preserves the original driver's semantics
(rebuild the dict every superstep) behind the same interface. It exists so
equivalence tests and the ``benchmarks/test_state_backend.py`` benchmark
can prove the keyed backend bit-identical while quantifying the win;
``EngineConfig.state_backend`` selects between the two.

Both backends report their work through the run's
:class:`~repro.runtime.metrics.MetricsRegistry`:

* ``state.delta_applied`` — counter of delta records merged,
* ``state.index_rebuilds`` — counter of partition indexes rebuilt
  (restores and partition replacements; zero in a failure-free run),
* ``state.maintenance_ops`` — histogram of per-``apply_delta`` primitive
  operations, the series the state-backend benchmark plots: O(|delta|)
  for the keyed backend, O(|state| + |delta|) for the rebuild backend.

State keys must be unique per record; duplicate keys collapse (last one
wins), exactly as the original dict rebuild collapsed them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from ..dataflow.datatypes import KeySpec
from ..errors import ExecutionError, PartitionLostError
from .executor import PartitionedDataset
from .metrics import MetricsRegistry

#: sentinel distinguishing "key absent" from "key mapped to None".
_MISSING = object()


def record_matches(value: Any, expected: Any, tolerance: float) -> bool:
    """Whether a state value matches its ground-truth value.

    Float values (and all-float tuples) compare within ``tolerance`` when
    one is given; everything else compares exactly. This is the single
    truth-comparison used by both the iteration drivers' convergence
    plots and the backends' incremental converged counters.
    """
    if tolerance > 0 and isinstance(value, (int, float)) and isinstance(expected, (int, float)):
        return abs(value - expected) <= tolerance
    if (
        tolerance > 0
        and isinstance(value, tuple)
        and isinstance(expected, tuple)
        and len(value) == len(expected)
        and all(isinstance(x, (int, float)) for x in value)
        and all(isinstance(x, (int, float)) for x in expected)
    ):
        return all(abs(a - b) <= tolerance for a, b in zip(value, expected))
    return value == expected


class StateBackend(ABC):
    """Common interface and plumbing of the solution-set backends.

    Args:
        dataset: the initial solution set; its partition lists are copied,
            so the caller's dataset stays untouched.
        key: the key spec the state is partitioned and indexed by.
        metrics: registry receiving the ``state.*`` counters/histograms.
        value_fn: optional float extraction enabling per-superstep L1
            tracking (:attr:`last_l1_delta`).
        truth: optional precomputed correct final state enabling
            :meth:`converged_count`.
        truth_tolerance: tolerance for float truth comparison.
    """

    #: identifier reported as the ``state_backend`` span attribute.
    name: str = "abstract"

    def __init__(
        self,
        dataset: PartitionedDataset,
        key: KeySpec,
        *,
        metrics: MetricsRegistry | None = None,
        value_fn: Callable[[Any], float] | None = None,
        truth: dict[Any, Any] | None = None,
        truth_tolerance: float = 0.0,
    ):
        self._key = key
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        self._value_fn = value_fn
        self._truth = truth
        self._tolerance = truth_tolerance
        #: L1 norm of the most recent :meth:`apply_delta` (None without a
        #: ``value_fn``).
        self.last_l1_delta: float | None = None
        self._flat_cache: list[Any] | None = None

    # -- interface subclasses fill in ------------------------------------------

    @property
    @abstractmethod
    def partitions(self) -> list[list[Any] | None]:
        """The live partition record lists (``None`` for lost partitions).

        These are the backend's own lists — readers must not mutate them.
        """

    @abstractmethod
    def apply_delta(self, delta: PartitionedDataset) -> int:
        """Merge ``delta`` records into the solution set, partition-locally.

        Returns the number of entries that actually changed (inserts
        count as changes). Raises :class:`PartitionLostError` when a
        non-empty delta partition targets a lost state partition.
        """

    @abstractmethod
    def _install_partition(self, partition_id: int, records: list[Any]) -> None:
        """Install fresh contents (and rebuild any index) for one partition."""

    # -- shared inspection -------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def num_records(self) -> int:
        """Total record count over non-lost partitions."""
        return sum(len(part) for part in self.partitions if part is not None)

    def lost_partitions(self) -> list[int]:
        """Ids of partitions whose state is destroyed."""
        return [pid for pid, part in enumerate(self.partitions) if part is None]

    def to_dataset(self) -> PartitionedDataset:
        """A zero-copy :class:`PartitionedDataset` view of the live state.

        The view shares the backend's partition lists (so executing a
        step plan or writing a checkpoint over it copies nothing) but has
        its own outer list: replacing partitions on the view does not
        affect the backend. Lost partitions appear as ``None``.
        """
        return PartitionedDataset(
            partitions=list(self.partitions), partitioned_by=self._key
        )

    def records_view(self) -> list[Any]:
        """All records concatenated in partition order, cached.

        The concatenation is recomputed only after the state changed;
        repeated callers within one superstep (convergence counting,
        snapshotting, the final result) share one materialization.
        """
        if self._flat_cache is None:
            flat: list[Any] = []
            for part in self.partitions:
                if part is None:
                    raise PartitionLostError(
                        self.lost_partitions(),
                        f"state backend: state lost for partitions "
                        f"{self.lost_partitions()}",
                    )
                flat.extend(part)
            self._flat_cache = flat
        return self._flat_cache

    def converged_count(self) -> int:
        """How many records match the ground truth (0 without a truth)."""
        if self._truth is None:
            return 0
        return self._count_converged()

    def _count_converged(self) -> int:
        assert self._truth is not None
        converged = 0
        for record in self.records_view():
            expected = self._truth.get(record[0], _MISSING)
            if expected is _MISSING:
                continue
            if record_matches(record[1], expected, self._tolerance):
                converged += 1
        return converged

    # -- shared failure-path mutation --------------------------------------------

    def lose(self, partition_ids: list[int]) -> int:
        """Destroy the state of the given partitions; returns records lost."""
        lost_records = 0
        parts = self.partitions
        for pid in partition_ids:
            if pid < 0 or pid >= len(parts):
                raise ExecutionError(f"no partition {pid} in backend of {len(parts)}")
            if parts[pid] is not None:
                lost_records += len(parts[pid])  # type: ignore[arg-type]
                self._discard_partition(pid)
        if partition_ids:
            self._invalidate()
        return lost_records

    def replace_partition(self, partition_id: int, records: list[Any]) -> None:
        """Install new contents (a fresh copy) for one partition."""
        if partition_id < 0 or partition_id >= self.num_partitions:
            raise ExecutionError(
                f"no partition {partition_id} in backend of {self.num_partitions}"
            )
        self._install_partition(partition_id, list(records))
        self._metrics.increment("state.index_rebuilds")
        self._invalidate()

    def restore_from(self, dataset: PartitionedDataset) -> None:
        """Reinstall the full state from a recovered dataset.

        Used by the delta driver after a recovery strategy returned a
        complete post-recovery state; each rebuilt partition index is
        counted in ``state.index_rebuilds`` and any change log is
        cleared — for incremental checkpointing the restored state equals
        the last committed one, so "changed since last commit" restarts
        empty.

        Empty incoming partitions whose live counterpart is already
        present and empty are skipped outright: installing ``[]`` over
        ``[]`` is a no-op, and skipping it keeps a restore O(records
        actually restored) instead of O(num_partitions) index rebuilds —
        which matters for sparse states where most partitions hold
        nothing.
        """
        dataset.require_complete("state backend restore")
        if dataset.num_partitions != self.num_partitions:
            raise ExecutionError(
                f"cannot restore {dataset.num_partitions} partitions into "
                f"backend of {self.num_partitions}"
            )
        rebuilt = 0
        live = self.partitions
        for pid, records in enumerate(dataset.partitions):
            if not records and live[pid] is not None and not live[pid]:
                continue
            self._install_partition(pid, list(records or []))
            rebuilt += 1
        self._metrics.increment("state.index_rebuilds", rebuilt)
        self._invalidate()

    # -- change tracking (consumed by incremental checkpointing) -----------------

    #: whether this backend can hand out per-commit change logs.
    supports_change_tracking: bool = False

    def enable_change_tracking(self) -> None:
        """Start recording which records change between commits."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support change tracking"
        )

    @property
    def change_tracking_enabled(self) -> bool:
        return False

    def drain_changes(self) -> list[list[Any]]:
        """Per-partition records changed since the last drain (and clear)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support change tracking"
        )

    def clear_changes(self) -> None:
        """Forget any recorded changes (e.g. after a full base write)."""

    # -- internals ---------------------------------------------------------------

    def _discard_partition(self, partition_id: int) -> None:
        """Mark one partition's state destroyed."""
        self.partitions[partition_id] = None

    def _invalidate(self) -> None:
        self._flat_cache = None

    def _require_target(self, partition_id: int, part: list[Any] | None) -> list[Any]:
        if part is None:
            raise PartitionLostError(
                [partition_id],
                f"state backend: cannot apply delta to lost partition {partition_id}",
            )
        return part

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.num_partitions}, "
            f"records={self.num_records()}, key={self._key.name!r})"
        )


class KeyedStateBackend(StateBackend):
    """Per-partition hash indexes over the solution set — O(|delta|) merges.

    Each partition keeps its records in a list plus a ``key → slot``
    index. Applying a delta record replaces in place (the slot keeps its
    position, matching dict-insertion-order semantics) or appends — no
    partition is copied or re-hashed, so failure-free superstep
    maintenance costs O(|delta|) regardless of the solution-set size.
    Convergence counts and L1 deltas are adjusted from the same
    ``old → new`` transitions, so the driver's per-superstep statistics
    also stop scanning unchanged state.
    """

    name = "keyed"
    supports_change_tracking = True

    def __init__(self, dataset, key, **kwargs):
        super().__init__(dataset, key, **kwargs)
        self._parts: list[list[Any] | None] = []
        self._index: list[dict[Any, int] | None] = []
        for pid, records in enumerate(dataset.partitions):
            if records is None:
                self._parts.append(None)
                self._index.append(None)
            else:
                self._parts.append([])
                self._index.append({})
                self._reindex(pid, records)
        self._tracking = False
        #: per partition: key → record value at the last commit (or the
        #: :data:`_MISSING` sentinel for keys inserted since).
        self._changed: list[dict[Any, Any]] = [{} for _ in self._parts]
        self._converged: int | None = None
        if self._truth is not None and not self.lost_partitions():
            self._converged = self._count_converged()

    @property
    def partitions(self) -> list[list[Any] | None]:
        return self._parts

    def apply_delta(self, delta: PartitionedDataset) -> int:
        changed = 0
        applied = 0
        touched_values: dict[Any, float] = {}
        for pid, delta_part in enumerate(delta.partitions):
            if not delta_part:
                continue
            records = self._require_target(pid, self._parts[pid])
            index = self._index[pid]
            assert index is not None
            pending = self._changed[pid] if self._tracking else None
            for record in delta_part:
                record_key = self._key(record)
                applied += 1
                slot = index.get(record_key, -1)
                old = records[slot] if slot >= 0 else _MISSING
                if old is not _MISSING and old == record:
                    continue
                changed += 1
                if pending is not None and record_key not in pending:
                    pending[record_key] = old
                if self._value_fn is not None and record_key not in touched_values:
                    touched_values[record_key] = (
                        0.0 if old is _MISSING else self._value_fn(old)
                    )
                if self._converged is not None:
                    self._adjust_converged(record_key, old, record)
                if slot >= 0:
                    records[slot] = record
                else:
                    index[record_key] = len(records)
                    records.append(record)
        if applied:
            self._invalidate()
        self._metrics.increment("state.delta_applied", applied)
        self._metrics.observe("state.maintenance_ops", applied)
        if self._value_fn is not None:
            self.last_l1_delta = sum(
                abs(self._value_fn(self._lookup(record_key)) - old_value)
                for record_key, old_value in touched_values.items()
            )
        return changed

    def converged_count(self) -> int:
        if self._truth is None:
            return 0
        if self._converged is None:
            self._converged = self._count_converged()
        return self._converged

    # -- change tracking ---------------------------------------------------------

    def enable_change_tracking(self) -> None:
        self._tracking = True

    @property
    def change_tracking_enabled(self) -> bool:
        return self._tracking

    def drain_changes(self) -> list[list[Any]]:
        """Records changed since the last commit, partition by partition.

        Per partition, the changed records come out in partition-list
        order — the same order a full scan of the partition would find
        them in — and entries whose value meanwhile returned to the
        committed one are dropped, so the drain is record-for-record what
        the scan-based diff produced.
        """
        drained: list[list[Any]] = []
        for pid, pending in enumerate(self._changed):
            records = self._parts[pid]
            index = self._index[pid]
            if records is None or index is None:
                drained.append([])
                pending.clear()
                continue
            slots = sorted(
                index[record_key] for record_key, old in pending.items()
                if records[index[record_key]] != old
            )
            drained.append([records[slot] for slot in slots])
            pending.clear()
        return drained

    def clear_changes(self) -> None:
        for pending in self._changed:
            pending.clear()

    # -- internals ---------------------------------------------------------------

    def _lookup(self, record_key: Any) -> Any:
        for index, records in zip(self._index, self._parts):
            if index is not None and record_key in index:
                return records[index[record_key]]  # type: ignore[index]
        raise ExecutionError(f"state key {record_key!r} not present in any partition")

    def _adjust_converged(self, record_key: Any, old: Any, new: Any) -> None:
        assert self._truth is not None and self._converged is not None
        expected = self._truth.get(record_key, _MISSING)
        if expected is _MISSING:
            return
        if old is not _MISSING and record_matches(old[1], expected, self._tolerance):
            self._converged -= 1
        if record_matches(new[1], expected, self._tolerance):
            self._converged += 1

    def _reindex(self, partition_id: int, records: list[Any]) -> None:
        """(Re)build one partition's list + index, collapsing duplicate keys."""
        index: dict[Any, int] = {}
        deduped: list[Any] = []
        for record in records:
            record_key = self._key(record)
            slot = index.get(record_key, -1)
            if slot >= 0:
                deduped[slot] = record
            else:
                index[record_key] = len(deduped)
                deduped.append(record)
        self._parts[partition_id] = deduped
        self._index[partition_id] = index

    def _install_partition(self, partition_id: int, records: list[Any]) -> None:
        self._reindex(partition_id, records)
        self._changed[partition_id].clear()
        self._converged = None if self._truth is not None else self._converged

    def _discard_partition(self, partition_id: int) -> None:
        self._parts[partition_id] = None
        self._index[partition_id] = None
        self._changed[partition_id].clear()
        self._converged = None if self._truth is not None else self._converged


class RebuildStateBackend(StateBackend):
    """The original driver's semantics: rebuild the dict every superstep.

    Kept behind the shared interface (``EngineConfig.state_backend =
    "rebuild"``) as the reference implementation equivalence tests and the
    state-backend benchmark compare against. Every ``apply_delta``
    re-copies each partition and re-hashes the touched ones — O(|state| +
    |delta|) — and convergence counts and L1 deltas re-scan the full
    state, exactly as the pre-backend driver did.
    """

    name = "rebuild"

    def __init__(self, dataset, key, **kwargs):
        super().__init__(dataset, key, **kwargs)
        self._parts: list[list[Any] | None] = [
            list(part) if part is not None else None for part in dataset.partitions
        ]

    @property
    def partitions(self) -> list[list[Any] | None]:
        return self._parts

    def apply_delta(self, delta: PartitionedDataset) -> int:
        previous = self.records_view() if self._value_fn is not None else []
        new_partitions: list[list[Any] | None] = []
        changed = 0
        applied = 0
        ops = 0
        for pid, (solution_part, delta_part) in enumerate(
            zip(self._parts, delta.partitions)
        ):
            if not delta_part:
                part = self._require_target(pid, solution_part)
                new_partitions.append(list(part))
                ops += len(part)
                continue
            part = self._require_target(pid, solution_part)
            merged = {self._key(record): record for record in part}
            ops += len(part)
            for record in delta_part:
                record_key = self._key(record)
                applied += 1
                ops += 1
                if merged.get(record_key) != record:
                    changed += 1
                merged[record_key] = record
            new_partitions.append(list(merged.values()))
        self._parts = new_partitions
        self._invalidate()
        self._metrics.increment("state.delta_applied", applied)
        self._metrics.observe("state.maintenance_ops", ops)
        if self._value_fn is not None:
            new_values = {r[0]: self._value_fn(r) for r in self.records_view()}
            old_values = {r[0]: self._value_fn(r) for r in previous}
            keys = new_values.keys() | old_values.keys()
            self.last_l1_delta = sum(
                abs(new_values.get(k, 0.0) - old_values.get(k, 0.0)) for k in keys
            )
        return changed

    def _install_partition(self, partition_id: int, records: list[Any]) -> None:
        self._parts[partition_id] = records


#: the selectable backend implementations, keyed by config name.
BACKENDS: dict[str, type[StateBackend]] = {
    KeyedStateBackend.name: KeyedStateBackend,
    RebuildStateBackend.name: RebuildStateBackend,
}


def make_state_backend(
    kind: str,
    dataset: PartitionedDataset,
    key: KeySpec,
    *,
    metrics: MetricsRegistry | None = None,
    value_fn: Callable[[Any], float] | None = None,
    truth: dict[Any, Any] | None = None,
    truth_tolerance: float = 0.0,
) -> StateBackend:
    """Build the solution-set backend named by ``kind`` (see :data:`BACKENDS`)."""
    if kind not in BACKENDS:
        raise ExecutionError(
            f"unknown state backend {kind!r} (available: {sorted(BACKENDS)})"
        )
    return BACKENDS[kind](
        dataset,
        key,
        metrics=metrics,
        value_fn=value_fn,
        truth=truth,
        truth_tolerance=truth_tolerance,
    )
