"""Ready-made vertex programs.

These are the classic value-propagation programs, shipped so the
vertex-centric layer is usable without writing a program first — and so
tests can assert the layer against the engine's native algorithms.
"""

from __future__ import annotations

import math
from typing import Any

from ..algorithms.base import DeltaJob
from ..algorithms.reference import exact_connected_components, exact_sssp
from ..graph.graph import Graph
from .vertex_program import VertexProgram, vertex_program_job


class MinLabelProgram(VertexProgram):
    """Connected Components: propagate the minimum reachable label.

    On directed graphs this follows edge direction; for the usual *weak*
    connectivity semantics, compile over the undirected view (see
    :func:`pregel_connected_components`).
    """

    name = "pregel-cc"

    def initial_value(self, vertex: int) -> int:
        return vertex

    def compute(self, vertex, value, messages, edges):
        best = min(messages)
        if best < value:
            return best, [(neighbor, best) for neighbor, _w in edges]
        return None, []


class MaxValueProgram(VertexProgram):
    """Propagate the maximum reachable initial value (e.g. hub seeding)."""

    name = "pregel-max"

    def initial_value(self, vertex: int) -> Any:
        return vertex

    def compute(self, vertex, value, messages, edges):
        best = max(messages)
        if best > value:
            return best, [(neighbor, best) for neighbor, _w in edges]
        return None, []


class ShortestPathsProgram(VertexProgram):
    """Single-source shortest paths; messages carry ``value + weight``.

    Overrides :meth:`recovery_messages` accordingly (the announce-value
    default would undershoot distances — see the base-class docstring).
    """

    name = "pregel-sssp"

    def __init__(self, source: int):
        self.source = source

    def initial_value(self, vertex: int) -> float:
        return 0.0 if vertex == self.source else math.inf

    def initial_messages(self, vertex, value, edges):
        if vertex != self.source:
            return []
        return [(neighbor, value + weight) for neighbor, weight in edges]

    def recovery_messages(self, vertex, value, edges):
        if math.isinf(value):
            return []
        return [(neighbor, value + weight) for neighbor, weight in edges]

    def compute(self, vertex, value, messages, edges):
        best = min(messages)
        if best < value:
            return best, [(neighbor, best + weight) for neighbor, weight in edges]
        return None, []


class KCoreProgram(VertexProgram):
    """k-core decomposition: iteratively peel vertices of degree < k.

    A vertex's value is the **frozenset of neighbors it knows to be
    removed**; its own status is derived: removed iff
    ``degree - len(value) < k``. Messages carry the sender's vertex id
    and are therefore *idempotent* — receiving the same removal notice
    twice changes nothing — which makes the program compensable with the
    plain reset-and-replay recovery: after a failure, removed vertices
    simply re-announce their ids (the default
    :meth:`recovery_messages` behaviour is overridden to do exactly
    that) and reset vertices rebuild their removal sets without any
    double-counting. Designing messages to be idempotent is the general
    trick for making peeling/deletion algorithms optimistically
    recoverable.

    At the fixpoint, vertices with ``degree - len(value) >= k`` form the
    k-core.
    """

    name = "pregel-kcore"

    def __init__(self, k: int, degrees: dict[int, int]):
        self.k = k
        self.degrees = degrees

    def _removed(self, vertex: int, known_removed: frozenset) -> bool:
        return self.degrees[vertex] - len(known_removed) < self.k

    def initial_value(self, vertex: int) -> frozenset:
        return frozenset()

    def initial_messages(self, vertex, value, edges):
        # vertices below k to begin with announce their removal
        if not self._removed(vertex, value):
            return []
        return [(neighbor, vertex) for neighbor, _w in edges]

    def recovery_messages(self, vertex, value, edges):
        # removed vertices re-announce; announcements are idempotent
        if not self._removed(vertex, value):
            return []
        return [(neighbor, vertex) for neighbor, _w in edges]

    def compute(self, vertex, value, messages, edges):
        was_removed = self._removed(vertex, value)
        merged = value | frozenset(messages)
        if merged == value:
            return None, []
        outgoing = []
        if not was_removed and self._removed(vertex, merged):
            outgoing = [(neighbor, vertex) for neighbor, _w in edges]
        return merged, outgoing


def exact_k_core(graph: Graph, k: int) -> set[int]:
    """The k-core by direct iterative peeling (the test oracle)."""
    alive = set(graph.vertices)
    changed = True
    while changed:
        changed = False
        for vertex in list(alive):
            degree = sum(1 for n in graph.neighbors(vertex) if n in alive)
            if degree < k:
                alive.discard(vertex)
                changed = True
    return alive


def pregel_k_core(graph: Graph, k: int, max_supersteps: int = 300) -> DeltaJob:
    """k-core decomposition via the vertex-centric layer (undirected
    semantics; directed inputs are symmetrized). The job's final state
    maps each vertex to its known-removed neighbor set; use
    :func:`k_core_members` to extract the core."""
    undirected = (
        Graph(graph.vertices, graph.edges, directed=False) if graph.directed else graph
    )
    degrees = {v: undirected.degree(v) for v in undirected.vertices}
    return vertex_program_job(
        KCoreProgram(k, degrees), undirected, max_supersteps=max_supersteps
    )


def k_core_members(result_dict: dict[int, frozenset], degrees: dict[int, int], k: int) -> set[int]:
    """Extract the k-core from a finished :func:`pregel_k_core` state."""
    return {
        vertex
        for vertex, removed in result_dict.items()
        if degrees[vertex] - len(removed) >= k
    }


def pregel_connected_components(graph: Graph, max_supersteps: int = 300) -> DeltaJob:
    """Connected Components via the vertex-centric layer, with weak
    connectivity semantics (directed inputs are symmetrized) and the
    union-find ground truth attached."""
    undirected = (
        Graph(graph.vertices, graph.edges, directed=False) if graph.directed else graph
    )
    return vertex_program_job(
        MinLabelProgram(),
        undirected,
        max_supersteps=max_supersteps,
        truth=exact_connected_components(undirected),
    )


def pregel_sssp(
    graph: Graph,
    source: int,
    weights: dict[tuple[int, int], float] | None = None,
    max_supersteps: int = 300,
) -> DeltaJob:
    """SSSP via the vertex-centric layer (hop counts unless ``weights``
    are given), with the BFS ground truth attached for the unweighted
    case."""
    truth = exact_sssp(graph, source) if weights is None else None
    return vertex_program_job(
        ShortestPathsProgram(source),
        graph,
        weights=weights,
        max_supersteps=max_supersteps,
        truth=truth,
    )
