"""Vertex-centric ("think like a vertex") programming layer.

The paper's introduction places iterative dataflows next to specialized
vertex-centric systems like Pregel [11] and GraphLab [10]. This package
shows the two are one engine apart: a :class:`VertexProgram` — the
Pregel-style ``compute(vertex, value, messages, edges)`` function — is
compiled onto the delta-iteration engine (solution set = vertex values,
workset = in-flight messages), and optimistic recovery comes for free
through a generic message-replaying compensation.

Example::

    from repro.pregel import VertexProgram, vertex_program_job

    class MinLabel(VertexProgram):
        def initial_value(self, vertex):
            return vertex
        def compute(self, vertex, value, messages, edges):
            best = min(messages)
            if best < value:
                return best, [(n, best) for n, _w in edges]
            return None, []

    job = vertex_program_job(MinLabel(), graph)
    result = job.run(recovery=job.optimistic(), failures=...)
"""

from .library import (
    KCoreProgram,
    MaxValueProgram,
    MinLabelProgram,
    ShortestPathsProgram,
    exact_k_core,
    k_core_members,
    pregel_connected_components,
    pregel_k_core,
    pregel_sssp,
)
from .vertex_program import (
    PregelCompensation,
    VertexProgram,
    vertex_program_job,
    vertex_program_plan,
)

__all__ = [
    "KCoreProgram",
    "MaxValueProgram",
    "MinLabelProgram",
    "PregelCompensation",
    "ShortestPathsProgram",
    "VertexProgram",
    "exact_k_core",
    "k_core_members",
    "pregel_connected_components",
    "pregel_k_core",
    "pregel_sssp",
    "vertex_program_job",
    "vertex_program_plan",
]
