"""Compiling vertex programs onto the delta-iteration engine.

Execution model (message-driven Pregel):

* every vertex holds a value (the solution set);
* the workset holds in-flight ``(target, message)`` records;
* each superstep, every vertex with at least one incoming message runs
  :meth:`VertexProgram.compute` with its gathered messages and its
  adjacency, optionally updating its value and emitting new messages;
* the iteration terminates when no messages are in flight.

Superstep 0 is seeded by :meth:`VertexProgram.initial_messages` (by
default every vertex announces its initial value to its neighbors —
the right seed for value-propagation programs like Connected Components
and SSSP).

Recovery: :class:`PregelCompensation` resets lost vertices to their
initial values and rebuilds the workset from the surviving in-flight
messages plus :meth:`VertexProgram.recovery_messages` from every vertex
(default: re-announce the current value to all neighbors), which repairs
the reset vertices exactly like the paper's ``fix-components``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable

from ..algorithms.base import DeltaJob
from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..graph.graph import Graph
from ..iteration.delta import DeltaIterationSpec
from ..iteration.termination import EmptyWorkset
from ..runtime.executor import PartitionedDataset

#: the vertex-id key for values, messages and adjacency.
VERTEX_KEY: KeySpec = first_field("vertex")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.gather-messages"


class VertexProgram(ABC):
    """A Pregel-style vertex program.

    Values and messages may be any comparable/serializable Python
    objects. ``edges`` arguments are ``(neighbor, weight)`` pairs (weight
    1.0 unless the job was built with explicit weights).
    """

    #: identifier used for the compiled job and its plan.
    name: str = "vertex-program"

    @abstractmethod
    def initial_value(self, vertex: int) -> Any:
        """The vertex's value before superstep 0."""

    @abstractmethod
    def compute(
        self,
        vertex: int,
        value: Any,
        messages: list[Any],
        edges: list[tuple[int, float]],
    ) -> tuple[Any | None, list[tuple[int, Any]]]:
        """Process one superstep's messages.

        Returns ``(new value or None if unchanged, outgoing messages)``.
        ``messages`` is never empty — vertices without incoming messages
        do not run.
        """

    def initial_messages(
        self, vertex: int, value: Any, edges: list[tuple[int, float]]
    ) -> list[tuple[int, Any]]:
        """Messages seeding superstep 0 (default: announce the initial
        value to every neighbor)."""
        return [(neighbor, value) for neighbor, _weight in edges]

    def recovery_messages(
        self, vertex: int, value: Any, edges: list[tuple[int, float]]
    ) -> list[tuple[int, Any]]:
        """Messages injected after a compensation. Called for **every**
        vertex, so reset vertices re-learn from surviving neighbors and
        vice versa.

        The default re-announces the current value verbatim to every
        neighbor, which is consistent exactly when regular messages also
        carry the sender's value verbatim (Connected-Components-style
        programs). Programs whose messages transform the value — SSSP
        sends ``value + edge weight`` — **must** override this to apply
        the same transformation, or the injected messages would violate
        the program's invariants (e.g. undershoot true distances).
        """
        return [(neighbor, value) for neighbor, _weight in edges]


def vertex_program_plan(program: VertexProgram) -> Plan:
    """Compile a vertex program into a delta-iteration step plan.

    Sources: ``values`` (solution set), ``messages`` (workset,
    ``(target, payload)`` records), ``adjacency`` (static ``(vertex,
    ((neighbor, weight), ...))`` records). Sinks: ``updates`` (the
    solution delta) and ``out-messages`` (the next workset).
    """
    plan = Plan(f"{program.name}-step")
    values = plan.source("values", partitioned_by=VERTEX_KEY)
    messages = plan.source("messages", partitioned_by=VERTEX_KEY)
    adjacency = plan.source("adjacency", partitioned_by=VERTEX_KEY)

    inbox = messages.group_reduce(
        VERTEX_KEY,
        fn=lambda vertex, group: [(vertex, [payload for _t, payload in group])],
        name="gather-messages",
    )
    with_state = inbox.join(
        values,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda gathered, state: (gathered[0], state[1], gathered[1]),
        name="join-state",
        preserves="left",
    )
    with_adjacency = with_state.join(
        adjacency,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda state, adj: (state[0], state[1], state[2], list(adj[1])),
        name="join-adjacency",
        preserves="left",
    )

    def run_compute(record: Any) -> Iterable[Any]:
        vertex, value, inbox_messages, edges = record
        new_value, outgoing = program.compute(vertex, value, inbox_messages, edges)
        if new_value is not None:
            yield ("delta", vertex, new_value)
        for target, payload in outgoing:
            yield ("msg", target, payload)

    outcome = with_adjacency.flat_map(run_compute, name="compute")
    outcome.filter(lambda r: r[0] == "delta", name="select-updates").map(
        lambda r: (r[1], r[2]), name="updates"
    )
    outcome.filter(lambda r: r[0] == "msg", name="select-messages").map(
        lambda r: (r[1], r[2]), name="out-messages"
    )
    return plan


class PregelCompensation(CompensationFunction):
    """Generic compensation for compiled vertex programs.

    Lost vertices are reset to :meth:`VertexProgram.initial_value`; the
    workset is rebuilt from the surviving in-flight messages plus the
    program's :meth:`VertexProgram.recovery_messages` for every vertex.
    """

    name = "fix-vertex-values"

    def __init__(self, program: VertexProgram, adjacency: dict[int, list[tuple[int, float]]]):
        self.program = program
        self._adjacency = adjacency

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return [
            (vertex, self.program.initial_value(vertex))
            for vertex, _old in ctx.initial_partition(partition_id)
        ]

    def rebuild_workset(
        self,
        solution: PartitionedDataset,
        workset: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> PartitionedDataset:
        records: list[tuple[int, Any]] = []
        # surviving in-flight messages must not be dropped
        for partition in workset.partitions:
            if partition is not None:
                records.extend(partition)
        # every vertex re-announces so reset vertices can be repaired
        for vertex, value in solution.all_records():
            records.extend(
                self.program.recovery_messages(
                    vertex, value, self._adjacency.get(vertex, [])
                )
            )
        return PartitionedDataset.from_records(
            records, ctx.parallelism, key=ctx.state_key
        )


def vertex_program_job(
    program: VertexProgram,
    graph: Graph,
    weights: dict[tuple[int, int], float] | None = None,
    max_supersteps: int = 300,
    truth: dict[int, Any] | None = None,
    truth_tolerance: float = 0.0,
) -> DeltaJob:
    """Compile ``program`` over ``graph`` into a runnable job.

    Undirected graphs get symmetric adjacency; ``weights`` (keyed by
    canonical edge tuples) attach edge weights, defaulting to 1.0.
    """
    if graph.num_vertices == 0:
        raise GraphError("vertex programs need a non-empty graph")
    adjacency: dict[int, list[tuple[int, float]]] = {v: [] for v in graph.vertices}
    for edge in graph.edges:
        weight = 1.0 if weights is None else weights.get(edge)
        if weight is None:
            raise GraphError(f"no weight for edge {edge!r}")
        adjacency[edge[0]].append((edge[1], weight))
        if not graph.directed:
            adjacency[edge[1]].append((edge[0], weight))
    initial_values = [(v, program.initial_value(v)) for v in graph.vertices]
    initial_messages: list[tuple[int, Any]] = []
    for vertex, value in initial_values:
        initial_messages.extend(
            program.initial_messages(vertex, value, adjacency[vertex])
        )
    adjacency_records = [
        (vertex, tuple(edges)) for vertex, edges in adjacency.items()
    ]
    spec = DeltaIterationSpec(
        name=program.name,
        step_plan=vertex_program_plan(program),
        solution_source="values",
        workset_source="messages",
        delta_output="updates",
        workset_output="out-messages",
        state_key=VERTEX_KEY,
        termination=EmptyWorkset(),
        max_supersteps=max_supersteps,
        message_counter=MESSAGE_COUNTER,
        truth=truth,
        truth_tolerance=truth_tolerance,
    )
    return DeltaJob(
        spec=spec,
        initial_solution=initial_values,
        initial_workset=initial_messages,
        statics={"adjacency": adjacency_records},
        compensation=PregelCompensation(program, adjacency),
        invariants=[KeySetPreserved()],
    )
