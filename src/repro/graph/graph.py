"""The graph type used by the algorithms and the demo."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import GraphError


class Graph:
    """A simple graph over integer vertex ids.

    The graph is stored as a vertex set plus an edge list; adjacency is
    built lazily and cached. Undirected graphs (the Connected Components
    input) store each edge once but report symmetric adjacency; directed
    graphs (the PageRank input) keep edge direction.

    Vertices without edges are legal — they form singleton components and
    hold 1/n of the PageRank mass via teleportation.
    """

    def __init__(
        self,
        vertices: Iterable[int],
        edges: Iterable[tuple[int, int]],
        directed: bool = False,
    ):
        self._vertices: list[int] = sorted(set(vertices))
        vertex_set = set(self._vertices)
        seen: set[tuple[int, int]] = set()
        self._edges: list[tuple[int, int]] = []
        for edge in edges:
            source, target = edge
            if source not in vertex_set or target not in vertex_set:
                raise GraphError(f"edge {edge!r} references an unknown vertex")
            if source == target:
                raise GraphError(f"self-loop {edge!r} is not supported")
            canonical = (source, target) if directed else (min(source, target), max(source, target))
            if canonical in seen:
                continue
            seen.add(canonical)
            self._edges.append(canonical)
        if any(v < 0 for v in self._vertices):
            raise GraphError("vertex ids must be non-negative integers")
        self.directed = directed
        self._adjacency: dict[int, list[int]] | None = None

    # -- basic accessors -----------------------------------------------------

    @property
    def vertices(self) -> list[int]:
        """All vertex ids, sorted ascending."""
        return list(self._vertices)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All edges (canonicalized; one entry per undirected edge)."""
        return list(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self._adjacency_map()

    def __iter__(self) -> Iterator[int]:
        return iter(self._vertices)

    # -- adjacency --------------------------------------------------------------

    def _adjacency_map(self) -> dict[int, list[int]]:
        if self._adjacency is None:
            adjacency: dict[int, list[int]] = {v: [] for v in self._vertices}
            for source, target in self._edges:
                adjacency[source].append(target)
                if not self.directed:
                    adjacency[target].append(source)
            for neighbor_list in adjacency.values():
                neighbor_list.sort()
            self._adjacency = adjacency
        return self._adjacency

    def neighbors(self, vertex: int) -> list[int]:
        """Adjacent vertices (out-neighbors for directed graphs)."""
        adjacency = self._adjacency_map()
        if vertex not in adjacency:
            raise GraphError(f"unknown vertex {vertex}")
        return list(adjacency[vertex])

    def degree(self, vertex: int) -> int:
        """Number of (out-)neighbors."""
        return len(self.neighbors(vertex))

    def out_degrees(self) -> dict[int, int]:
        """``{vertex: out-degree}`` for all vertices."""
        return {v: len(ns) for v, ns in self._adjacency_map().items()}

    # -- record views (what the dataflow plans consume) ---------------------------

    def symmetric_edge_records(self) -> list[tuple[int, int]]:
        """Edges as ``(vertex, neighbor)`` records, both directions.

        This is the ``graph`` dataset of the Connected Components
        dataflow: a message from a vertex must reach every neighbor, so
        each undirected edge appears twice.
        """
        records: list[tuple[int, int]] = []
        for source, target in self._edges:
            records.append((source, target))
            records.append((target, source))
        return records

    def transition_records(self) -> list[tuple[int, int, float]]:
        """Edges as ``(source, target, probability)`` records.

        This is the ``links`` dataset of the PageRank dataflow: each
        record carries the uniform transition probability
        ``1 / out-degree(source)``. Directed graphs use edge direction;
        undirected graphs treat every edge as bidirectional.
        """
        adjacency = self._adjacency_map()
        records: list[tuple[int, int, float]] = []
        for source, neighbor_list in adjacency.items():
            if not neighbor_list:
                continue
            probability = 1.0 / len(neighbor_list)
            for target in neighbor_list:
                records.append((source, target, probability))
        return records

    def dangling_vertices(self) -> list[int]:
        """Vertices with no out-edges (PageRank's dangling nodes)."""
        return [v for v, ns in self._adjacency_map().items() if not ns]

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """The induced subgraph on ``vertices``."""
        keep = set(vertices)
        unknown = keep - set(self._vertices)
        if unknown:
            raise GraphError(f"unknown vertices {sorted(unknown)[:5]}")
        edges = [(s, t) for s, t in self._edges if s in keep and t in keep]
        return Graph(keep, edges, directed=self.directed)

    def copy(self) -> "Graph":
        """An independent copy sharing no mutable containers.

        The copy gets fresh vertex/edge lists and its own (lazily built)
        adjacency cache, so nothing a holder of the copy does — including
        mutating the lists its accessors return — can alias back into
        this graph. :class:`repro.views.MutableGraph` relies on this to
        seed epoch snapshots from caller-owned graphs.
        """
        clone = Graph.__new__(Graph)
        clone._vertices = list(self._vertices)
        clone._edges = list(self._edges)
        clone.directed = self.directed
        clone._adjacency = None
        return clone

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: same directedness, vertices and edges.

        Vertices and edges are stored canonically (sorted vertex ids,
        canonicalized deduplicated edges), so list comparison is a true
        set comparison.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.directed == other.directed
            and self._vertices == other._vertices
            and sorted(self._edges) == sorted(other._edges)
        )

    def __hash__(self) -> int:
        return hash(
            (self.directed, tuple(self._vertices), tuple(sorted(self._edges)))
        )

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return f"Graph({kind}, |V|={self.num_vertices}, |E|={self.num_edges})"
