"""Graph properties, computed independently of the dataflow engine.

These serve two roles: exploratory statistics for the demo, and *test
oracles* — the union-find component labeling here shares no code with the
delta-iteration Connected Components, so agreement between the two is a
meaningful correctness check.
"""

from __future__ import annotations

import statistics

from .graph import Graph


class _UnionFind:
    """Minimal union-find with path compression (internal oracle)."""

    def __init__(self, elements: list[int]):
        self._parent = {e: e for e in elements}

    def find(self, element: int) -> int:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            # Attach the larger root id under the smaller so the final
            # representative of each set is its minimum element — the
            # same labels min-propagation converges to.
            if root_a < root_b:
                self._parent[root_b] = root_a
            else:
                self._parent[root_a] = root_b


def connected_component_labels(graph: Graph) -> dict[int, int]:
    """``{vertex: minimum vertex id of its component}``.

    This is exactly the fixpoint of the paper's diffusion algorithm ("at
    convergence, all vertices in a connected component share the same
    label, namely the minimum of the initial labels", §2.2.1), computed
    by union-find instead of iteration. Directed graphs are treated as
    undirected (weak connectivity).
    """
    union_find = _UnionFind(graph.vertices)
    for source, target in graph.edges:
        union_find.union(source, target)
    return {vertex: union_find.find(vertex) for vertex in graph.vertices}


def num_components(graph: Graph) -> int:
    """Number of (weakly) connected components."""
    return len(set(connected_component_labels(graph).values()))


def component_sizes(graph: Graph) -> dict[int, int]:
    """``{component label: size}``."""
    sizes: dict[int, int] = {}
    for label in connected_component_labels(graph).values():
        sizes[label] = sizes.get(label, 0) + 1
    return sizes


def is_connected(graph: Graph) -> bool:
    """True when the graph has exactly one component (and >= 1 vertex)."""
    return graph.num_vertices > 0 and num_components(graph) == 1


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Min / max / mean / median of the (out-)degree distribution."""
    degrees = [graph.degree(v) for v in graph.vertices]
    if not degrees:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0}
    return {
        "min": float(min(degrees)),
        "max": float(max(degrees)),
        "mean": statistics.fmean(degrees),
        "median": float(statistics.median(degrees)),
    }
