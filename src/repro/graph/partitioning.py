"""Vertex-to-partition placement helpers.

The demo lets attendees "choose which partitions to fail" (§3.1) and then
highlights the lost vertices. These helpers expose the engine's hash
placement so demo scenarios and tests can predict exactly which vertices a
worker failure destroys.
"""

from __future__ import annotations

from ..runtime.partition import HashPartitioner
from .graph import Graph


def partition_vertices(graph: Graph, parallelism: int) -> dict[int, int]:
    """``{vertex: partition id}`` under the engine's hash placement."""
    partitioner = HashPartitioner(parallelism)
    return {vertex: partitioner.partition(vertex) for vertex in graph.vertices}


def vertices_on_partition(graph: Graph, parallelism: int, partition_id: int) -> list[int]:
    """The vertices whose state lives on ``partition_id``."""
    partitioner = HashPartitioner(parallelism)
    return [
        vertex
        for vertex in graph.vertices
        if partitioner.partition(vertex) == partition_id
    ]
