"""Edge-list I/O.

The format is the one graph datasets like the Twitter snapshot ship in:
one ``source target`` pair per line, ``#`` comments allowed. Vertices are
the union of all endpoints plus any ids listed on optional ``v <id>``
lines (for isolated vertices).
"""

from __future__ import annotations

from pathlib import Path

from ..errors import GraphError
from .graph import Graph


def read_edge_list(path: str | Path, directed: bool = False) -> Graph:
    """Parse an edge-list file into a :class:`Graph`.

    Raises :class:`repro.errors.GraphError` on malformed lines with the
    offending line number.
    """
    path = Path(path)
    vertices: set[int] = set()
    edges: list[tuple[int, int]] = []
    with path.open() as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if fields[0] == "v":
                if len(fields) != 2:
                    raise GraphError(f"{path}:{line_number}: malformed vertex line {line!r}")
                try:
                    vertices.add(int(fields[1]))
                except ValueError as exc:
                    raise GraphError(f"{path}:{line_number}: bad vertex id {fields[1]!r}") from exc
                continue
            if len(fields) != 2:
                raise GraphError(f"{path}:{line_number}: expected two fields, got {line!r}")
            try:
                source, target = int(fields[0]), int(fields[1])
            except ValueError as exc:
                raise GraphError(f"{path}:{line_number}: non-integer endpoint in {line!r}") from exc
            vertices.add(source)
            vertices.add(target)
            edges.append((source, target))
    return Graph(vertices, edges, directed=directed)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write a graph in the edge-list format :func:`read_edge_list`
    accepts, including ``v`` lines for isolated vertices so a round trip
    is lossless."""
    path = Path(path)
    touched = {endpoint for edge in graph.edges for endpoint in edge}
    with path.open("w") as handle:
        handle.write(f"# {graph!r}\n")
        for vertex in graph.vertices:
            if vertex not in touched:
                handle.write(f"v {vertex}\n")
        for source, target in graph.edges:
            handle.write(f"{source} {target}\n")
