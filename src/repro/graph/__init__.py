"""Graph substrate.

The demo runs its algorithms on "either a small hand-crafted graph or a
larger graph derived from real-world data" (§3.1 — a Twitter follower
snapshot). This package provides:

* :mod:`repro.graph.graph` — the :class:`Graph` type used throughout,
* :mod:`repro.graph.generators` — the small demo graph plus deterministic
  synthetic generators, including a power-law "Twitter-like" graph that
  substitutes for the real snapshot (see DESIGN.md),
* :mod:`repro.graph.io` — edge-list reading and writing,
* :mod:`repro.graph.partitioning` — which vertices live on which worker,
  so failure scenarios can be designed and visualized,
* :mod:`repro.graph.properties` — degree statistics and component
  structure (via an independent union-find, usable as a test oracle).
"""

from .generators import (
    chain_graph,
    demo_graph,
    demo_pagerank_graph,
    erdos_renyi_graph,
    grid_graph,
    multi_component_graph,
    star_graph,
    twitter_like_graph,
)
from .graph import Graph
from .io import read_edge_list, write_edge_list
from .partitioning import partition_vertices, vertices_on_partition
from .properties import (
    component_sizes,
    connected_component_labels,
    degree_statistics,
    is_connected,
    num_components,
)

__all__ = [
    "Graph",
    "chain_graph",
    "component_sizes",
    "connected_component_labels",
    "degree_statistics",
    "demo_graph",
    "demo_pagerank_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "is_connected",
    "multi_component_graph",
    "num_components",
    "partition_vertices",
    "read_edge_list",
    "star_graph",
    "twitter_like_graph",
    "vertices_on_partition",
    "write_edge_list",
]
