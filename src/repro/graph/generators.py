"""Deterministic graph generators.

All randomized generators take an explicit seed and build the graph with
:mod:`networkx` (relabeled to contiguous integer ids), so every experiment
is exactly reproducible.

:func:`demo_graph` is the reproduction's "small hand-crafted graph"
(§3.1): three connected components of different shapes, small enough to
trace iteration by iteration. :func:`twitter_like_graph` stands in for the
paper's Twitter follower snapshot — a directed graph with a heavy-tailed
in-degree distribution (see the substitution notes in DESIGN.md).
"""

from __future__ import annotations

import networkx as nx

from ..errors import GraphError
from .graph import Graph


def demo_graph() -> Graph:
    """The small hand-crafted demo graph for Connected Components.

    16 vertices in three components:

    * a 7-vertex blob (0–6) with a couple of internal cycles,
    * a 6-cycle (7–12),
    * a 3-path (13–15).

    Final component labels under min-label propagation: 0, 7 and 13.
    """
    edges = [
        # component A: blob around 0-6
        (0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (2, 6),
        # component B: 6-cycle 7-12
        (7, 8), (8, 9), (9, 10), (10, 11), (11, 12), (12, 7),
        # component C: path 13-15
        (13, 14), (14, 15),
    ]
    return Graph(range(16), edges, directed=False)


def demo_pagerank_graph() -> Graph:
    """The small hand-crafted demo graph for PageRank.

    A 10-vertex directed graph with a clear "important" hub (vertex 0),
    a secondary hub (vertex 1), a few peripheral vertices and one
    dangling vertex (9) to exercise dangling-mass redistribution — so the
    demo's grow/shrink animation has visible structure.
    """
    edges = [
        (1, 0), (2, 0), (3, 0), (4, 0),
        (5, 1), (6, 1), (0, 1),
        (2, 3), (3, 2),
        (4, 5), (5, 4),
        (6, 7), (7, 8), (8, 6),
        (0, 9),
    ]
    return Graph(range(10), edges, directed=True)


def multi_component_graph(
    num_components: int, component_size: int, seed: int = 7
) -> Graph:
    """Several random connected components of equal size.

    Each component is a random spanning tree plus a few extra edges, so
    min-label propagation needs several supersteps per component.
    """
    if num_components < 1 or component_size < 1:
        raise GraphError("num_components and component_size must be >= 1")
    rng = nx.utils.create_random_state(seed)
    edges: list[tuple[int, int]] = []
    for component in range(num_components):
        offset = component * component_size
        tree = nx.random_labeled_tree(component_size, seed=rng)
        edges.extend((offset + u, offset + v) for u, v in tree.edges())
        extra = max(1, component_size // 4)
        candidates = nx.gnm_random_graph(component_size, extra, seed=rng)
        edges.extend((offset + u, offset + v) for u, v in candidates.edges() if u != v)
    return Graph(range(num_components * component_size), edges, directed=False)


def chain_graph(length: int) -> Graph:
    """A path of ``length`` vertices — worst case for label propagation
    (diameter = length - 1), useful for long-running delta iterations."""
    if length < 1:
        raise GraphError(f"chain length must be >= 1, got {length}")
    return Graph(range(length), [(i, i + 1) for i in range(length - 1)], directed=False)


def star_graph(spokes: int) -> Graph:
    """A hub (vertex 0) with ``spokes`` leaves — converges in two
    supersteps and concentrates PageRank mass on the hub."""
    if spokes < 1:
        raise GraphError(f"star needs >= 1 spokes, got {spokes}")
    return Graph(range(spokes + 1), [(0, i) for i in range(1, spokes + 1)], directed=False)


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid — a sparse connected graph with moderate
    diameter, handy as a mid-size workload."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be >= 1")
    def vid(r: int, c: int) -> int:
        return r * cols + c
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(range(rows * cols), edges, directed=False)


def erdos_renyi_graph(num_vertices: int, probability: float, seed: int = 7) -> Graph:
    """A G(n, p) random graph (undirected)."""
    if not 0.0 <= probability <= 1.0:
        raise GraphError(f"probability must be in [0, 1], got {probability}")
    generated = nx.gnp_random_graph(num_vertices, probability, seed=seed)
    return Graph(range(num_vertices), generated.edges(), directed=False)


def twitter_like_graph(num_vertices: int, attachment: int = 3, seed: int = 7) -> Graph:
    """A directed heavy-tailed graph substituting the Twitter snapshot.

    Built from a Barabási–Albert preferential-attachment graph whose
    edges are directed from the newer vertex toward the earlier (more
    popular) one — yielding the skewed in-degree distribution that makes
    PageRank interesting — plus a reciprocal back-edge for 30% of links
    (deterministically chosen) so the graph is not a DAG and ranks
    circulate.
    """
    if num_vertices <= attachment:
        raise GraphError(
            f"num_vertices ({num_vertices}) must exceed attachment ({attachment})"
        )
    base = nx.barabasi_albert_graph(num_vertices, attachment, seed=seed)
    edges: list[tuple[int, int]] = []
    for u, v in base.edges():
        newer, older = max(u, v), min(u, v)
        edges.append((newer, older))
        if (newer + older) % 10 < 3:  # deterministic 30% reciprocity
            edges.append((older, newer))
    return Graph(range(num_vertices), edges, directed=True)
