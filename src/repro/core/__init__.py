"""Optimistic recovery — the paper's contribution.

This package implements the fault-tolerance layer of the reproduction:

* :mod:`repro.core.compensation` — the user-facing
  :class:`CompensationFunction` protocol ("a user-defined compensation
  function which a system uses to re-initialize lost partitions", §2.2);
* :mod:`repro.core.recovery` — the strategy interface and the context
  objects iteration drivers hand to strategies;
* :mod:`repro.core.optimistic` — checkpoint-free optimistic recovery;
* :mod:`repro.core.checkpointing` — classic rollback recovery with a
  configurable checkpoint interval (the pessimistic baseline);
* :mod:`repro.core.restart` — restart-from-scratch (no fault tolerance)
  and lineage-based recovery, which §2.2 argues degenerates to a restart
  for iterative jobs with all-to-all dependencies;
* :mod:`repro.core.guarantees` — consistency invariants compensation
  functions must uphold, checked after every compensation;
* :mod:`repro.core.confined` — confined recovery: a bounded message log
  on the shuffle path so only the *lost* partitions are rebuilt, from
  local snapshots plus survivor log replay;
* :mod:`repro.core.adaptive` — the adaptive selector that picks
  restart/checkpoint/optimistic/confined per job from a cost model;
* :mod:`repro.core.strategies` — the strategy-name registry behind
  ``EngineConfig.recovery``, the service and the CLI ``--strategy`` flag.
"""

from .adaptive import AdaptiveRecovery, WorkloadObservation, select_strategy
from .checkpointing import CheckpointRecovery
from .compensation import CompensationContext, CompensationFunction
from .confined import ConfinedRecovery, MessageLog
from .guarantees import (
    KeySetPreserved,
    MassConservation,
    PartitionPlacement,
    StateInvariant,
    ValuesFromInitial,
    check_invariants,
)
from .incremental import IncrementalCheckpointRecovery
from .optimistic import OptimisticRecovery
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy
from .restart import LineageRecovery, RestartRecovery
from .strategies import STRATEGY_NAMES, build_strategy, resolve_recovery

__all__ = [
    "AdaptiveRecovery",
    "CheckpointRecovery",
    "CompensationContext",
    "CompensationFunction",
    "ConfinedRecovery",
    "IncrementalCheckpointRecovery",
    "KeySetPreserved",
    "LineageRecovery",
    "MassConservation",
    "MessageLog",
    "OptimisticRecovery",
    "PartitionPlacement",
    "RecoveryContext",
    "RecoveryOutcome",
    "RecoveryStrategy",
    "RestartRecovery",
    "STRATEGY_NAMES",
    "StateInvariant",
    "ValuesFromInitial",
    "WorkloadObservation",
    "build_strategy",
    "check_invariants",
    "resolve_recovery",
    "select_strategy",
]
