"""Optimistic recovery — the paper's contribution.

This package implements the fault-tolerance layer of the reproduction:

* :mod:`repro.core.compensation` — the user-facing
  :class:`CompensationFunction` protocol ("a user-defined compensation
  function which a system uses to re-initialize lost partitions", §2.2);
* :mod:`repro.core.recovery` — the strategy interface and the context
  objects iteration drivers hand to strategies;
* :mod:`repro.core.optimistic` — checkpoint-free optimistic recovery;
* :mod:`repro.core.checkpointing` — classic rollback recovery with a
  configurable checkpoint interval (the pessimistic baseline);
* :mod:`repro.core.restart` — restart-from-scratch (no fault tolerance)
  and lineage-based recovery, which §2.2 argues degenerates to a restart
  for iterative jobs with all-to-all dependencies;
* :mod:`repro.core.guarantees` — consistency invariants compensation
  functions must uphold, checked after every compensation.
"""

from .checkpointing import CheckpointRecovery
from .compensation import CompensationContext, CompensationFunction
from .guarantees import (
    KeySetPreserved,
    MassConservation,
    PartitionPlacement,
    StateInvariant,
    ValuesFromInitial,
    check_invariants,
)
from .incremental import IncrementalCheckpointRecovery
from .optimistic import OptimisticRecovery
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy
from .restart import LineageRecovery, RestartRecovery

__all__ = [
    "CheckpointRecovery",
    "CompensationContext",
    "CompensationFunction",
    "IncrementalCheckpointRecovery",
    "KeySetPreserved",
    "LineageRecovery",
    "MassConservation",
    "OptimisticRecovery",
    "PartitionPlacement",
    "RecoveryContext",
    "RecoveryOutcome",
    "RecoveryStrategy",
    "RestartRecovery",
    "StateInvariant",
    "ValuesFromInitial",
    "check_invariants",
]
