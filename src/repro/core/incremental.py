"""Incremental checkpointing for delta iterations.

Classic rollback recovery writes the *entire* solution set every
interval. But a delta iteration touches ever fewer elements per superstep
(the paper's §2.1: "in many cases parts of the intermediate state
converge at different speeds"), so most of every full checkpoint re-writes
unchanged data. :class:`IncrementalCheckpointRecovery` instead writes

* one **base** checkpoint of the full solution set after the first
  superstep, then
* per superstep, only the records that changed (the applied delta) plus
  the (small, shrinking) workset.

Its failure-free I/O therefore tracks the update rate instead of the
state size. On failure it replays: restore the base, apply every stored
delta in superstep order, resume with the last stored workset. Because
the replayed state equals the most recent committed state exactly, no
re-execution of supersteps is needed — recovery cost is pure I/O.

This is a reproduction-side extension (the "incremental state snapshots"
direction later explored for Flink); the A3 ablation benchmark compares
it against full checkpointing and optimistic recovery.
"""

from __future__ import annotations

from typing import Any

from ..errors import IterationError
from ..observability.span import SpanKind
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy


class IncrementalCheckpointRecovery(RecoveryStrategy):
    """Delta-iteration checkpointing that writes only changed records.

    Only valid for delta iterations (the strategy needs a workset and
    keyed ``(key, value)`` state records); using it on a bulk iteration
    raises :class:`repro.errors.IterationError` at the first commit —
    bulk iterations rewrite all state every superstep, so there is
    nothing incremental to exploit.
    """

    name = "incremental-checkpoint"

    def __init__(self) -> None:
        self._base_superstep: int | None = None
        self._delta_supersteps: list[int] = []
        self._last_state: list[dict[Any, Any]] | None = None
        self.records_written = 0

    # -- storage keys ----------------------------------------------------------

    def _base_key(self, ctx: RecoveryContext, pid: int) -> str:
        return f"incremental/{ctx.job_name}/base/{pid}"

    def _delta_key(self, ctx: RecoveryContext, superstep: int, pid: int) -> str:
        return f"incremental/{ctx.job_name}/delta/{superstep}/{pid}"

    def _workset_key(self, ctx: RecoveryContext, pid: int) -> str:
        return f"incremental/{ctx.job_name}/workset/{pid}"

    # -- hooks ------------------------------------------------------------------

    def on_start(self, ctx: RecoveryContext) -> None:
        backend = ctx.state_backend
        if backend is not None and backend.supports_change_tracking:
            backend.enable_change_tracking()

    def on_superstep_committed(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None = None,
    ) -> None:
        if workset is None:
            raise IterationError(
                "IncrementalCheckpointRecovery requires a delta iteration"
            )
        backend = ctx.state_backend
        tracking = backend is not None and backend.change_tracking_enabled
        with ctx.tracer.span(
            "checkpoint-write",
            kind=SpanKind.CHECKPOINT,
            superstep=superstep,
            incremental=True,
            state_backend=backend.name if backend is not None else "none",
        ) as span:
            written = 0
            if self._base_superstep is None:
                # first commit: full base checkpoint
                for pid, records in enumerate(state.partitions):
                    written += ctx.storage.write(
                        self._base_key(ctx, pid), records or []
                    )
                self._base_superstep = superstep
                if tracking:
                    # the base IS the committed state; restart the change log
                    backend.clear_changes()
            elif tracking:
                # the backend recorded exactly which records changed since
                # the last commit — no full-state scan needed
                for pid, changed in enumerate(backend.drain_changes()):
                    written += ctx.storage.write(
                        self._delta_key(ctx, superstep, pid), changed
                    )
                self._delta_supersteps.append(superstep)
            else:
                assert self._last_state is not None
                for pid, records in enumerate(state.partitions):
                    changed = [
                        record
                        for record in (records or [])
                        if self._last_state[pid].get(ctx.state_key(record)) != record
                    ]
                    written += ctx.storage.write(
                        self._delta_key(ctx, superstep, pid), changed
                    )
                self._delta_supersteps.append(superstep)
            # the workset is tiny and always replaced wholesale
            for pid, records in enumerate(workset.partitions):
                written += ctx.storage.write(
                    self._workset_key(ctx, pid), records or []
                )
            if not tracking:
                self._last_state = [
                    {ctx.state_key(record): record for record in (records or [])}
                    for records in state.partitions
                ]
            self.records_written += written
            span.set_attribute("records", written)
        ctx.cluster.events.record(
            EventKind.CHECKPOINT_WRITTEN,
            time=ctx.executor.clock.now,
            superstep=superstep,
            records=written,
            incremental=True,
        )

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        if workset is None:
            raise IterationError(
                "IncrementalCheckpointRecovery requires a delta iteration"
            )
        if self._base_superstep is None:
            # nothing checkpointed yet: fall back to the pinned inputs
            with ctx.tracer.span(
                "restart", kind=SpanKind.RESTART, superstep=superstep
            ):
                restored = PartitionedDataset(
                    partitions=[
                        ctx.storage.read(ctx.initial_state_key(pid))
                        for pid in range(ctx.parallelism)
                    ],
                    partitioned_by=ctx.state_key,
                )
                restored_workset = PartitionedDataset(
                    partitions=[
                        ctx.storage.read(ctx.initial_workset_key(pid))
                        for pid in range(ctx.parallelism)
                    ],
                    partitioned_by=ctx.state_key,
                )
            ctx.cluster.events.record(
                EventKind.RESTART,
                time=ctx.executor.clock.now,
                superstep=superstep,
                reason="no incremental base checkpoint available",
            )
            return RecoveryOutcome(
                state=restored, workset=restored_workset, restarted=True
            )
        with ctx.tracer.span(
            "rollback-replay",
            kind=SpanKind.ROLLBACK,
            superstep=superstep,
            incremental=True,
        ):
            partitions: list[list[Any] | None] = []
            for pid in range(ctx.parallelism):
                merged = {
                    ctx.state_key(record): record
                    for record in ctx.storage.read(self._base_key(ctx, pid))
                }
                for delta_superstep in self._delta_supersteps:
                    for record in ctx.storage.read(
                        self._delta_key(ctx, delta_superstep, pid)
                    ):
                        merged[ctx.state_key(record)] = record
                partitions.append(list(merged.values()))
            restored = PartitionedDataset(
                partitions=partitions, partitioned_by=ctx.state_key
            )
            restored_workset = PartitionedDataset(
                partitions=[
                    ctx.storage.read(self._workset_key(ctx, pid))
                    for pid in range(ctx.parallelism)
                ],
                partitioned_by=ctx.state_key,
            )
        last_committed = (
            self._delta_supersteps[-1] if self._delta_supersteps else self._base_superstep
        )
        ctx.cluster.events.record(
            EventKind.ROLLBACK,
            time=ctx.executor.clock.now,
            superstep=superstep,
            restored_from=last_committed,
            incremental=True,
        )
        return RecoveryOutcome(
            state=restored,
            workset=restored_workset,
            rolled_back_to=last_committed,
        )

    def reset(self) -> None:
        self._base_superstep = None
        self._delta_supersteps = []
        self._last_state = None
        self.records_written = 0
