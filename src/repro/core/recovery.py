"""Recovery strategy interface.

The iteration drivers treat fault tolerance as a plugin. During a run a
strategy receives two kinds of calls:

* :meth:`RecoveryStrategy.on_superstep_committed` after every successful
  superstep — where pessimistic strategies pay their failure-free price
  (writing checkpoints); optimistic recovery does nothing here, which *is*
  the paper's headline property ("failure-free execution proceeds as if no
  fault tolerance is needed");
* :meth:`RecoveryStrategy.recover` when a failure destroyed partitions —
  the driver has already killed the workers, marked the partitions lost
  and acquired replacement workers; the strategy must return a complete,
  consistent state (and workset, for delta iterations) to resume from.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..dataflow.datatypes import KeySpec
from ..observability.tracer import NOOP_TRACER, Tracer
from ..runtime.cluster import SimulatedCluster
from ..runtime.executor import PartitionedDataset, PlanExecutor
from ..runtime.storage import StableStorage

if TYPE_CHECKING:
    from ..runtime.cache import SuperstepExecutionCache
    from ..runtime.state import StateBackend


@dataclass
class RecoveryContext:
    """Everything a strategy may need, assembled by the iteration driver.

    Attributes:
        job_name: name of the running iteration (keys checkpoint storage).
        cluster: the simulated cluster (already repaired when
            :meth:`RecoveryStrategy.recover` is called).
        executor: the plan executor — exposes the clock and metrics that
            recovery work must be charged to.
        storage: simulated stable storage; the driver pins the initial
            state under ``input/<job>/state/<pid>`` (and the initial
            workset under ``input/<job>/workset/<pid>``) so strategies can
            re-read inputs after a failure at the modeled I/O cost.
        state_key: the key spec the iterative state is partitioned by.
        statics: loop-invariant inputs, bound and partitioned (e.g. the
            graph's edges) — compensation functions may consult them.
        initial_state: the state the iteration started from.
        initial_workset: the initial workset (delta iterations only).
        state_backend: the delta driver's solution-set backend, when one
            is in use — strategies may consult it for zero-copy partition
            access and (when supported) per-superstep change logs.
        execution_cache: the run's superstep execution cache, when one is
            enabled. The driver invalidates it on every failure (cached
            partitions lived on the failed workers); strategies whose
            repair work re-places static data may additionally call
            :meth:`~repro.runtime.cache.SuperstepExecutionCache.invalidate`
            themselves if they disturb placements outside the lost set.
    """

    job_name: str
    cluster: SimulatedCluster
    executor: PlanExecutor
    storage: StableStorage
    state_key: KeySpec
    statics: dict[str, PartitionedDataset] = field(default_factory=dict)
    initial_state: PartitionedDataset | None = None
    initial_workset: PartitionedDataset | None = None
    state_backend: "StateBackend | None" = None
    execution_cache: "SuperstepExecutionCache | None" = None

    @property
    def parallelism(self) -> int:
        return self.cluster.parallelism

    @property
    def tracer(self) -> Tracer:
        """The run's span tracer (the no-op tracer unless tracing is on).

        Strategies open recovery-phase spans (checkpoint writes, rollback
        restores, compensation, restarts) through this so the profiler can
        attribute their costs.
        """
        return getattr(self.executor, "tracer", NOOP_TRACER)

    def initial_state_key(self, partition_id: int) -> str:
        """Storage key of the pinned initial state of one partition."""
        return f"input/{self.job_name}/state/{partition_id}"

    def initial_workset_key(self, partition_id: int) -> str:
        """Storage key of the pinned initial workset of one partition."""
        return f"input/{self.job_name}/workset/{partition_id}"


@dataclass
class RecoveryOutcome:
    """What a strategy hands back to the driver.

    Attributes:
        state: the complete post-recovery state (no lost partitions).
        workset: the post-recovery workset (``None`` for bulk iterations).
        restarted: the strategy threw everything away and restarted from
            the initial inputs (the driver resets its termination
            criterion in response).
        rolled_back_to: superstep of the checkpoint that was restored, or
            ``None``.
        compensated: a compensation function re-initialized the state.
        healed_partitions: when recovery was *confined*, the ids of the
            partitions that were rebuilt — survivors kept their state
            untouched, so the delta driver reinstalls only these
            partitions into its state backend instead of rebuilding every
            index. ``None`` for global strategies.
    """

    state: PartitionedDataset
    workset: PartitionedDataset | None = None
    restarted: bool = False
    rolled_back_to: int | None = None
    compensated: bool = False
    healed_partitions: list[int] | None = None


class RecoveryStrategy(ABC):
    """Base class of all recovery strategies."""

    #: short identifier used in reports and event payloads.
    name: str = "abstract"

    #: when True, the driver calls :meth:`capture_preloss` with the
    #: computed post-superstep state *before* marking partitions lost —
    #: confined recovery uses this as its deterministic replay oracle.
    needs_preloss_capture: bool = False

    def on_start(self, ctx: RecoveryContext) -> None:
        """Called once before superstep 0."""

    def capture_preloss(
        self,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> None:
        """Called just before the driver destroys ``lost_partitions``.

        ``state``/``workset`` still hold the complete superstep result the
        failure is about to wipe; strategies that replay survivors' logged
        messages forward capture the lost partitions' contents here — the
        simulator's stand-in for the value a deterministic replay would
        recompute. Default: no-op.
        """

    def on_superstep_committed(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None = None,
    ) -> None:
        """Called after every failure-free superstep; the hook where
        pessimistic strategies pay their failure-free overhead."""

    @abstractmethod
    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        """Repair ``state`` (whose ``lost_partitions`` are ``None``) into
        a complete consistent state to resume from."""

    def reset(self) -> None:
        """Drop per-run internal state (e.g. remembered checkpoints)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
