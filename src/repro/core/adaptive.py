"""Adaptive recovery-strategy selection.

The right fault-tolerance mechanism depends on the workload: restart is
free until a failure strikes but re-executes everything; checkpointing
taxes every superstep; optimistic recovery is free when failure-free but
pays compensation plus convergence washout per failure; confined recovery
pays a small log/snapshot tax and recovers only the lost partitions.
:class:`AdaptiveRecovery` picks between them per job from a
:class:`WorkloadObservation` — state size, message volume, expected
failure rate and blast radius — using the same cost constants the
simulated clock charges (:class:`repro.config.CostModel`), and re-selects
when the observed failure rate disagrees with the prediction.

The estimator intentionally mirrors the simulator's charging model (the
six-plus-two cost categories of the recovery-cost profiler) rather than
inventing its own units, so its break-even points line up with what the
A9/S8 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import CostModel
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .checkpointing import CheckpointRecovery
from .compensation import CompensationFunction
from .confined import ConfinedRecovery
from .guarantees import StateInvariant
from .optimistic import OptimisticRecovery
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy
from .restart import RestartRecovery


@dataclass(frozen=True)
class WorkloadObservation:
    """What the selector knows (or assumes) about a job.

    Attributes:
        state_records: total records of iterative state.
        parallelism: number of state partitions.
        failure_rate: expected failures per superstep.
        messages_per_superstep: records crossing shuffle/broadcast
            channels per superstep (the volume a message log would
            absorb).
        expected_supersteps: how long the job is expected to run.
        lost_fraction: fraction of partitions destroyed by one failure
            (one worker's share of the cluster).
    """

    state_records: int
    parallelism: int
    failure_rate: float
    messages_per_superstep: float
    expected_supersteps: int
    lost_fraction: float


def estimate_strategy_costs(
    obs: WorkloadObservation,
    cost_model: CostModel,
    *,
    checkpoint_interval: int = 2,
    snapshot_interval: int = 4,
    washout_supersteps: int = 3,
    has_compensation: bool = False,
) -> dict[str, float]:
    """Expected fault-tolerance cost per superstep, per strategy.

    Each estimate is ``failure-free overhead + failure_rate × per-failure
    recovery cost``, in simulated seconds, using the same per-record
    constants the clock charges. Strategies that are not applicable
    (optimistic without a compensation function) are omitted.
    """
    m = cost_model
    state = float(obs.state_records)
    messages = float(obs.messages_per_superstep)
    rate = max(0.0, obs.failure_rate)
    # Re-executing one superstep: push the state through the plan and
    # move the messages across the network.
    step_cost = state * m.cpu_per_record + messages * m.network_per_record
    restore_all = state * m.restore_per_record
    estimates: dict[str, float] = {}
    # Restart: no overhead; a failure re-reads the inputs and repeats (on
    # average) half the run so far.
    estimates["restart"] = rate * (
        restore_all + 0.5 * obs.expected_supersteps * step_cost
    )
    # Checkpoint: amortized global write; a failure restores everything
    # and repeats (on average) half an interval.
    estimates["checkpoint"] = (
        state * m.checkpoint_per_record / checkpoint_interval
        + rate * (restore_all + 0.5 * checkpoint_interval * step_cost)
    )
    # Optimistic: free when failure-free; a failure compensates all
    # partitions and washes the perturbation out over extra supersteps.
    if has_compensation:
        estimates["optimistic"] = rate * (
            state * m.compensation_per_record + washout_supersteps * step_cost
        )
    # Confined: log every delivery and snapshot periodically; a failure
    # restores and replays only the lost fraction.
    replay_window = 0.5 * (snapshot_interval + 1)
    estimates["confined"] = (
        messages * m.log_per_record
        + state * m.checkpoint_per_record / snapshot_interval
        + rate
        * obs.lost_fraction
        * (restore_all + replay_window * messages * m.replay_per_record)
    )
    return estimates


def select_strategy(
    obs: WorkloadObservation,
    cost_model: CostModel,
    *,
    checkpoint_interval: int = 2,
    snapshot_interval: int = 4,
    washout_supersteps: int = 3,
    has_compensation: bool = False,
) -> tuple[str, dict[str, float]]:
    """Pick the cheapest strategy for ``obs``; returns the name and all
    estimates (ties break deterministically by name)."""
    estimates = estimate_strategy_costs(
        obs,
        cost_model,
        checkpoint_interval=checkpoint_interval,
        snapshot_interval=snapshot_interval,
        washout_supersteps=washout_supersteps,
        has_compensation=has_compensation,
    )
    winner = min(sorted(estimates), key=lambda name: estimates[name])
    return winner, estimates


class AdaptiveRecovery(RecoveryStrategy):
    """Delegating strategy that picks restart/checkpoint/optimistic/confined.

    Selection happens at run start from a :class:`WorkloadObservation`
    (built from the initial state and the configured expectations) and is
    revisited after every failure with the *observed* failure rate; a
    switch takes effect from the next superstep on and is recorded as a
    ``strategy_selected`` event.

    Args:
        compensation: the job's compensation function — without one,
            optimistic recovery is simply not a candidate.
        invariants: consistency checks for the optimistic candidate.
        checkpoint_interval: interval of the checkpoint candidate.
        snapshot_interval: local-snapshot interval of the confined
            candidate.
        expected_failure_rate: assumed failures per superstep before any
            failure has been observed.
        expected_supersteps: assumed run length (restart's re-execution
            cost grows with it).
        washout_supersteps: assumed extra supersteps optimistic recovery
            needs to wash a compensation out.
        message_fanout: assumed shuffle records per state record per
            superstep (sizes the log/replay estimates before any traffic
            has been seen).
        reselect: whether to re-evaluate after each failure (disable for
            a pure ahead-of-time pick).
    """

    name = "adaptive"

    def __init__(
        self,
        compensation: CompensationFunction | None = None,
        invariants: list[StateInvariant] | None = None,
        *,
        checkpoint_interval: int = 2,
        snapshot_interval: int = 4,
        expected_failure_rate: float = 0.05,
        expected_supersteps: int = 20,
        washout_supersteps: int = 3,
        message_fanout: float = 2.0,
        reselect: bool = True,
    ):
        self.compensation = compensation
        self.invariants = list(invariants or [])
        self.checkpoint_interval = checkpoint_interval
        self.snapshot_interval = snapshot_interval
        self.expected_failure_rate = expected_failure_rate
        self.expected_supersteps = expected_supersteps
        self.washout_supersteps = washout_supersteps
        self.message_fanout = message_fanout
        self.reselect = reselect
        self._selected: RecoveryStrategy | None = None
        self._observation: WorkloadObservation | None = None
        self._estimates: dict[str, float] = {}
        self._failures = 0
        self.selections: list[tuple[int, str]] = []

    # -- selection ---------------------------------------------------------------

    @property
    def selected_name(self) -> str | None:
        """Name of the currently delegated-to strategy."""
        return self._selected.name if self._selected is not None else None

    @property
    def estimates(self) -> dict[str, float]:
        """Per-strategy cost estimates of the latest selection."""
        return dict(self._estimates)

    @property
    def needs_preloss_capture(self) -> bool:  # type: ignore[override]
        return (
            self._selected is not None and self._selected.needs_preloss_capture
        )

    def _build(self, name: str) -> RecoveryStrategy:
        if name == "restart":
            return RestartRecovery()
        if name == "checkpoint":
            return CheckpointRecovery(interval=self.checkpoint_interval)
        if name == "optimistic":
            assert self.compensation is not None
            return OptimisticRecovery(self.compensation, self.invariants)
        assert name == "confined"
        return ConfinedRecovery(snapshot_interval=self.snapshot_interval)

    def _observe(self, ctx: RecoveryContext) -> WorkloadObservation:
        state_records = (
            ctx.initial_state.num_records() if ctx.initial_state is not None else 0
        )
        parallelism = ctx.parallelism
        per_worker = ctx.cluster.config.partitions_per_worker
        return WorkloadObservation(
            state_records=state_records,
            parallelism=parallelism,
            failure_rate=self.expected_failure_rate,
            messages_per_superstep=state_records * self.message_fanout,
            expected_supersteps=self.expected_supersteps,
            lost_fraction=min(1.0, per_worker / parallelism),
        )

    def _select(
        self, ctx: RecoveryContext, obs: WorkloadObservation, superstep: int
    ) -> None:
        name, estimates = select_strategy(
            obs,
            ctx.executor.clock.cost_model,
            checkpoint_interval=self.checkpoint_interval,
            snapshot_interval=self.snapshot_interval,
            washout_supersteps=self.washout_supersteps,
            has_compensation=self.compensation is not None,
        )
        self._estimates = estimates
        if self._selected is not None and self._selected.name == name:
            return
        previous = self._selected
        if isinstance(previous, ConfinedRecovery):
            previous.detach(ctx)
        self._selected = self._build(name)
        self._selected.on_start(ctx)
        self.selections.append((superstep, name))
        ctx.cluster.events.record(
            EventKind.STRATEGY_SELECTED,
            time=ctx.executor.clock.now,
            superstep=superstep,
            strategy=name,
            previous=previous.name if previous is not None else None,
            failure_rate=obs.failure_rate,
            estimates={key: estimates[key] for key in sorted(estimates)},
        )

    # -- strategy hooks ----------------------------------------------------------

    def on_start(self, ctx: RecoveryContext) -> None:
        self._observation = self._observe(ctx)
        self._failures = 0
        self._select(ctx, self._observation, superstep=-1)

    def on_superstep_committed(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None = None,
    ) -> None:
        assert self._selected is not None
        self._selected.on_superstep_committed(ctx, superstep, state, workset)

    def capture_preloss(
        self,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> None:
        assert self._selected is not None
        self._selected.capture_preloss(superstep, state, workset, lost_partitions)

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        assert self._selected is not None
        outcome = self._selected.recover(
            ctx, superstep, state, workset, lost_partitions
        )
        self._failures += 1
        if self.reselect and self._observation is not None:
            observed_rate = self._failures / (superstep + 1)
            self._observation = replace(
                self._observation, failure_rate=observed_rate
            )
            # The switch, if any, applies from the next superstep on; the
            # failure that triggered it was handled by the old strategy.
            self._select(ctx, self._observation, superstep)
        return outcome

    def reset(self) -> None:
        if self._selected is not None:
            self._selected.reset()
        self._selected = None
        self._observation = None
        self._estimates = {}
        self._failures = 0
        self.selections = []
