"""The compensation function protocol.

A compensation function is the user-supplied piece of optimistic recovery
(§2.2): after a failure destroyed some partitions, it must "generate a
consistent algorithm state" from which the fixpoint iteration re-converges
to the correct result. Consistent does not mean correct — e.g. PageRank
only needs the ranks to sum to one, Connected Components only needs every
label to be one of the labels initially present in the vertex's component.

The engine invokes the function on **all** partitions (exactly as the
paper describes), in three phases:

1. :meth:`CompensationFunction.prepare` sees the whole damaged state once
   and may compute a global aggregate — e.g. the surviving probability
   mass for PageRank's uniform redistribution;
2. :meth:`CompensationFunction.compensate_partition` rebuilds each
   partition (lost partitions receive ``records=None``);
3. for delta iterations, :meth:`CompensationFunction.rebuild_workset`
   produces the workset to resume with, because a failure also destroys
   workset partitions and the re-initialized vertices (plus, typically,
   their neighbors) must propagate again — this is what causes the
   message spike the demo's plot shows after a failure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from ..dataflow.datatypes import KeySpec
from ..errors import CompensationError
from ..runtime.executor import PartitionedDataset
from ..runtime.partition import HashPartitioner


@dataclass
class CompensationContext:
    """What a compensation function may consult.

    Attributes:
        parallelism: number of state partitions.
        state_key: the key spec the state is partitioned by.
        statics: loop-invariant inputs (edge lists, link matrices, ...)
            as bound partitioned datasets. They survive failures on
            stable storage, so compensation may read them freely.
        initial_state: the iteration's initial state, partitioned exactly
            like the live state; the canonical source for "which keys
            live in partition p" and for reset-to-initial compensations.
    """

    parallelism: int
    state_key: KeySpec
    statics: dict[str, PartitionedDataset] = field(default_factory=dict)
    initial_state: PartitionedDataset | None = None

    def initial_partition(self, partition_id: int) -> list[Any]:
        """The initial state records of one partition."""
        if self.initial_state is None:
            raise CompensationError("no initial state available in compensation context")
        records = self.initial_state.partitions[partition_id]
        if records is None:
            raise CompensationError(
                f"initial state of partition {partition_id} is unavailable"
            )
        return list(records)

    def static_records(self, name: str) -> list[Any]:
        """All records of a named static input."""
        if name not in self.statics:
            raise CompensationError(f"no static input named {name!r}")
        return self.statics[name].all_records()

    def partition_of(self, key: Any) -> int:
        """Which partition a state key lives in."""
        return HashPartitioner(self.parallelism).partition(key)


class CompensationFunction(ABC):
    """User-defined state re-initialization for optimistic recovery."""

    #: identifier shown in dataflow renderings (the paper names its
    #: compensations ``fix-components`` and ``fix-ranks``).
    name: str = "compensation"

    def prepare(
        self,
        state: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> Any:
        """Compute a global aggregate over the damaged state.

        Called once per failure, before any partition is rebuilt. The
        return value is passed verbatim to every
        :meth:`compensate_partition` call. The default returns ``None``.
        """
        return None

    @abstractmethod
    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        """Rebuild one partition.

        Args:
            partition_id: which partition.
            records: the partition's surviving records, or ``None`` when
                this partition's state was destroyed.
            aggregate: whatever :meth:`prepare` returned.
            ctx: the compensation context.

        Returns:
            The partition's new, consistent contents. Surviving
            partitions may be returned unchanged (``records`` itself).
        """

    def rebuild_workset(
        self,
        solution: PartitionedDataset,
        workset: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> PartitionedDataset:
        """Produce the workset to resume a delta iteration with.

        ``workset`` is the damaged next workset the failure interrupted:
        its lost partitions are ``None`` but its surviving partitions
        still carry pending updates, which must not be dropped — a
        surviving vertex whose update was in flight would otherwise never
        propagate it, and the algorithm would converge to a wrong result.

        The safe default re-activates **every** vertex: the whole
        compensated solution set becomes the workset, so all current
        labels propagate again (trivially superseding the surviving
        pending updates). Algorithm-specific subclasses can narrow this
        (Connected Components re-activates the surviving workset plus the
        reset vertices and their neighbors), which is what bounds the
        post-failure message spike.
        """
        return solution.copy()

    def surviving_workset_keys(self, workset: PartitionedDataset) -> set:
        """Keys of pending updates that survived the failure — a helper
        for subclasses narrowing :meth:`rebuild_workset`."""
        return {
            record[0]
            for partition in workset.partitions
            if partition is not None
            for record in partition
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
