"""Recovery-strategy name registry.

One place maps the strategy names accepted everywhere — the
``EngineConfig.recovery`` field, the service's ``JobSpec.recovery``, the
demo controller and the CLI ``--strategy`` flag — to constructed
:class:`RecoveryStrategy` instances, with a uniform
:class:`repro.errors.ConfigError` (listing the valid names) for unknown
ones.
"""

from __future__ import annotations

from ..config import RECOVERY_STRATEGIES, EngineConfig
from ..errors import ConfigError
from .adaptive import AdaptiveRecovery
from .checkpointing import CheckpointRecovery
from .compensation import CompensationFunction
from .confined import ConfinedRecovery
from .guarantees import StateInvariant
from .incremental import IncrementalCheckpointRecovery
from .optimistic import OptimisticRecovery
from .recovery import RecoveryStrategy
from .restart import LineageRecovery, RestartRecovery

#: all valid strategy names (re-exported from :mod:`repro.config` so the
#: frozen config dataclasses can validate without importing this package).
STRATEGY_NAMES = RECOVERY_STRATEGIES


def build_strategy(
    name: str,
    *,
    compensation: CompensationFunction | None = None,
    invariants: list[StateInvariant] | None = None,
    checkpoint_interval: int = 2,
    snapshot_interval: int = 4,
) -> RecoveryStrategy:
    """Construct the named recovery strategy.

    Args:
        name: one of :data:`STRATEGY_NAMES`.
        compensation: the job's compensation function — required by
            ``"optimistic"``, optional input to ``"adaptive"``.
        invariants: consistency checks for compensated states.
        checkpoint_interval: interval of ``"checkpoint"`` (and the
            adaptive selector's checkpoint candidate).
        snapshot_interval: local-snapshot interval of ``"confined"`` (and
            the adaptive selector's confined candidate).

    Raises:
        ConfigError: on an unknown name, or ``"optimistic"`` without a
            compensation function.
    """
    if name == "restart":
        return RestartRecovery()
    if name == "lineage":
        return LineageRecovery()
    if name == "checkpoint":
        return CheckpointRecovery(interval=checkpoint_interval)
    if name == "incremental":
        return IncrementalCheckpointRecovery()
    if name == "optimistic":
        if compensation is None:
            raise ConfigError(
                "recovery strategy 'optimistic' requires a compensation "
                "function, and this job defines none"
            )
        return OptimisticRecovery(compensation, invariants)
    if name == "confined":
        return ConfinedRecovery(snapshot_interval=snapshot_interval)
    if name == "adaptive":
        return AdaptiveRecovery(
            compensation,
            invariants,
            checkpoint_interval=checkpoint_interval,
            snapshot_interval=snapshot_interval,
        )
    raise ConfigError(
        f"unknown recovery strategy {name!r}; valid strategies: "
        f"{', '.join(STRATEGY_NAMES)}"
    )


def resolve_recovery(
    config: EngineConfig,
    *,
    compensation: CompensationFunction | None = None,
    invariants: list[StateInvariant] | None = None,
) -> RecoveryStrategy | None:
    """Build the strategy named by ``config.recovery`` (``None`` when the
    config leaves the choice to the driver's default)."""
    if config.recovery is None:
        return None
    return build_strategy(
        config.recovery, compensation=compensation, invariants=invariants
    )
