"""Consistency invariants for compensated state.

Schelter et al. prove convergence after compensation only when the
compensated state is *consistent* — e.g. "if the algorithm computes a
probability distribution, the compensation function has to ensure that
probabilities in all partitions sum up to one" (§2.2). These checks make
that contract executable: :class:`repro.core.optimistic.OptimisticRecovery`
can be configured with a list of invariants that every compensated state
must satisfy, turning a buggy compensation function into a loud
:class:`repro.errors.CompensationError` instead of a silently wrong
fixpoint.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from ..errors import CompensationError
from ..runtime.executor import PartitionedDataset
from .compensation import CompensationContext


class StateInvariant(ABC):
    """A predicate over a full (compensated) state."""

    #: identifier used in error messages.
    name: str = "invariant"

    @abstractmethod
    def check(self, state: PartitionedDataset, ctx: CompensationContext) -> str | None:
        """Return ``None`` when the invariant holds, else a human-readable
        description of the violation."""


class MassConservation(StateInvariant):
    """The state's values must sum to a fixed total (PageRank: 1.0)."""

    name = "mass-conservation"

    def __init__(
        self,
        total: float = 1.0,
        tolerance: float = 1e-9,
        value_fn: Callable[[Any], float] | None = None,
    ):
        self.total = total
        self.tolerance = tolerance
        self.value_fn = value_fn if value_fn is not None else (lambda record: record[1])

    def check(self, state: PartitionedDataset, ctx: CompensationContext) -> str | None:
        mass = sum(self.value_fn(record) for record in state.all_records())
        if abs(mass - self.total) > self.tolerance:
            return (
                f"state mass is {mass!r}, expected {self.total!r} "
                f"(tolerance {self.tolerance!r})"
            )
        return None


class KeySetPreserved(StateInvariant):
    """The compensated state must contain exactly the keys of the initial
    state — no vertex may vanish or be invented by compensation."""

    name = "key-set-preserved"

    def check(self, state: PartitionedDataset, ctx: CompensationContext) -> str | None:
        if ctx.initial_state is None:
            return "no initial state available to compare key sets against"
        expected = {ctx.state_key(record) for record in ctx.initial_state.all_records()}
        actual = {ctx.state_key(record) for record in state.all_records()}
        if expected != actual:
            missing = sorted(expected - actual)[:5]
            invented = sorted(actual - expected)[:5]
            return f"key set changed: missing {missing}, invented {invented}"
        return None


class ValuesFromInitial(StateInvariant):
    """Every value must be one that occurred in the initial state.

    This is the consistency condition of Connected Components: labels are
    always (initial) vertex ids, and compensation must not fabricate
    labels outside that domain — otherwise min-propagation could converge
    to a non-existent component id.
    """

    name = "values-from-initial"

    def __init__(self, value_fn: Callable[[Any], Any] | None = None):
        self.value_fn = value_fn if value_fn is not None else (lambda record: record[1])

    def check(self, state: PartitionedDataset, ctx: CompensationContext) -> str | None:
        if ctx.initial_state is None:
            return "no initial state available to compare values against"
        domain = {self.value_fn(record) for record in ctx.initial_state.all_records()}
        for record in state.all_records():
            value = self.value_fn(record)
            if value not in domain:
                return f"value {value!r} of record {record!r} is not an initial value"
        return None


class PartitionPlacement(StateInvariant):
    """Every record must live in the partition its key hashes to; a
    compensation that emits records for foreign keys would silently break
    keyed joins in later supersteps."""

    name = "partition-placement"

    def check(self, state: PartitionedDataset, ctx: CompensationContext) -> str | None:
        for partition_id, records in enumerate(state.partitions):
            if records is None:
                return f"partition {partition_id} is still lost"
            for record in records:
                expected = ctx.partition_of(ctx.state_key(record))
                if expected != partition_id:
                    return (
                        f"record {record!r} sits in partition {partition_id} "
                        f"but its key hashes to partition {expected}"
                    )
        return None


def check_invariants(
    invariants: list[StateInvariant],
    state: PartitionedDataset,
    ctx: CompensationContext,
    compensation_name: str = "compensation",
) -> None:
    """Raise :class:`CompensationError` on the first violated invariant."""
    for invariant in invariants:
        violation = invariant.check(state, ctx)
        if violation is not None:
            raise CompensationError(
                f"{compensation_name} violated invariant {invariant.name!r}: {violation}"
            )
