"""Optimistic recovery via compensation functions — the paper's mechanism.

Failure-free behaviour: **nothing**. No checkpoints are written, no
lineage is tracked, so a failure-free run is exactly as fast as running
with no fault tolerance at all ("optimal failure-free performance", §1).

On failure, the driver has already paused the iteration and acquired
replacement workers; this strategy then:

1. asks the compensation function for a global aggregate over the damaged
   state (:meth:`CompensationFunction.prepare`),
2. invokes the compensation on **all** partitions — re-initializing the
   lost ones and letting survivors be adjusted if the algorithm requires
   it ("the system invokes the compensation function on all partitions to
   restore a consistent state", §2.2),
3. optionally validates the declared consistency invariants
   (:mod:`repro.core.guarantees`),
4. for delta iterations, rebuilds the workset so the re-initialized
   vertices propagate again.

The compensation work is charged to the simulated clock so recovery-cost
experiments account for it.
"""

from __future__ import annotations

from ..errors import CompensationError
from ..observability.span import SpanKind
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .compensation import CompensationContext, CompensationFunction
from .guarantees import StateInvariant, check_invariants
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy


class OptimisticRecovery(RecoveryStrategy):
    """Checkpoint-free recovery with a user-supplied compensation.

    Args:
        compensation: the algorithm's compensation function.
        invariants: consistency checks run on every compensated state;
            violations raise :class:`repro.errors.CompensationError`.
    """

    name = "optimistic"

    def __init__(
        self,
        compensation: CompensationFunction,
        invariants: list[StateInvariant] | None = None,
    ):
        self.compensation = compensation
        self.invariants = list(invariants or [])

    def _compensation_context(self, ctx: RecoveryContext) -> CompensationContext:
        return CompensationContext(
            parallelism=ctx.parallelism,
            state_key=ctx.state_key,
            statics=ctx.statics,
            initial_state=ctx.initial_state,
        )

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        comp_ctx = self._compensation_context(ctx)
        with ctx.tracer.span(
            "compensation",
            kind=SpanKind.COMPENSATION,
            superstep=superstep,
            compensation=self.compensation.name,
            state_backend=(
                ctx.state_backend.name if ctx.state_backend is not None else "none"
            ),
        ) as span:
            aggregate = self.compensation.prepare(state, lost_partitions, comp_ctx)
            new_partitions: list[list | None] = []
            compensated_records = 0
            for partition_id, records in enumerate(state.partitions):
                surviving = list(records) if records is not None else None
                rebuilt = self.compensation.compensate_partition(
                    partition_id, surviving, aggregate, comp_ctx
                )
                if rebuilt is None:
                    raise CompensationError(
                        f"compensation {self.compensation.name!r} returned None "
                        f"for partition {partition_id}"
                    )
                new_partitions.append(list(rebuilt))
                compensated_records += len(rebuilt)
            ctx.executor.clock.charge_compensation(compensated_records)
            new_state = PartitionedDataset(
                partitions=new_partitions, partitioned_by=ctx.state_key
            )
            check_invariants(
                self.invariants, new_state, comp_ctx, self.compensation.name
            )
            new_workset: PartitionedDataset | None = None
            if workset is not None:
                new_workset = self.compensation.rebuild_workset(
                    new_state, workset, lost_partitions, comp_ctx
                )
                new_workset = ctx.executor.repartition(
                    new_workset,
                    ctx.state_key,
                    context=f"{self.compensation.name}.workset",
                )
            span.set_attribute("records", compensated_records)
        ctx.cluster.events.record(
            EventKind.COMPENSATION,
            time=ctx.executor.clock.now,
            superstep=superstep,
            compensation=self.compensation.name,
            lost_partitions=sorted(lost_partitions),
            records=compensated_records,
        )
        return RecoveryOutcome(
            state=new_state, workset=new_workset, compensated=True
        )
