"""Confined recovery — replay only the lost partitions.

Both existing failure paths touch *every* partition: optimistic recovery
compensates all of them and checkpoint recovery rewinds all of them.
Following the survivor-replay designs of lightweight graph-processing
fault tolerance (Yan et al.) and the logical-time rollback reasoning of
Falkirk Wheel, this strategy confines recovery to the failed partitions:

* During normal execution every shuffle / broadcast / union delivery is
  *counted* into a bounded per-partition :class:`MessageLog` (the
  simulator logs volumes, not payloads — the replay cost model only needs
  how many records each partition received). Appends are charged at
  ``log_per_record``, far below the network cost of the records
  themselves, so the failure-free overhead stays a small, reported tax.
* Every ``snapshot_interval`` commits the strategy writes a *local*
  per-partition snapshot of state (and workset) to stable storage and
  drops the retained log epochs — the log is bounded by the interval.
* On failure, survivors keep their state untouched. Only the lost
  partitions are rebuilt: their last snapshot is re-read (restore I/O for
  the confined subset only) and the logged messages addressed to them
  since that snapshot are replayed forward, charged at
  ``replay_per_record`` — recovery cost scales with the number of *lost*
  partitions, not with the cluster size.

Replay in the simulator is deterministic, so the replayed contents equal
the exact pre-failure partition state; the driver captures those contents
just before destroying them (:meth:`RecoveryStrategy.capture_preloss`)
and this strategy reinstalls them — the stand-in for the value a real
deterministic replay would recompute, with the cost charged as replay.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..errors import IterationError, ReplayError
from ..observability.span import SpanKind
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy


class MessageLog:
    """Bounded per-partition outgoing-delivery log (record *counts*).

    One instance is attached to the run's :class:`PlanExecutor` as
    ``executor.message_log``; the shuffle, broadcast and union paths call
    :meth:`deliver` with the per-destination-partition record counts of
    each delivery. Counts accumulate into the *current epoch*; the owning
    strategy rotates the epoch at every superstep boundary and drops the
    retained epochs after each snapshot, so retained volume is bounded by
    ``snapshot_interval`` supersteps of traffic.
    """

    def __init__(self, parallelism: int):
        if parallelism < 1:
            raise IterationError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self._current = [0] * parallelism
        self._epochs: deque[list[int]] = deque()
        #: total records ever appended over network channels (charged).
        self.logged_records = 0
        #: total records ever appended over partition-local channels.
        self.local_records = 0

    def deliver(self, sizes: Sequence[int], *, local: bool = False) -> None:
        """Count one delivery: ``sizes[pid]`` records went to partition
        ``pid``. ``local`` deliveries (union merges) cross no network but
        still must be regenerated during a replay."""
        current = self._current
        total = 0
        for pid, count in enumerate(sizes):
            current[pid] += count
            total += count
        if local:
            self.local_records += total
        else:
            self.logged_records += total

    def rotate(self) -> None:
        """Close the current epoch (one superstep's deliveries)."""
        self._epochs.append(self._current)
        self._current = [0] * self.parallelism

    def drop_retained(self) -> None:
        """Forget all closed epochs (called after a snapshot)."""
        self._epochs.clear()

    def replayable_records(self, partition_ids: Sequence[int]) -> int:
        """Logged records addressed to ``partition_ids`` since the last
        snapshot (retained epochs plus the still-open current one)."""
        total = 0
        for pid in partition_ids:
            total += self._current[pid]
            for epoch in self._epochs:
                total += epoch[pid]
        return total

    def retained_records(self) -> int:
        """Records currently held in the log across all partitions."""
        return sum(self._current) + sum(sum(epoch) for epoch in self._epochs)

    @property
    def epochs_retained(self) -> int:
        """Closed epochs currently retained (excludes the open one)."""
        return len(self._epochs)

    def __repr__(self) -> str:
        return (
            f"MessageLog(n={self.parallelism}, epochs={self.epochs_retained}, "
            f"retained={self.retained_records()})"
        )


class ConfinedRecovery(RecoveryStrategy):
    """Rebuild only the lost partitions from local snapshots + log replay.

    Args:
        snapshot_interval: write the per-partition local snapshot (and
            truncate the message log) every this many committed
            supersteps. Small intervals bound the log tightly but pay
            more snapshot I/O; large intervals reverse the trade.
    """

    name = "confined"
    needs_preloss_capture = True

    def __init__(self, snapshot_interval: int = 4):
        if snapshot_interval < 1:
            raise IterationError(
                f"snapshot interval must be >= 1, got {snapshot_interval}"
            )
        self.snapshot_interval = snapshot_interval
        self._log: MessageLog | None = None
        self._snapshot_superstep: int | None = None
        self._captured_state: dict[int, list] | None = None
        self._captured_workset: dict[int, list] | None = None
        self.snapshots_written = 0

    # -- storage keys ----------------------------------------------------------

    def _state_key(self, ctx: RecoveryContext, pid: int) -> str:
        return f"confined/{ctx.job_name}/state/{pid}"

    def _workset_key(self, ctx: RecoveryContext, pid: int) -> str:
        return f"confined/{ctx.job_name}/workset/{pid}"

    # -- strategy hooks ----------------------------------------------------------

    def on_start(self, ctx: RecoveryContext) -> None:
        self._log = MessageLog(ctx.parallelism)
        self._snapshot_superstep = None
        self._captured_state = None
        self._captured_workset = None
        ctx.executor.message_log = self._log

    def detach(self, ctx: RecoveryContext) -> None:
        """Stop logging on this executor (adaptive mid-run switches)."""
        if getattr(ctx.executor, "message_log", None) is self._log:
            ctx.executor.message_log = None

    def on_superstep_committed(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None = None,
    ) -> None:
        log = self._require_log()
        log.rotate()
        if (superstep + 1) % self.snapshot_interval == 0:
            with ctx.tracer.span(
                "confined-snapshot",
                kind=SpanKind.CHECKPOINT,
                superstep=superstep,
                strategy=self.name,
            ) as span:
                records = 0
                for pid, partition in enumerate(state.partitions):
                    records += ctx.storage.write(
                        self._state_key(ctx, pid), partition or []
                    )
                if workset is not None:
                    for pid, partition in enumerate(workset.partitions):
                        records += ctx.storage.write(
                            self._workset_key(ctx, pid), partition or []
                        )
                self._snapshot_superstep = superstep
                self.snapshots_written += 1
                log.drop_retained()
                span.set_attribute("records", records)
            ctx.cluster.events.record(
                EventKind.CHECKPOINT_WRITTEN,
                time=ctx.executor.clock.now,
                superstep=superstep,
                records=records,
                strategy=self.name,
            )
        ctx.executor.metrics.set_gauge(
            "message_log.retained", log.retained_records()
        )

    def capture_preloss(
        self,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> None:
        self._captured_state = {
            pid: list(state.partitions[pid] or []) for pid in lost_partitions
        }
        if workset is not None:
            self._captured_workset = {
                pid: list(workset.partitions[pid] or []) for pid in lost_partitions
            }
        else:
            self._captured_workset = None

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        log = self._require_log()
        captured = self._captured_state
        if captured is None or any(pid not in captured for pid in lost_partitions):
            raise ReplayError(
                f"confined recovery at superstep {superstep} has no pre-loss "
                f"capture for partitions {sorted(lost_partitions)}"
            )
        lost = sorted(lost_partitions)
        with ctx.tracer.span(
            "confined-replay",
            kind=SpanKind.REPLAY,
            superstep=superstep,
            lost_partitions=lost,
            snapshot_superstep=self._snapshot_superstep,
        ) as span:
            # Restore the lost partitions' last local snapshot (or the
            # pinned initial inputs before the first snapshot) — restore
            # I/O for the confined subset only. The contents themselves
            # are superseded by the replay below.
            restored = 0
            for pid in lost:
                if self._snapshot_superstep is not None:
                    restored += len(ctx.storage.read(self._state_key(ctx, pid)))
                    if workset is not None:
                        restored += len(
                            ctx.storage.read(self._workset_key(ctx, pid))
                        )
                else:
                    restored += len(ctx.storage.read(ctx.initial_state_key(pid)))
                    if workset is not None:
                        restored += len(
                            ctx.storage.read(ctx.initial_workset_key(pid))
                        )
            # Replay survivors' logged deliveries addressed to the lost
            # partitions, forward from the snapshot to the current
            # superstep.
            replayed = log.replayable_records(lost)
            ctx.executor.clock.charge_replay(replayed)
            healed_state = PartitionedDataset(
                partitions=[
                    captured[pid] if pid in captured and part is None else part
                    for pid, part in enumerate(state.partitions)
                ],
                partitioned_by=ctx.state_key,
            )
            healed_workset: PartitionedDataset | None = None
            if workset is not None:
                captured_ws = self._captured_workset or {}
                healed_workset = PartitionedDataset(
                    partitions=[
                        captured_ws.get(pid, []) if part is None else part
                        for pid, part in enumerate(workset.partitions)
                    ],
                    partitioned_by=ctx.state_key,
                )
            span.set_attribute("restored_records", restored)
            span.set_attribute("replayed_records", replayed)
        ctx.executor.metrics.increment("confined.replayed_records", replayed)
        ctx.executor.metrics.increment("confined.healed_partitions", len(lost))
        ctx.cluster.events.record(
            EventKind.CONFINED_REPLAY,
            time=ctx.executor.clock.now,
            superstep=superstep,
            lost_partitions=lost,
            replayed_records=replayed,
            restored_records=restored,
            snapshot_superstep=self._snapshot_superstep,
        )
        # The failed superstep never committed, so rotate its epoch here;
        # the log keeps everything since the last snapshot in case a
        # second failure strikes before the next one.
        log.rotate()
        self._captured_state = None
        self._captured_workset = None
        return RecoveryOutcome(
            state=healed_state,
            workset=healed_workset,
            healed_partitions=lost,
        )

    def reset(self) -> None:
        self._log = None
        self._snapshot_superstep = None
        self._captured_state = None
        self._captured_workset = None
        self.snapshots_written = 0

    def _require_log(self) -> MessageLog:
        if self._log is None:
            raise ReplayError(
                "confined recovery used before on_start attached its message log"
            )
        return self._log
