"""Restart-based recovery: no fault tolerance, and lineage recovery.

:class:`RestartRecovery` models a system without any fault-tolerance
mechanism for iterative state: after a failure the only option is to
re-read the inputs from stable storage and run the whole iteration again.
Its failure-free performance is optimal (it pays nothing), which makes it
the baseline optimistic recovery must match.

:class:`LineageRecovery` models Spark-style lineage-based recovery as
§2.2 characterizes it for iterative dataflows: "a partition of the current
iteration may depend on all partitions of the previous iteration (e.g.
when a reducer is executed during an iteration). In such cases after a
failure the iteration has to be restarted from scratch to re-compute lost
partitions." Both PageRank and Connected Components shuffle through
reducers every superstep, so for the workloads of this paper lineage
recovery behaves exactly like a restart; it exists as its own class so
experiments can report it under its proper name.
"""

from __future__ import annotations

from ..observability.span import SpanKind
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy


class RestartRecovery(RecoveryStrategy):
    """Re-run the iteration from its initial inputs after any failure."""

    name = "restart"

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        with ctx.tracer.span(
            "restart", kind=SpanKind.RESTART, superstep=superstep, strategy=self.name
        ):
            restored_state = PartitionedDataset(
                partitions=[
                    ctx.storage.read(ctx.initial_state_key(pid))
                    for pid in range(ctx.parallelism)
                ],
                partitioned_by=ctx.state_key,
            )
            restored_workset: PartitionedDataset | None = None
            if workset is not None:
                restored_workset = PartitionedDataset(
                    partitions=[
                        ctx.storage.read(ctx.initial_workset_key(pid))
                        for pid in range(ctx.parallelism)
                    ],
                    partitioned_by=ctx.state_key,
                )
        ctx.cluster.events.record(
            EventKind.RESTART,
            time=ctx.executor.clock.now,
            superstep=superstep,
            strategy=self.name,
            lost_partitions=sorted(lost_partitions),
        )
        return RecoveryOutcome(
            state=restored_state, workset=restored_workset, restarted=True
        )


class LineageRecovery(RestartRecovery):
    """Lineage-based recovery, which degenerates to a restart for
    iterative dataflows whose supersteps contain all-to-all dependencies
    (every workload in this reproduction does)."""

    name = "lineage"
