"""Rollback recovery — the pessimistic baseline.

"The usual approach to fault tolerance is to periodically checkpoint the
algorithm state to stable storage. Upon failure, the system restores the
state from a checkpoint and continues the algorithm's execution." (§1)

This strategy writes every state partition (and the workset, for delta
iterations) to simulated stable storage every ``interval`` supersteps,
paying ``checkpoint_per_record`` of simulated time per record — the
failure-free overhead the paper's optimistic approach eliminates. On
failure it performs a synchronous global rollback: *all* partitions are
restored from the most recent checkpoint (surviving progress since the
checkpoint is discarded, exactly as in coordinated checkpointing), and the
iteration re-executes from there. When a failure strikes before the first
checkpoint was written, rollback degenerates to a restart from the pinned
initial inputs.
"""

from __future__ import annotations

from ..errors import IterationError
from ..observability.span import SpanKind
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from .recovery import RecoveryContext, RecoveryOutcome, RecoveryStrategy


class CheckpointRecovery(RecoveryStrategy):
    """Coordinated checkpointing with global rollback.

    Args:
        interval: write a checkpoint every ``interval`` supersteps
            (``interval=1`` checkpoints after every superstep — maximum
            safety, maximum overhead).
        keep_history: keep all checkpoints instead of only the latest;
            useful for inspecting storage costs in experiments.
    """

    name = "checkpoint"

    def __init__(self, interval: int = 1, keep_history: bool = False):
        if interval < 1:
            raise IterationError(f"checkpoint interval must be >= 1, got {interval}")
        self.interval = interval
        self.keep_history = keep_history
        self._last_checkpoint: int | None = None
        self.checkpoints_written = 0

    # -- storage keys ----------------------------------------------------------

    def _state_key(self, ctx: RecoveryContext, superstep: int, pid: int) -> str:
        return f"checkpoint/{ctx.job_name}/{superstep}/state/{pid}"

    def _workset_key(self, ctx: RecoveryContext, superstep: int, pid: int) -> str:
        return f"checkpoint/{ctx.job_name}/{superstep}/workset/{pid}"

    # -- strategy hooks ----------------------------------------------------------

    def on_superstep_committed(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None = None,
    ) -> None:
        if (superstep + 1) % self.interval != 0:
            return
        with ctx.tracer.span(
            "checkpoint-write",
            kind=SpanKind.CHECKPOINT,
            superstep=superstep,
            state_backend=(
                ctx.state_backend.name if ctx.state_backend is not None else "none"
            ),
        ) as span:
            records = 0
            for pid, partition in enumerate(state.partitions):
                records += ctx.storage.write(
                    self._state_key(ctx, superstep, pid), partition or []
                )
            if workset is not None:
                for pid, partition in enumerate(workset.partitions):
                    records += ctx.storage.write(
                        self._workset_key(ctx, superstep, pid), partition or []
                    )
            if not self.keep_history and self._last_checkpoint is not None:
                ctx.storage.delete_prefix(
                    f"checkpoint/{ctx.job_name}/{self._last_checkpoint}/"
                )
            self._last_checkpoint = superstep
            self.checkpoints_written += 1
            span.set_attribute("records", records)
        ctx.cluster.events.record(
            EventKind.CHECKPOINT_WRITTEN,
            time=ctx.executor.clock.now,
            superstep=superstep,
            records=records,
        )

    def recover(
        self,
        ctx: RecoveryContext,
        superstep: int,
        state: PartitionedDataset,
        workset: PartitionedDataset | None,
        lost_partitions: list[int],
    ) -> RecoveryOutcome:
        if self._last_checkpoint is None:
            return self._restart_from_inputs(ctx, superstep, workset is not None)
        checkpoint = self._last_checkpoint
        with ctx.tracer.span(
            "rollback",
            kind=SpanKind.ROLLBACK,
            superstep=superstep,
            restored_from=checkpoint,
        ):
            restored_state = PartitionedDataset(
                partitions=[
                    ctx.storage.read(self._state_key(ctx, checkpoint, pid))
                    for pid in range(ctx.parallelism)
                ],
                partitioned_by=ctx.state_key,
            )
            restored_workset: PartitionedDataset | None = None
            if workset is not None:
                restored_workset = PartitionedDataset(
                    partitions=[
                        ctx.storage.read(self._workset_key(ctx, checkpoint, pid))
                        for pid in range(ctx.parallelism)
                    ],
                    partitioned_by=ctx.state_key,
                )
        ctx.cluster.events.record(
            EventKind.ROLLBACK,
            time=ctx.executor.clock.now,
            superstep=superstep,
            restored_from=checkpoint,
        )
        return RecoveryOutcome(
            state=restored_state,
            workset=restored_workset,
            rolled_back_to=checkpoint,
        )

    def _restart_from_inputs(
        self, ctx: RecoveryContext, superstep: int, is_delta: bool
    ) -> RecoveryOutcome:
        """Fall back to a restart when no checkpoint exists yet."""
        with ctx.tracer.span(
            "restart", kind=SpanKind.RESTART, superstep=superstep
        ):
            state = PartitionedDataset(
                partitions=[
                    ctx.storage.read(ctx.initial_state_key(pid))
                    for pid in range(ctx.parallelism)
                ],
                partitioned_by=ctx.state_key,
            )
            workset: PartitionedDataset | None = None
            if is_delta:
                workset = PartitionedDataset(
                    partitions=[
                        ctx.storage.read(ctx.initial_workset_key(pid))
                        for pid in range(ctx.parallelism)
                    ],
                    partitioned_by=ctx.state_key,
                )
        ctx.cluster.events.record(
            EventKind.RESTART,
            time=ctx.executor.clock.now,
            superstep=superstep,
            reason="no checkpoint available",
        )
        return RecoveryOutcome(state=state, workset=workset, restarted=True)

    def reset(self) -> None:
        self._last_checkpoint = None
        self.checkpoints_written = 0
