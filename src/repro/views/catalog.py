"""The view catalog: definitions, materializations, and the view DAG.

A :class:`ViewDefinition` names one iterative job as a view — either
*graph-rooted* (its input is a :class:`repro.views.MutableGraph`
registered with the catalog) or *derived* (its inputs are the canonical
records of other views, forming a DAG edge). A :class:`MaterializedView`
holds the view's current contents under snapshot isolation: readers
always get a complete ``(epoch, records)`` pair installed by an atomic
swap, never a mid-refresh mix.

The catalog enforces the DAG by construction: a view's parents must be
registered before the view itself, so registration order is already a
topological order and :meth:`ViewCatalog.topological_order` simply
replays it. Staleness is measured in source epochs:
``staleness = source epoch - view epoch``, where a derived view's source
epoch is the oldest epoch among its parents (it can only be as fresh as
its most stale input).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from ..config import DEFAULT_CONFIG, RECOVERY_STRATEGIES, EngineConfig
from ..errors import ViewError
from .algorithms import ViewAlgorithm
from .mutable_graph import MutableGraph

#: epoch of a view that has never been materialized.
NEVER_MATERIALIZED = -1


@dataclass(frozen=True)
class ViewDefinition:
    """One registered view.

    Attributes:
        name: unique view name.
        algorithm: the :class:`~repro.views.algorithms.ViewAlgorithm`
            adapter that builds this view's refresh jobs.
        source: name of the catalog's mutable graph this view computes
            over (graph-rooted views; ``None`` for derived views).
        depends_on: parent view names whose canonical records feed this
            view (derived views; empty for graph-rooted views).
        target_lag: how many source epochs the view may trail before a
            poll refreshes it (0 = refresh on any staleness). ``None``
            uses the orchestrator's :class:`repro.config.ViewsConfig`
            default.
        warm_threshold: affected-key fraction above which an ``auto``
            refresh goes cold. ``None`` uses the config default.
        config: engine configuration of this view's refresh jobs.
        recovery: recovery strategy name for refresh jobs (one of
            :data:`repro.config.RECOVERY_STRATEGIES`) or ``None`` for
            the driver default (restart).
    """

    name: str
    algorithm: ViewAlgorithm
    source: str | None = None
    depends_on: tuple[str, ...] = ()
    target_lag: int | None = None
    warm_threshold: float | None = None
    config: EngineConfig = DEFAULT_CONFIG
    recovery: str | None = "optimistic"

    def __post_init__(self) -> None:
        if not self.name:
            raise ViewError("a view definition needs a non-empty name")
        if (self.source is None) == (not self.depends_on):
            raise ViewError(
                f"view {self.name!r} must have exactly one input kind: "
                f"a source graph (graph-rooted) or parent views (derived)"
            )
        if self.name in self.depends_on:
            raise ViewError(f"view {self.name!r} cannot depend on itself")
        if self.target_lag is not None and self.target_lag < 0:
            raise ViewError(
                f"view {self.name!r}: target_lag must be >= 0, got {self.target_lag}"
            )
        if self.warm_threshold is not None and not 0.0 <= self.warm_threshold <= 1.0:
            raise ViewError(
                f"view {self.name!r}: warm_threshold must be in [0, 1], "
                f"got {self.warm_threshold}"
            )
        if self.recovery is not None and self.recovery not in RECOVERY_STRATEGIES:
            raise ViewError(
                f"view {self.name!r}: recovery must be one of "
                f"{RECOVERY_STRATEGIES} or None, got {self.recovery!r}"
            )

    @property
    def is_derived(self) -> bool:
        return bool(self.depends_on)


@dataclass(frozen=True)
class ViewReading:
    """One snapshot-isolated read: a complete epoch's records."""

    view: str
    epoch: int
    records: tuple[Any, ...]

    @property
    def as_dict(self) -> dict[Any, Any]:
        """The records as ``{key: value}``."""
        return {record[0]: record[1] for record in self.records}


class MaterializedView:
    """The current contents of one view, swapped atomically on refresh.

    ``read()`` and ``install()`` are thread-safe; a reader concurrent
    with a refresh sees either the previous epoch in full or the new one
    in full.
    """

    def __init__(self, definition: ViewDefinition):
        self.definition = definition
        self._lock = threading.Lock()
        self._epoch = NEVER_MATERIALIZED
        self._records: tuple[Any, ...] = ()
        #: refresh counters, maintained by the orchestrator via install().
        self.refreshes = 0
        self.warm_refreshes = 0
        self.cold_refreshes = 0
        self.last_report: Any = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def epoch(self) -> int:
        """The source epoch the current contents reflect (-1 = never)."""
        with self._lock:
            return self._epoch

    @property
    def is_materialized(self) -> bool:
        return self.epoch != NEVER_MATERIALIZED

    def read(self) -> ViewReading:
        """The current ``(epoch, records)`` pair, atomically."""
        with self._lock:
            if self._epoch == NEVER_MATERIALIZED:
                raise ViewError(f"view {self.name!r} has never been materialized")
            return ViewReading(self.name, self._epoch, self._records)

    def install(self, epoch: int, records: tuple[Any, ...], report: Any = None) -> None:
        """Atomically swap in a refreshed materialization."""
        with self._lock:
            if epoch < self._epoch:
                raise ViewError(
                    f"view {self.name!r}: cannot install epoch {epoch} over "
                    f"newer epoch {self._epoch}"
                )
            self._epoch = epoch
            self._records = tuple(records)
            self.refreshes += 1
            if report is not None:
                self.last_report = report
                if getattr(report, "mode", None) == "warm":
                    self.warm_refreshes += 1
                else:
                    self.cold_refreshes += 1

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MaterializedView({self.name!r}, epoch={self._epoch}, "
                f"records={len(self._records)}, refreshes={self.refreshes})"
            )


class ViewCatalog:
    """Registry of mutable graphs and the views defined over them."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._graphs: dict[str, MutableGraph] = {}
        #: insertion-ordered: parents precede children (see module doc).
        self._views: dict[str, MaterializedView] = {}

    # -- registration ----------------------------------------------------------

    def add_graph(self, name: str, graph: MutableGraph) -> MutableGraph:
        """Register a mutable graph views can be rooted at."""
        with self._lock:
            if not name:
                raise ViewError("a graph registration needs a non-empty name")
            if name in self._graphs:
                raise ViewError(f"graph {name!r} is already registered")
            self._graphs[name] = graph
            return graph

    def register(self, definition: ViewDefinition) -> MaterializedView:
        """Register a view; its inputs must already be registered.

        Requiring parents first makes cycles unrepresentable and keeps
        the registration order topological.
        """
        with self._lock:
            if definition.name in self._views:
                raise ViewError(f"view {definition.name!r} is already registered")
            if definition.source is not None and definition.source not in self._graphs:
                raise ViewError(
                    f"view {definition.name!r} is rooted at unknown graph "
                    f"{definition.source!r} (register the graph first)"
                )
            for parent in definition.depends_on:
                if parent not in self._views:
                    raise ViewError(
                        f"view {definition.name!r} depends on unregistered view "
                        f"{parent!r} (register parents first)"
                    )
            view = MaterializedView(definition)
            self._views[definition.name] = view
            return view

    # -- lookup ----------------------------------------------------------------

    def graph(self, name: str) -> MutableGraph:
        with self._lock:
            if name not in self._graphs:
                raise ViewError(f"unknown graph {name!r}")
            return self._graphs[name]

    def view(self, name: str) -> MaterializedView:
        with self._lock:
            if name not in self._views:
                raise ViewError(f"unknown view {name!r}")
            return self._views[name]

    def read(self, name: str) -> ViewReading:
        """Snapshot-isolated read of one view's current materialization."""
        return self.view(name).read()

    def topological_order(self) -> list[str]:
        """Every view name, parents before children."""
        with self._lock:
            return list(self._views)

    def graph_names(self) -> list[str]:
        with self._lock:
            return list(self._graphs)

    # -- staleness -------------------------------------------------------------

    def source_epoch(self, name: str) -> int:
        """The newest epoch the view *could* reflect right now.

        Graph-rooted views track their graph's committed head; a derived
        view can only be as fresh as its most stale parent.
        """
        view = self.view(name)
        definition = view.definition
        if definition.source is not None:
            return self.graph(definition.source).epoch
        return min(self.view(parent).epoch for parent in definition.depends_on)

    def staleness(self, name: str) -> int:
        """Source epochs the view trails behind its input (0 = fresh)."""
        return max(0, self.source_epoch(name) - self.view(name).epoch)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ViewCatalog(graphs={list(self._graphs)}, "
                f"views={list(self._views)})"
            )
