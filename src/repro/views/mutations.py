"""CDC-style mutation log for evolving graphs.

A :class:`MutableGraph` (``repro.views.mutable_graph``) does not apply
edits in place: every ``add_edge``/``remove_vertex`` call is buffered as a
:class:`Mutation` and becomes visible only when the batch is sealed into a
:class:`MutationEpoch` — a deterministic, numbered change-data-capture
record. The :class:`MutationLog` keeps the sealed epochs so any consumer
(the refresh orchestrator, the affected-keys analyses, a test oracle) can
replay exactly what changed between two graph versions.

Epochs are the unit of snapshot isolation throughout :mod:`repro.views`:
readers and refreshes always see the graph *at* an epoch boundary, never a
half-applied batch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import GraphError


class MutationKind(enum.Enum):
    """The four CDC record types a mutable graph emits."""

    ADD_VERTEX = "add_vertex"
    REMOVE_VERTEX = "remove_vertex"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"


@dataclass(frozen=True)
class Mutation:
    """One change record.

    Attributes:
        kind: what changed.
        vertex: the vertex id of a vertex mutation (``None`` for edges).
        edge: the ``(source, target)`` pair of an edge mutation, stored
            exactly as the caller issued it (``None`` for vertices).
    """

    kind: MutationKind
    vertex: int | None = None
    edge: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.kind in (MutationKind.ADD_VERTEX, MutationKind.REMOVE_VERTEX):
            if self.vertex is None or self.edge is not None:
                raise GraphError(f"vertex mutation needs a vertex id only: {self!r}")
        else:
            if self.edge is None or self.vertex is not None:
                raise GraphError(f"edge mutation needs an edge only: {self!r}")

    def touched_vertices(self) -> tuple[int, ...]:
        """The vertex ids this mutation directly touches."""
        if self.vertex is not None:
            return (self.vertex,)
        assert self.edge is not None
        return self.edge

    def __repr__(self) -> str:
        target = self.vertex if self.vertex is not None else self.edge
        return f"Mutation({self.kind.value}, {target})"


@dataclass(frozen=True)
class MutationEpoch:
    """One sealed, numbered batch of mutations.

    Attributes:
        epoch: the 1-based epoch number (epoch 0 is the base graph).
        mutations: the batch, in the deterministic order it was issued.
    """

    epoch: int
    mutations: tuple[Mutation, ...] = field(default_factory=tuple)

    @property
    def size(self) -> int:
        return len(self.mutations)

    def touched_vertices(self) -> set[int]:
        """All vertex ids directly touched by this epoch's mutations."""
        touched: set[int] = set()
        for mutation in self.mutations:
            touched.update(mutation.touched_vertices())
        return touched

    def counts(self) -> dict[str, int]:
        """``{mutation kind value: count}`` for reporting."""
        by_kind: dict[str, int] = {}
        for mutation in self.mutations:
            by_kind[mutation.kind.value] = by_kind.get(mutation.kind.value, 0) + 1
        return by_kind

    @property
    def has_removals(self) -> bool:
        """Whether the epoch shrinks the graph (removed edge or vertex).

        Removals are what break monotone warm refreshes: an algorithm
        whose state only ever tightens (CC's label lowering) can absorb
        additions as-is but needs its affected region re-initialized when
        structure disappears.
        """
        return any(
            mutation.kind in (MutationKind.REMOVE_EDGE, MutationKind.REMOVE_VERTEX)
            for mutation in self.mutations
        )


class MutationLog:
    """Append-only log of sealed epochs.

    The log is the CDC stream of one :class:`~repro.views.MutableGraph`:
    ``append`` buffers change records, ``seal`` closes the batch as the
    next :class:`MutationEpoch`. Consumers ask for ``epochs_since(n)`` to
    learn everything that happened after the epoch they last saw.
    """

    def __init__(self) -> None:
        self._pending: list[Mutation] = []
        self._epochs: list[MutationEpoch] = []

    # -- producer side ---------------------------------------------------------

    def append(self, mutation: Mutation) -> None:
        """Buffer one change record into the open batch."""
        self._pending.append(mutation)

    def seal(self) -> MutationEpoch:
        """Close the open batch as the next epoch (it may be empty)."""
        epoch = MutationEpoch(len(self._epochs) + 1, tuple(self._pending))
        self._pending = []
        self._epochs.append(epoch)
        return epoch

    # -- consumer side ---------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Buffered mutations not yet sealed into an epoch."""
        return len(self._pending)

    @property
    def latest_epoch(self) -> int:
        """The newest sealed epoch number (0 before any seal)."""
        return len(self._epochs)

    def epoch(self, number: int) -> MutationEpoch:
        """The sealed epoch ``number`` (1-based)."""
        if not 1 <= number <= len(self._epochs):
            raise GraphError(
                f"epoch {number} is not sealed (log has epochs 1..{len(self._epochs)})"
            )
        return self._epochs[number - 1]

    def epochs_since(self, after: int) -> list[MutationEpoch]:
        """All sealed epochs with ``epoch > after``, oldest first."""
        if after < 0:
            raise GraphError(f"epoch watermark must be >= 0, got {after}")
        return list(self._epochs[after:])

    def mutations_since(self, after: int) -> list[Mutation]:
        """The flattened mutations of every epoch after ``after``."""
        return [
            mutation
            for epoch in self.epochs_since(after)
            for mutation in epoch.mutations
        ]

    def __len__(self) -> int:
        return len(self._epochs)

    def __repr__(self) -> str:
        return (
            f"MutationLog(epochs={len(self._epochs)}, pending={len(self._pending)})"
        )
