"""A mutable, versioned wrapper around the immutable :class:`Graph`.

The engine's :class:`repro.graph.Graph` is immutable — algorithms, plans
and recovery all assume the input never moves under a running iteration.
:class:`MutableGraph` keeps that property while letting the *world*
change: edits are buffered as CDC records (:mod:`repro.views.mutations`)
and only :meth:`MutableGraph.commit` makes them visible, as a brand-new
immutable :class:`Graph` snapshot tagged with the next epoch number.

Readers therefore get snapshot isolation for free: ``snapshot()`` hands
out the graph *at* an epoch boundary, and a refresh that started against
epoch ``n`` keeps computing against epoch ``n`` even while epoch ``n+1``
is being written.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import GraphError
from ..graph.graph import Graph
from .mutations import Mutation, MutationEpoch, MutationKind, MutationLog


@dataclass(frozen=True)
class GraphSnapshot:
    """An immutable graph pinned to the epoch it reflects."""

    epoch: int
    graph: Graph


class MutableGraph:
    """An evolving graph emitting a deterministic epoch-batched CDC log.

    Edits (:meth:`add_vertex`, :meth:`remove_vertex`, :meth:`add_edge`,
    :meth:`remove_edge`) validate against the working state and buffer a
    :class:`~repro.views.mutations.Mutation`; :meth:`commit` seals the
    batch as the next :class:`~repro.views.mutations.MutationEpoch` and
    publishes a new immutable :class:`Graph` snapshot. Every committed
    snapshot stays addressable by epoch so refreshes running behind the
    head still see a complete, consistent graph.

    All public methods are thread-safe: a driver thread can mutate and
    commit while a refresh orchestrator reads snapshots concurrently.
    """

    def __init__(self, base: Graph):
        self._lock = threading.RLock()
        self.directed = base.directed
        # Working (uncommitted) state, seeded from a defensive copy so
        # later commits can never alias the caller's graph.
        base = base.copy()
        self._vertices: set[int] = set(base.vertices)
        self._edges: set[tuple[int, int]] = set(base.edges)
        self.log = MutationLog()
        self._snapshots: dict[int, Graph] = {0: base}

    # -- canonical edge form ----------------------------------------------------

    def _canonical(self, source: int, target: int) -> tuple[int, int]:
        if source == target:
            raise GraphError(f"self-loop ({source}, {target}) is not supported")
        if self.directed:
            return (source, target)
        return (min(source, target), max(source, target))

    # -- edits (buffered) -------------------------------------------------------

    def add_vertex(self, vertex: int) -> None:
        """Buffer the addition of an isolated vertex."""
        with self._lock:
            if vertex < 0:
                raise GraphError("vertex ids must be non-negative integers")
            if vertex in self._vertices:
                raise GraphError(f"vertex {vertex} already exists")
            self._vertices.add(vertex)
            self.log.append(Mutation(MutationKind.ADD_VERTEX, vertex=vertex))

    def remove_vertex(self, vertex: int) -> None:
        """Buffer the removal of a vertex and (implicitly) its edges.

        The CDC record names only the vertex; consumers that need the
        dropped edges read them from the pre-epoch snapshot.
        """
        with self._lock:
            if vertex not in self._vertices:
                raise GraphError(f"unknown vertex {vertex}")
            self._vertices.discard(vertex)
            self._edges = {
                edge for edge in self._edges if vertex not in edge
            }
            self.log.append(Mutation(MutationKind.REMOVE_VERTEX, vertex=vertex))

    def add_edge(self, source: int, target: int) -> None:
        """Buffer the addition of an edge between existing vertices."""
        with self._lock:
            for vertex in (source, target):
                if vertex not in self._vertices:
                    raise GraphError(
                        f"edge ({source}, {target}) references unknown vertex {vertex}"
                    )
            edge = self._canonical(source, target)
            if edge in self._edges:
                raise GraphError(f"edge {edge} already exists")
            self._edges.add(edge)
            self.log.append(Mutation(MutationKind.ADD_EDGE, edge=edge))

    def remove_edge(self, source: int, target: int) -> None:
        """Buffer the removal of an existing edge."""
        with self._lock:
            edge = self._canonical(source, target)
            if edge not in self._edges:
                raise GraphError(f"edge {edge} does not exist")
            self._edges.discard(edge)
            self.log.append(Mutation(MutationKind.REMOVE_EDGE, edge=edge))

    @property
    def vertices(self) -> list[int]:
        """The *working* (uncommitted) vertex ids, sorted ascending."""
        with self._lock:
            return sorted(self._vertices)

    @property
    def edges(self) -> list[tuple[int, int]]:
        """The *working* (uncommitted) canonical edges, sorted."""
        with self._lock:
            return sorted(self._edges)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the *working* (uncommitted) state contains the edge."""
        with self._lock:
            try:
                return self._canonical(source, target) in self._edges
            except GraphError:
                return False

    def __contains__(self, vertex: int) -> bool:
        with self._lock:
            return vertex in self._vertices

    # -- epochs -----------------------------------------------------------------

    def commit(self) -> MutationEpoch:
        """Seal the buffered batch as the next epoch and publish its
        snapshot. Committing an empty batch is legal (an empty epoch)."""
        with self._lock:
            epoch = self.log.seal()
            self._snapshots[epoch.epoch] = Graph(
                self._vertices, sorted(self._edges), directed=self.directed
            )
            return epoch

    @property
    def epoch(self) -> int:
        """The newest committed epoch number (0 = the base graph)."""
        with self._lock:
            return self.log.latest_epoch

    @property
    def pending_mutations(self) -> int:
        """Buffered edits that the next :meth:`commit` will seal."""
        with self._lock:
            return self.log.pending_count

    def snapshot(self, epoch: int | None = None) -> GraphSnapshot:
        """The immutable graph at an epoch boundary.

        ``None`` means the newest committed epoch. Requesting an epoch
        that was never committed raises :class:`repro.errors.GraphError`.
        """
        with self._lock:
            number = self.log.latest_epoch if epoch is None else epoch
            if number not in self._snapshots:
                raise GraphError(
                    f"no snapshot for epoch {number} "
                    f"(committed epochs: 0..{self.log.latest_epoch})"
                )
            return GraphSnapshot(number, self._snapshots[number])

    def epochs_since(self, after: int) -> list[MutationEpoch]:
        """The sealed epochs after watermark ``after`` (oldest first)."""
        with self._lock:
            return self.log.epochs_since(after)

    def __repr__(self) -> str:
        with self._lock:
            kind = "directed" if self.directed else "undirected"
            return (
                f"MutableGraph({kind}, |V|={len(self._vertices)}, "
                f"|E|={len(self._edges)}, epoch={self.log.latest_epoch}, "
                f"pending={self.log.pending_count})"
            )
