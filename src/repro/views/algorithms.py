"""View adapters: how each algorithm refreshes as a materialized view.

A :class:`ViewAlgorithm` tells the refresh orchestrator three things
about one iterative algorithm:

* how to build a **cold** job — the ordinary from-scratch fixpoint over
  the current graph snapshot (exactly what the algorithm factories in
  :mod:`repro.algorithms` produce);
* how to build a **warm** job — the same dataflow seeded from the view's
  previous solution, the paper's optimistic-recovery move applied to
  *input change* instead of failure: the stale fixpoint is "consistent
  but not correct" state that re-convergence heals. Each adapter applies
  its algorithm's compensation idiom to make the seed consistent
  (PageRank re-normalizes rank mass, Connected Components re-initializes
  the components a removal touched);
* an **affected-keys analysis** bounding which vertices the epoch's
  mutations can (transitively, per-algorithm) influence, so the
  orchestrator can shrink the initial workset and decide warm vs. cold.

Bit-identical refreshes
-----------------------

The acceptance bar for a warm refresh is producing *bit-identical*
records to a cold recompute of the same epoch. For discrete fixpoints
(CC labels) the fixpoint is unique, so any consistent seed lands on it
exactly. For floating-point fixpoints (PageRank) the iterates from two
different seeds approach the fixpoint but never agree to the last ulp —
so views converge tightly (``epsilon=1e-12``) and then *canonicalize* on
materialization: records are sorted by key and values rounded to
``snap_digits`` (1e-9 grid). Because both runs stop within ~1e-12 of the
same fixpoint, far below the rounding grid, both land in the same cell
and the materialized records agree bit for bit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..algorithms.base import BulkJob, DeltaJob
from ..algorithms.connected_components import connected_components
from ..algorithms.pagerank import VERTEX_KEY, pagerank
from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..graph.graph import Graph
from ..iteration.bulk import BulkIterationSpec
from ..iteration.termination import NoUpdates
from ..runtime import vectorized
from .mutations import Mutation, MutationEpoch, MutationKind

#: the component-id key of the derived component-mass view.
COMPONENT_KEY: KeySpec = first_field("component")


@dataclass(frozen=True)
class RefreshInputs:
    """Everything a refresh computes from, pinned to one source epoch.

    Attributes:
        epoch: the source epoch this refresh will materialize.
        graph: the graph snapshot at ``epoch`` (``None`` for derived
            views, which read only their parents).
        parents: ``{parent view name: canonical records}`` for derived
            views (empty for graph-rooted views).
    """

    epoch: int
    graph: Graph | None = None
    parents: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class PreviousState:
    """The view's last materialization, used to seed a warm refresh."""

    epoch: int
    records: tuple[Any, ...]


class ViewAlgorithm(ABC):
    """How one iterative algorithm runs as a materialized view."""

    #: adapter name, used in job names and reports.
    name: str = "view"
    #: True when the previous fixpoint is a consistent seed under pure
    #: additions with no compensation at all (CC's label lowering).
    monotone_safe: bool = False
    #: False when the adapter cannot warm-start (always cold recompute).
    warm_capable: bool = True
    #: decimal digits float values are rounded to on materialization
    #: (``None`` = exact values, for discrete-state algorithms).
    snap_digits: int | None = None

    @abstractmethod
    def cold_job(self, inputs: RefreshInputs) -> BulkJob | DeltaJob:
        """A from-scratch job for the snapshot ``inputs`` describes."""

    @abstractmethod
    def warm_job(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> BulkJob | DeltaJob:
        """A job seeded from ``previous``, compensated to consistency.

        Only called when :attr:`warm_capable` is True and the view has a
        previous materialization; ``epochs`` are the sealed mutation
        epochs between ``previous.epoch`` and ``inputs.epoch``.
        """

    def affected_keys(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> set[Any]:
        """Keys the mutations can influence (the warm workset bound).

        The default is maximally conservative — every key — which makes
        the orchestrator's affected-fraction threshold always choose a
        cold refresh.
        """
        return {record[0] for record in previous.records}

    def canonicalize(self, records: Iterable[Any]) -> tuple[Any, ...]:
        """Materialization form: sorted by key, float values snapped.

        This is what makes refresh results comparable bit for bit: record
        order is an artifact of partitioning, and trailing float ulps are
        an artifact of the seed (see module docstring).
        """
        snapped = []
        for record in records:
            key, value = record
            if self.snap_digits is not None and isinstance(value, float):
                value = round(value, self.snap_digits)
            snapped.append((key, value))
        snapped.sort(key=lambda record: record[0])
        return tuple(snapped)


def _flatten(epochs: list[MutationEpoch]) -> list[Mutation]:
    return [mutation for epoch in epochs for mutation in epoch.mutations]


class PageRankView(ViewAlgorithm):
    """PageRank ranks as a view.

    Not monotone-safe: dropping or adding vertices leaves the previous
    rank vector summing to less or more than one, violating the mass-
    conservation invariant the fixpoint needs. The warm seed therefore
    applies the ``fix-ranks`` idea at the *input* boundary: keep
    surviving ranks, give new vertices the uniform ``1/n`` share, drop
    removed vertices, then re-normalize the whole vector to total mass
    one. That seed is consistent (a probability distribution), so the
    power iteration re-converges to the unique fixpoint of the new
    graph — typically in far fewer supersteps than the uniform start.
    """

    monotone_safe = False
    snap_digits = 9

    def __init__(
        self,
        damping: float = 0.85,
        epsilon: float = 1e-12,
        max_supersteps: int = 2000,
    ):
        self.name = "pagerank-view"
        self.damping = damping
        self.epsilon = epsilon
        self.max_supersteps = max_supersteps

    def _make_job(self, graph: Graph) -> BulkJob:
        return pagerank(
            graph,
            damping=self.damping,
            epsilon=self.epsilon,
            max_supersteps=self.max_supersteps,
        )

    def cold_job(self, inputs: RefreshInputs) -> BulkJob:
        assert inputs.graph is not None
        return self._make_job(inputs.graph)

    def warm_job(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> BulkJob:
        assert inputs.graph is not None
        graph = inputs.graph
        job = self._make_job(graph)
        previous_ranks = {record[0]: record[1] for record in previous.records}
        uniform = 1.0 / graph.num_vertices
        seeded = [(v, previous_ranks.get(v, uniform)) for v in graph.vertices]
        total = math.fsum(rank for _, rank in seeded)
        # fix-ranks at the input boundary: re-normalize to total mass 1
        # so the seed satisfies the MassConservation invariant.
        job.initial_records = [(v, rank / total) for v, rank in seeded]
        return job

    def affected_keys(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> set[Any]:
        """Directly-touched vertices plus their out-neighbors.

        Rank influence is global in the limit, but the first-order
        perturbation is confined to the touched vertices and the targets
        of their out-links — a useful proxy for "how much of the rank
        vector moves", which is what the warm/cold threshold wants.
        """
        assert inputs.graph is not None
        graph = inputs.graph
        affected: set[Any] = set()
        for epoch in epochs:
            for vertex in epoch.touched_vertices():
                if vertex in graph:
                    affected.add(vertex)
                    affected.update(graph.neighbors(vertex))
        return affected


class ConnectedComponentsView(ViewAlgorithm):
    """Connected-component labels as a view.

    Monotone-safe for additions: labels only ever decrease, so the
    previous labels are valid upper bounds and the workset shrinks to
    the added edges' endpoints plus new vertices. Removals break the
    monotone argument (a split component may need labels to *rise*), so
    the warm seed re-applies the paper's ``fix-components`` reset at
    component granularity: every vertex whose previous label names a
    component touched by a removal is re-initialized to its own id, and
    the workset re-activates the reset vertices and their neighbors so
    the labels re-propagate (§3.2). Because the label fixpoint is unique
    and discrete, the warm result is exactly the cold result.
    """

    monotone_safe = True

    def __init__(self, max_supersteps: int = 500):
        self.name = "components-view"
        self.max_supersteps = max_supersteps

    def cold_job(self, inputs: RefreshInputs) -> DeltaJob:
        assert inputs.graph is not None
        return connected_components(inputs.graph, max_supersteps=self.max_supersteps)

    def _warm_seed(
        self,
        graph: Graph,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """``(solution, workset)`` seeding the delta iteration.

        The solution keeps every surviving label whose component no
        removal touched; reset and new vertices start at their own id.
        The workset wakes exactly the edges across which labels can
        disagree: reset vertices and their neighbors, added-edge
        endpoints, and new vertices.
        """
        previous_labels = {record[0]: record[1] for record in previous.records}
        removed_components: set[int] = set()
        added_endpoints: set[int] = set()
        for mutation in _flatten(epochs):
            if mutation.kind is MutationKind.REMOVE_EDGE:
                assert mutation.edge is not None
                for vertex in mutation.edge:
                    if vertex in previous_labels:
                        removed_components.add(previous_labels[vertex])
            elif mutation.kind is MutationKind.REMOVE_VERTEX:
                # The CDC record names only the vertex; its dropped edges
                # all lived inside its old component, so resetting that
                # component covers every implicitly removed edge.
                if mutation.vertex in previous_labels:
                    removed_components.add(previous_labels[mutation.vertex])
            elif mutation.kind is MutationKind.ADD_EDGE:
                assert mutation.edge is not None
                added_endpoints.update(mutation.edge)

        solution: list[tuple[int, int]] = []
        workset_keys: set[int] = set()
        reset: set[int] = set()
        for vertex in graph.vertices:
            label = previous_labels.get(vertex)
            if label is None or label in removed_components:
                if label is not None:
                    reset.add(vertex)
                solution.append((vertex, vertex))
                workset_keys.add(vertex)
            else:
                solution.append((vertex, label))
        for vertex in reset:
            workset_keys.update(graph.neighbors(vertex))
        workset_keys.update(v for v in added_endpoints if v in graph)

        label_of = dict(solution)
        workset = [(v, label_of[v]) for v in sorted(workset_keys)]
        return solution, workset

    def warm_job(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> DeltaJob:
        assert inputs.graph is not None
        job = self.cold_job(inputs)
        solution, workset = self._warm_seed(inputs.graph, previous, epochs)
        job.initial_solution = solution
        job.initial_workset = workset
        return job

    def affected_keys(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> set[Any]:
        """Exactly the keys the warm workset would re-activate."""
        assert inputs.graph is not None
        _, workset = self._warm_seed(inputs.graph, previous, epochs)
        return {record[0] for record in workset}


# -- derived view: per-component rank mass -------------------------------------
#
# Operator UDFs live at module level so they pickle by reference and the
# process execution backend can dispatch step-plan kernels to workers.


def _component_rank(label: Any, rank: Any) -> Any:
    return (label[1], rank[1])


def _sum_component_mass(left: Any, right: Any) -> Any:
    return (left[0], left[1] + right[1])


vectorized.mark_fold(_sum_component_mass, "sum")


def _keep_new_mass(new: Any, old: Any) -> Any:
    return (new[0], new[1])


def component_mass_plan() -> Plan:
    """Per-component rank mass: join two parent views, reduce, compare.

    Sources: ``masses`` (state), ``labels`` and ``ranks`` (static — the
    parent views' canonical records). The computation is state-free, so
    the bulk iteration reaches its fixpoint on the second superstep (the
    first writes the masses, the second observes zero updates).
    """
    plan = Plan("component-mass-step")
    masses = plan.source("masses", partitioned_by=COMPONENT_KEY)
    labels = plan.source("labels", partitioned_by=VERTEX_KEY)
    ranks = plan.source("ranks", partitioned_by=VERTEX_KEY)

    contributions = labels.join(
        ranks,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=_component_rank,
        name="label-mass",
    )
    summed = contributions.reduce_by_key(
        COMPONENT_KEY,
        fn=_sum_component_mass,
        name="sum-component-mass",
    )
    summed.join(
        masses,
        left_key=COMPONENT_KEY,
        right_key=COMPONENT_KEY,
        fn=_keep_new_mass,
        name="compare-to-old-mass",
        preserves="left",
    )
    return plan


class ComponentMassCompensation(CompensationFunction):
    """``fix-masses``: reset lost partitions to their initial records.

    Consistent for a state-free computation — any complete key set is
    healed by the next superstep, which recomputes every mass from the
    static parent records.
    """

    name = "fix-masses"

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return ctx.initial_partition(partition_id)


class ComponentMassView(ViewAlgorithm):
    """Derived view: total PageRank mass per connected component.

    Consumes two parent views (CC labels and PageRank ranks) instead of
    the graph — the DAG edge the catalog's topological refresh order
    exists for. Declares itself non-warm-capable: the computation is a
    two-superstep join-reduce, so a warm seed could save nothing, and
    the orchestrator always recomputes it cold from the parents'
    current materializations.
    """

    monotone_safe = False
    warm_capable = False
    snap_digits = 9

    def __init__(self, labels: str, ranks: str):
        self.name = "component-mass-view"
        self.labels = labels
        self.ranks = ranks

    def cold_job(self, inputs: RefreshInputs) -> BulkJob:
        label_records = list(inputs.parents[self.labels])
        rank_records = list(inputs.parents[self.ranks])
        components = sorted({label for _, label in label_records})
        if not components:
            raise GraphError(
                f"derived view {self.name!r} needs a non-empty {self.labels!r} parent"
            )
        spec = BulkIterationSpec(
            name="component-mass",
            step_plan=component_mass_plan(),
            state_source="masses",
            next_state_output="compare-to-old-mass",
            state_key=COMPONENT_KEY,
            termination=NoUpdates(),
            max_supersteps=8,
            message_counter="records_in.sum-component-mass",
        )
        return BulkJob(
            spec=spec,
            initial_records=[(component, 0.0) for component in components],
            statics={"labels": label_records, "ranks": rank_records},
            compensation=ComponentMassCompensation(),
            invariants=[KeySetPreserved()],
        )

    def warm_job(
        self,
        inputs: RefreshInputs,
        previous: PreviousState,
        epochs: list[MutationEpoch],
    ) -> BulkJob:
        raise GraphError(f"view algorithm {self.name!r} is not warm-capable")
