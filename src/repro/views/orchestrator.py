"""The refresh orchestrator: keeps materialized views within target lag.

:meth:`RefreshOrchestrator.poll_once` walks the catalog in topological
order and refreshes every view whose staleness exceeds its ``target_lag``
(parents first, so a derived view always reads inputs from the same
source epoch). Each refresh:

1. pins its inputs to one source epoch (the graph snapshot for rooted
   views, the parents' current readings for derived ones) — snapshot
   isolation end to end;
2. decides **warm vs. cold**: warm when the view is already
   materialized, the algorithm is warm-capable, the mode allows it, and
   the affected-key fraction stays within the view's ``warm_threshold``;
3. builds the job through the view's
   :class:`~repro.views.algorithms.ViewAlgorithm` and runs it as a
   :class:`repro.service.job.JobSpec` — standalone, or submitted through
   a :class:`repro.service.api.JobService` so admission, retries,
   deadlines and telemetry apply. Failures injected into a refresh are
   healed in-run by the view's recovery strategy, exactly like any other
   job;
4. canonicalizes the result records and installs them atomically,
   emitting ``views.*`` metrics (refresh counters, supersteps and
   wall-clock histograms, per-view staleness/lag/epoch gauges).

Determinism carries over from the engine: the same catalog, mutations
and refresh decisions produce bit-identical materializations whether
refreshes run standalone or through a service, on any execution backend.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from ..config import DEFAULT_VIEWS_CONFIG, ViewsConfig
from ..errors import ViewError
from ..runtime.failures import FailureSchedule
from ..runtime.metrics import MetricsRegistry
from ..service.job import JobSpec
from .algorithms import PreviousState, RefreshInputs
from .catalog import MaterializedView, ViewCatalog
from .mutations import MutationEpoch


@dataclass(frozen=True)
class RefreshReport:
    """What one refresh did.

    Attributes:
        view: the refreshed view's name.
        from_epoch: the view's epoch before the refresh (-1 = first
            materialization).
        to_epoch: the source epoch the refresh materialized.
        mode: ``"warm"`` or ``"cold"``.
        supersteps: supersteps the refresh job ran.
        converged: whether the job met its termination criterion.
        affected: size of the affected-key set the warm/cold decision
            used (0 for a cold-forced refresh with no analysis).
        total_keys: key count the affected fraction was measured against.
        changed: records that differ from the previous materialization.
        failures: failures injected (and healed in-run) during the
            refresh.
        sim_time: simulated seconds of the refresh job.
        wall_seconds: wall-clock seconds of the refresh end to end.
    """

    view: str
    from_epoch: int
    to_epoch: int
    mode: str
    supersteps: int
    converged: bool
    affected: int
    total_keys: int
    changed: int
    failures: int
    sim_time: float
    wall_seconds: float

    @property
    def affected_fraction(self) -> float:
        if self.total_keys == 0:
            return 1.0
        return self.affected / self.total_keys

    def summary(self) -> str:
        """One-line human-readable refresh summary."""
        return (
            f"{self.view}@{self.to_epoch}: {self.mode} refresh, "
            f"{self.supersteps} supersteps, {self.changed} records changed, "
            f"affected {self.affected}/{self.total_keys}"
        )


class RefreshOrchestrator:
    """Polls a :class:`ViewCatalog` and refreshes stale views in order."""

    def __init__(
        self,
        catalog: ViewCatalog,
        config: ViewsConfig = DEFAULT_VIEWS_CONFIG,
        service: Any | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.catalog = catalog
        self.config = config
        #: optional :class:`repro.service.api.JobService`; refreshes are
        #: submitted to it when set, run standalone otherwise.
        self.service = service
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._poller: threading.Thread | None = None
        self._stop = threading.Event()

    # -- staleness -------------------------------------------------------------

    def target_lag(self, view: MaterializedView) -> int:
        lag = view.definition.target_lag
        return self.config.target_lag if lag is None else lag

    def warm_threshold(self, view: MaterializedView) -> float:
        threshold = view.definition.warm_threshold
        return self.config.warm_threshold if threshold is None else threshold

    def is_stale(self, name: str) -> bool:
        """Whether a poll would refresh the view right now."""
        view = self.catalog.view(name)
        if not view.is_materialized:
            return self.catalog.source_epoch(name) >= 0
        return self.catalog.staleness(name) > self.target_lag(view)

    def stale_views(self) -> list[str]:
        """Stale view names, parents before children."""
        return [name for name in self.catalog.topological_order() if self.is_stale(name)]

    # -- refreshing ------------------------------------------------------------

    def poll_once(self, failures: FailureSchedule | None = None) -> list[RefreshReport]:
        """Refresh every stale view once, in topological order.

        ``failures`` (if given) is injected into each refresh job — the
        fault-injection hook the identity tests and the demo use.
        """
        reports = []
        for name in self.catalog.topological_order():
            if self.is_stale(name):
                reports.append(self.refresh(name, failures=failures))
        self._publish_gauges()
        return reports

    def refresh(
        self, name: str, failures: FailureSchedule | None = None
    ) -> RefreshReport:
        """Refresh one view to its current source epoch now."""
        started = time.perf_counter()
        view = self.catalog.view(name)
        definition = view.definition

        inputs, epochs = self._pin_inputs(view)
        previous = (
            PreviousState(view.epoch, view.read().records)
            if view.is_materialized
            else None
        )
        mode, affected, total_keys = self._decide(view, inputs, previous, epochs)

        algorithm = definition.algorithm
        if mode == "warm":
            assert previous is not None

            def make_job() -> Any:
                return algorithm.warm_job(inputs, previous, epochs)

        else:

            def make_job() -> Any:
                return algorithm.cold_job(inputs)

        spec = JobSpec(
            name=f"view:{name}@{inputs.epoch}:{mode}",
            make_job=make_job,
            config=definition.config,
            recovery=definition.recovery,
            failures=failures,
        )
        if self.service is not None:
            result = self.service.submit(spec).result()
        else:
            result = spec.run_standalone(0)

        records = algorithm.canonicalize(result.final_records)
        changed = self._count_changed(previous, records)
        report = RefreshReport(
            view=name,
            from_epoch=view.epoch,
            to_epoch=inputs.epoch,
            mode=mode,
            supersteps=result.supersteps,
            converged=result.converged,
            affected=affected,
            total_keys=total_keys,
            changed=changed,
            failures=result.num_failures,
            sim_time=result.sim_time,
            wall_seconds=time.perf_counter() - started,
        )
        view.install(inputs.epoch, records, report)
        self._record(report)
        return report

    # -- internals -------------------------------------------------------------

    def _pin_inputs(
        self, view: MaterializedView
    ) -> tuple[RefreshInputs, list[MutationEpoch]]:
        """Pin the refresh to one source epoch (snapshot isolation)."""
        definition = view.definition
        if definition.source is not None:
            graph = self.catalog.graph(definition.source)
            snap = graph.snapshot()
            epochs = (
                graph.epochs_since(view.epoch) if view.is_materialized else []
            )
            # Only the epochs up to the pinned snapshot: a commit racing
            # with this refresh must not leak newer mutations in.
            epochs = [epoch for epoch in epochs if epoch.epoch <= snap.epoch]
            return RefreshInputs(snap.epoch, snap.graph), epochs
        readings = {}
        for parent in definition.depends_on:
            parent_view = self.catalog.view(parent)
            if not parent_view.is_materialized:
                raise ViewError(
                    f"cannot refresh derived view {definition.name!r}: parent "
                    f"{parent!r} has never been materialized (refresh parents "
                    f"first, e.g. via poll_once())"
                )
            readings[parent] = parent_view.read()
        epoch = min(reading.epoch for reading in readings.values())
        parents = {parent: reading.records for parent, reading in readings.items()}
        return RefreshInputs(epoch, None, parents), []

    def _decide(
        self,
        view: MaterializedView,
        inputs: RefreshInputs,
        previous: PreviousState | None,
        epochs: list[MutationEpoch],
    ) -> tuple[str, int, int]:
        """``(mode, affected, total_keys)`` for one refresh."""
        algorithm = view.definition.algorithm
        total_keys = len(previous.records) if previous is not None else 0
        if (
            previous is None
            or not algorithm.warm_capable
            or self.config.refresh_mode == "cold"
        ):
            return "cold", 0, total_keys
        affected = len(algorithm.affected_keys(inputs, previous, epochs))
        if self.config.refresh_mode == "warm":
            return "warm", affected, total_keys
        fraction = affected / total_keys if total_keys else 1.0
        if fraction > self.warm_threshold(view):
            return "cold", affected, total_keys
        return "warm", affected, total_keys

    @staticmethod
    def _count_changed(
        previous: PreviousState | None, records: tuple[Any, ...]
    ) -> int:
        if previous is None:
            return len(records)
        before = {record[0]: record[1] for record in previous.records}
        after_keys = {record[0] for record in records}
        changed = sum(
            1 for key, value in records if before.get(key, _MISSING) != value
        )
        return changed + sum(1 for key in before if key not in after_keys)

    def _record(self, report: RefreshReport) -> None:
        metrics = self.metrics
        metrics.increment("views.refreshes")
        metrics.increment(f"views.refreshes.{report.mode}")
        metrics.increment("views.refresh_failures", report.failures)
        metrics.increment("views.records_changed", report.changed)
        metrics.observe("views.refresh_supersteps", float(report.supersteps))
        metrics.observe("views.refresh_wall_seconds", report.wall_seconds)
        metrics.observe("views.affected_fraction", report.affected_fraction)
        metrics.set_gauge(f"views.epoch.{report.view}", float(report.to_epoch))

    def _publish_gauges(self) -> None:
        """Refresh the per-view staleness/lag gauges after a poll."""
        for name in self.catalog.topological_order():
            view = self.catalog.view(name)
            staleness = self.catalog.staleness(name)
            self.metrics.set_gauge(f"views.staleness.{name}", float(staleness))
            self.metrics.set_gauge(
                f"views.lag_violation.{name}",
                float(max(0, staleness - self.target_lag(view))),
            )

    # -- background polling ----------------------------------------------------

    def start(self, interval: float | None = None) -> None:
        """Start the background poller thread (idempotent)."""
        if self._poller is not None and self._poller.is_alive():
            return
        delay = self.config.poll_interval if interval is None else interval
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(delay):
                self.poll_once()

        self._poller = threading.Thread(
            target=loop, name="view-refresh-poller", daemon=True
        )
        self._poller.start()

    def stop(self) -> None:
        """Stop the background poller (no-op when not running)."""
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=5.0)
            self._poller = None


class _Missing:
    def __eq__(self, other: object) -> bool:
        return False

    def __repr__(self) -> str:
        return "<missing>"


_MISSING = _Missing()
