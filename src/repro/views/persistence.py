"""Catalog persistence: definitions + materializations survive a restart.

:func:`save_catalog` writes a :class:`~repro.views.catalog.ViewCatalog`
to one JSON spool file — every view's definition (algorithm kind +
constructor kwargs, source/parents, lag/threshold/engine/recovery knobs)
plus its current materialization (last installed epoch and records).
:func:`load_catalog` rebuilds the catalog from that file: definitions
re-register in the stored (topological) order, materializations
re-install, and a restarted service resumes refreshing from the
persisted epoch instead of recomputing every view cold.

Mutable graphs are *not* persisted — they are live data owned by the
application — so ``load_catalog`` takes the re-registered graphs as an
argument and validates that every graph-rooted view finds its source.
Algorithms are rebuilt through a registry keyed by the adapter's
``name`` (``pagerank-view``, ``components-view``, ``component-mass-view``);
custom adapters register with :func:`register_algorithm`.

Writes are atomic (temp file + ``os.replace``), the same discipline as
the service spool: a reader never observes a torn catalog.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable

from ..config import CostModel, EngineConfig
from ..errors import ViewError
from .algorithms import (
    ComponentMassView,
    ConnectedComponentsView,
    PageRankView,
    ViewAlgorithm,
)
from .catalog import NEVER_MATERIALIZED, ViewCatalog, ViewDefinition
from .mutable_graph import MutableGraph

#: catalog file format version (bump on incompatible layout changes).
FORMAT_VERSION = 1

_ALGORITHM_BUILDERS: dict[str, Callable[..., ViewAlgorithm]] = {}
_ALGORITHM_KWARGS: dict[str, Callable[[ViewAlgorithm], dict[str, Any]]] = {}


def register_algorithm(
    kind: str,
    builder: Callable[..., ViewAlgorithm],
    kwargs_of: Callable[[ViewAlgorithm], dict[str, Any]],
) -> None:
    """Register a view-algorithm kind for persistence.

    ``builder(**kwargs)`` must reconstruct an equivalent adapter from
    what ``kwargs_of(adapter)`` returned when the catalog was saved.
    """
    _ALGORITHM_BUILDERS[kind] = builder
    _ALGORITHM_KWARGS[kind] = kwargs_of


register_algorithm(
    "pagerank-view",
    PageRankView,
    lambda a: {
        "damping": a.damping,
        "epsilon": a.epsilon,
        "max_supersteps": a.max_supersteps,
    },
)
register_algorithm(
    "components-view",
    ConnectedComponentsView,
    lambda a: {"max_supersteps": a.max_supersteps},
)
register_algorithm(
    "component-mass-view",
    ComponentMassView,
    lambda a: {"labels": a.labels, "ranks": a.ranks},
)


def _algorithm_to_dict(algorithm: ViewAlgorithm) -> dict[str, Any]:
    kind = algorithm.name
    if kind not in _ALGORITHM_KWARGS:
        raise ViewError(
            f"algorithm {kind!r} has no registered persistence adapter; "
            f"call repro.views.persistence.register_algorithm first"
        )
    return {"kind": kind, "kwargs": _ALGORITHM_KWARGS[kind](algorithm)}


def _algorithm_from_dict(data: dict[str, Any]) -> ViewAlgorithm:
    kind = data.get("kind")
    if kind not in _ALGORITHM_BUILDERS:
        raise ViewError(f"unknown persisted algorithm kind {kind!r}")
    return _ALGORITHM_BUILDERS[kind](**data.get("kwargs", {}))


def save_catalog(catalog: ViewCatalog, path: str | os.PathLike[str]) -> None:
    """Persist ``catalog`` (definitions + materializations) atomically."""
    views: list[dict[str, Any]] = []
    for name in catalog.topological_order():
        view = catalog.view(name)
        definition = view.definition
        entry: dict[str, Any] = {
            "name": definition.name,
            "algorithm": _algorithm_to_dict(definition.algorithm),
            "source": definition.source,
            "depends_on": list(definition.depends_on),
            "target_lag": definition.target_lag,
            "warm_threshold": definition.warm_threshold,
            "config": asdict(definition.config),
            "recovery": definition.recovery,
            "epoch": view.epoch,
            "records": None,
        }
        if view.is_materialized:
            entry["records"] = [[key, value] for key, value in view.read().records]
        views.append(entry)
    payload = {
        "format": FORMAT_VERSION,
        "graphs": catalog.graph_names(),
        "views": views,
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, target)


def load_catalog(
    path: str | os.PathLike[str],
    graphs: dict[str, MutableGraph] | None = None,
) -> ViewCatalog:
    """Rebuild a catalog from a file :func:`save_catalog` wrote.

    ``graphs`` supplies the live mutable graphs graph-rooted views need,
    keyed by their registered names; a missing graph is a
    :class:`repro.errors.ViewError` (the persisted definition would
    dangle). Materialized views come back at their persisted epoch with
    their persisted records installed.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ViewError(f"no persisted catalog at {path}") from None
    except json.JSONDecodeError as exc:
        raise ViewError(f"persisted catalog at {path} is not valid JSON: {exc}") from None
    if payload.get("format") != FORMAT_VERSION:
        raise ViewError(
            f"persisted catalog format {payload.get('format')!r} is not "
            f"the supported version {FORMAT_VERSION}"
        )
    graphs = graphs or {}
    catalog = ViewCatalog()
    for name in payload.get("graphs", []):
        if name not in graphs:
            raise ViewError(
                f"persisted catalog needs graph {name!r}; pass it via graphs="
            )
        catalog.add_graph(name, graphs[name])
    for entry in payload.get("views", []):
        config_data = dict(entry["config"])
        config_data["cost_model"] = CostModel(**config_data["cost_model"])
        definition = ViewDefinition(
            name=entry["name"],
            algorithm=_algorithm_from_dict(entry["algorithm"]),
            source=entry["source"],
            depends_on=tuple(entry["depends_on"]),
            target_lag=entry["target_lag"],
            warm_threshold=entry["warm_threshold"],
            config=EngineConfig(**config_data),
            recovery=entry["recovery"],
        )
        view = catalog.register(definition)
        epoch = entry.get("epoch", NEVER_MATERIALIZED)
        if epoch != NEVER_MATERIALIZED and entry.get("records") is not None:
            view.install(
                epoch, tuple(tuple(record) for record in entry["records"])
            )
    return catalog
