"""repro.views — iterative jobs as incrementally-maintained views.

The paper heals "consistent but not correct" state after a *failure* by
re-converging instead of rolling back. This package applies the same move
to *input change*: when the graph mutates, the previous fixpoint is
exactly such a recoverable state, so a materialized view of an iterative
job (PageRank ranks, CC labels) can be refreshed **warm** — seeded from
its previous solution, compensated to consistency, with the workset
shrunk to the keys the mutations can affect — instead of recomputed from
scratch. Warm and cold refreshes materialize bit-identical records; warm
converges in fewer supersteps for small mutation batches (the S10
benchmark measures the curve).

Quickstart::

    from repro.views import run_scenario, ScenarioConfig

    for outcome in run_scenario(ScenarioConfig(seed=7), epochs=3):
        for report in outcome.reports:
            print(report.summary())

or, managing the pieces yourself::

    from repro.graph import demo_graph
    from repro.views import (
        ConnectedComponentsView, MutableGraph, RefreshOrchestrator,
        ViewCatalog, ViewDefinition,
    )

    catalog = ViewCatalog()
    graph = catalog.add_graph("graph", MutableGraph(demo_graph()))
    catalog.register(ViewDefinition(
        name="cc-labels", algorithm=ConnectedComponentsView(), source="graph",
    ))
    orchestrator = RefreshOrchestrator(catalog)
    orchestrator.poll_once()              # cold: first materialization
    graph.add_edge(0, 5); graph.commit()  # epoch 1
    orchestrator.poll_once()              # warm: seeded from epoch 0
    print(catalog.read("cc-labels"))
"""

from .algorithms import (
    ComponentMassView,
    ConnectedComponentsView,
    PageRankView,
    PreviousState,
    RefreshInputs,
    ViewAlgorithm,
)
from .catalog import (
    MaterializedView,
    ViewCatalog,
    ViewDefinition,
    ViewReading,
)
from .mutable_graph import GraphSnapshot, MutableGraph
from .mutations import Mutation, MutationEpoch, MutationKind, MutationLog
from .orchestrator import RefreshOrchestrator, RefreshReport
from .persistence import load_catalog, register_algorithm, save_catalog
from .scenario import (
    EpochOutcome,
    ScenarioConfig,
    build_scenario,
    mutate_epoch,
    run_scenario,
)

__all__ = [
    "ComponentMassView",
    "ConnectedComponentsView",
    "EpochOutcome",
    "GraphSnapshot",
    "MaterializedView",
    "MutableGraph",
    "Mutation",
    "MutationEpoch",
    "MutationKind",
    "MutationLog",
    "PageRankView",
    "PreviousState",
    "RefreshInputs",
    "RefreshOrchestrator",
    "RefreshReport",
    "ScenarioConfig",
    "ViewAlgorithm",
    "ViewCatalog",
    "ViewDefinition",
    "ViewReading",
    "build_scenario",
    "load_catalog",
    "mutate_epoch",
    "register_algorithm",
    "run_scenario",
    "save_catalog",
]
