"""The mutating-graph demo scenario: a small view DAG under churn.

One seeded, fully deterministic scenario shared by the ``repro views``
CLI subcommand, the S10 benchmark and the loadgen's ``view_refresh`` job
kind: a multi-component graph evolves through seeded mutation epochs
while three views stay fresh —

* ``cc-labels``: connected-component labels (delta iteration, warm-safe
  for additions, component-granular reset on removals);
* ``ranks``: PageRank ranks (bulk iteration, warm via re-normalized
  previous ranks);
* ``component-mass``: rank mass per component — a *derived* view joining
  the two above, exercising the catalog's topological refresh order.

Every epoch applies a seeded batch of mutations (edge adds, and — with
``removal_fraction`` probability each — edge/vertex removals), commits,
and polls the orchestrator; the per-epoch :class:`EpochOutcome` records
what changed and how each view refreshed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..config import EngineConfig, ViewsConfig
from ..errors import ConfigError
from ..graph.generators import multi_component_graph
from ..runtime.failures import FailureSchedule
from .algorithms import ComponentMassView, ConnectedComponentsView, PageRankView
from .catalog import ViewCatalog, ViewDefinition
from .mutable_graph import MutableGraph
from .mutations import MutationEpoch
from .orchestrator import RefreshOrchestrator, RefreshReport


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the mutating-graph scenario.

    Attributes:
        num_components: components of the starting graph.
        component_size: vertices per starting component.
        seed: seed of the mutation stream (and the graph generator).
        mutations_per_epoch: batch size each epoch commits.
        removal_fraction: probability that one mutation of the batch is a
            removal instead of an addition (0 = adds only, the
            monotone-safe regime).
        parallelism: partitions of every refresh job.
        recovery: recovery strategy of the iterative views' refresh jobs.
        views: the orchestrator's :class:`repro.config.ViewsConfig`.
        engine_config: full engine configuration of the refresh jobs;
            ``None`` (default) derives one from ``parallelism``. Lets
            the CLI thread backend/columnar overrides through.
    """

    num_components: int = 4
    component_size: int = 15
    seed: int = 7
    mutations_per_epoch: int = 4
    removal_fraction: float = 0.25
    parallelism: int = 4
    recovery: str = "optimistic"
    views: ViewsConfig = field(default_factory=ViewsConfig)
    engine_config: EngineConfig | None = None

    def __post_init__(self) -> None:
        if self.num_components < 1:
            raise ConfigError(
                f"num_components must be >= 1, got {self.num_components}"
            )
        if self.component_size < 2:
            raise ConfigError(
                f"component_size must be >= 2, got {self.component_size}"
            )
        if self.mutations_per_epoch < 1:
            raise ConfigError(
                f"mutations_per_epoch must be >= 1, got {self.mutations_per_epoch}"
            )
        if not 0.0 <= self.removal_fraction <= 1.0:
            raise ConfigError(
                f"removal_fraction must be in [0, 1], got {self.removal_fraction}"
            )
        if self.parallelism < 1:
            raise ConfigError(f"parallelism must be >= 1, got {self.parallelism}")

    @property
    def engine(self) -> EngineConfig:
        if self.engine_config is not None:
            return self.engine_config
        return EngineConfig(parallelism=self.parallelism)


@dataclass(frozen=True)
class EpochOutcome:
    """One scenario epoch: the mutation batch and its refreshes."""

    epoch: int
    mutation_counts: dict[str, int]
    reports: tuple[RefreshReport, ...]

    def report_for(self, view: str) -> RefreshReport | None:
        for report in self.reports:
            if report.view == view:
                return report
        return None


def build_scenario(
    config: ScenarioConfig = ScenarioConfig(),
    service: Any | None = None,
) -> tuple[ViewCatalog, RefreshOrchestrator, MutableGraph]:
    """The scenario's catalog: one graph, two rooted views, one derived."""
    base = multi_component_graph(
        num_components=config.num_components,
        component_size=config.component_size,
        seed=config.seed,
    )
    mutable = MutableGraph(base)
    catalog = ViewCatalog()
    catalog.add_graph("graph", mutable)
    catalog.register(
        ViewDefinition(
            name="cc-labels",
            algorithm=ConnectedComponentsView(),
            source="graph",
            config=config.engine,
            recovery=config.recovery,
        )
    )
    catalog.register(
        ViewDefinition(
            name="ranks",
            algorithm=PageRankView(),
            source="graph",
            config=config.engine,
            recovery=config.recovery,
        )
    )
    catalog.register(
        ViewDefinition(
            name="component-mass",
            algorithm=ComponentMassView(labels="cc-labels", ranks="ranks"),
            depends_on=("cc-labels", "ranks"),
            config=config.engine,
            recovery=config.recovery,
        )
    )
    orchestrator = RefreshOrchestrator(
        catalog, config=config.views, service=service
    )
    return catalog, orchestrator, mutable


def mutate_epoch(
    mutable: MutableGraph, rng: random.Random, config: ScenarioConfig
) -> MutationEpoch:
    """Apply one seeded mutation batch and commit it as an epoch.

    The batch always keeps the graph non-empty and never strands the
    scenario: removals are skipped when the structure they need is gone.
    """
    for _ in range(config.mutations_per_epoch):
        roll = rng.random()
        vertices = mutable.vertices
        edges = mutable.edges
        if roll < config.removal_fraction and edges:
            if rng.random() < 0.25 and len(vertices) > 2:
                mutable.remove_vertex(rng.choice(vertices))
            else:
                mutable.remove_edge(*rng.choice(edges))
        elif roll < config.removal_fraction + 0.15 or len(vertices) < 2:
            vertex = max(vertices) + 1
            mutable.add_vertex(vertex)
            mutable.add_edge(vertex, rng.choice(vertices))
        else:
            for _ in range(32):
                source, target = rng.sample(vertices, 2)
                if not mutable.has_edge(source, target):
                    mutable.add_edge(source, target)
                    break
    return mutable.commit()


def run_scenario(
    config: ScenarioConfig = ScenarioConfig(),
    epochs: int = 3,
    service: Any | None = None,
    failures: FailureSchedule | None = None,
    fail_epoch: int | None = None,
) -> list[EpochOutcome]:
    """Run the scenario end to end: mutate, commit, refresh, repeat.

    ``failures`` (when given) is injected into the refreshes of epoch
    ``fail_epoch`` (default: the first), demonstrating a failure *during*
    a refresh healed in-run by the views' recovery strategy.
    """
    if epochs < 1:
        raise ConfigError(f"epochs must be >= 1, got {epochs}")
    catalog, orchestrator, mutable = build_scenario(config, service=service)
    rng = random.Random(config.seed)
    outcomes = []
    # epoch 0: first materialization of the unmutated base graph
    initial = orchestrator.poll_once()
    outcomes.append(EpochOutcome(0, {}, tuple(initial)))
    for index in range(1, epochs + 1):
        sealed = mutate_epoch(mutable, rng, config)
        inject = failures if fail_epoch in (None, index) and failures else None
        reports = orchestrator.poll_once(failures=inject)
        outcomes.append(EpochOutcome(sealed.epoch, sealed.counts(), tuple(reports)))
    return outcomes
