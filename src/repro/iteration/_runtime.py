"""Internal: per-run runtime assembly shared by the bulk and delta drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..config import EngineConfig
from ..core.recovery import RecoveryContext
from ..dataflow.operators import SourceOperator
from ..dataflow.plan import Plan
from ..errors import IterationError
from ..observability.tracer import NOOP_TRACER, Tracer
from ..runtime.blocks import BlockStore
from ..runtime.cluster import SimulatedCluster
from ..runtime.executor import PartitionedDataset, PlanExecutor
from ..runtime.failures import FailureInjector, FailureSchedule
from ..runtime.parallel import get_backend
from ..runtime.state import record_matches
from ..runtime.storage import StableStorage


@dataclass
class JobRuntime:
    """The runtime objects one iteration run owns."""

    config: EngineConfig
    cluster: SimulatedCluster
    executor: PlanExecutor
    storage: StableStorage
    injector: FailureInjector
    block_store: BlockStore | None = None

    @property
    def clock(self):
        return self.cluster.clock

    @property
    def events(self):
        return self.cluster.events

    @property
    def metrics(self):
        return self.executor.metrics

    @property
    def tracer(self):
        return self.executor.tracer

    def close(self) -> None:
        """End-of-run cleanup: drop worker-resident side values.

        The shared thread/process pools stay alive for the next run;
        only this run's shipped build indexes and broadcasts are
        released. Closing the block store re-materializes any spilled
        blocks first, so result datasets stay readable after the run.
        """
        self.executor.release_residents()
        if self.block_store is not None:
            self.block_store.close()


def build_runtime(
    config: EngineConfig,
    failures: FailureSchedule | None,
    tracer: Tracer | None = None,
) -> JobRuntime:
    """Assemble a fresh cluster/executor/storage/injector for one run.

    When a ``tracer`` is given it is bound to the run's simulated clock
    and handed to the executor, so operator spans nest under whatever
    spans the driver opens.
    """
    cluster = SimulatedCluster(config)
    tracer = tracer if tracer is not None else NOOP_TRACER
    tracer.bind(cluster.clock)
    block_store = (
        BlockStore(budget_bytes=config.block_budget_bytes) if config.columnar else None
    )
    executor = PlanExecutor(
        config.parallelism,
        clock=cluster.clock,
        combiners=config.combiners,
        tracer=tracer,
        backend=get_backend(config.parallel_backend, config.parallel_workers),
        columnar=config.columnar,
        block_store=block_store,
    )
    storage = StableStorage(cluster.clock)
    injector = FailureInjector(failures if failures is not None else FailureSchedule.none())
    return JobRuntime(
        config=config,
        cluster=cluster,
        executor=executor,
        storage=storage,
        injector=injector,
        block_store=block_store,
    )


def bind_statics(
    plan: Plan,
    statics: dict[str, Iterable[Any]],
    dynamic_sources: set[str],
    parallelism: int,
    executor: PlanExecutor | None = None,
) -> dict[str, PartitionedDataset]:
    """Partition loop-invariant inputs once, per their source key specs.

    Flink caches loop-invariant data partitioned (and sorted) across
    iterations; partitioning statics once here models that — every
    superstep's execution then finds them already placed and skips the
    shuffle. When ``executor`` runs columnar, each bound dataset is
    packed into blocks here (statics are the largest long-lived
    payloads, so this is where packing pays the most).
    """
    bound: dict[str, PartitionedDataset] = {}
    declared = {op.name: op for op in plan.sources()}
    for name in declared:
        if name in dynamic_sources:
            continue
        if name not in statics:
            raise IterationError(
                f"step plan source {name!r} is neither iterative state nor "
                f"a provided static input"
            )
    for name, records in statics.items():
        if name not in declared:
            raise IterationError(f"static input {name!r} matches no plan source")
        source: SourceOperator = declared[name]
        dataset = PartitionedDataset.from_records(
            records, parallelism, key=source.partitioned_by
        )
        if executor is not None:
            executor.pack_dataset(dataset)
        bound[name] = dataset
    return bound


def pin_initial_inputs(
    runtime: JobRuntime,
    ctx: RecoveryContext,
    initial_state: PartitionedDataset,
    initial_workset: PartitionedDataset | None,
) -> None:
    """Write the initial inputs to stable storage, uncharged.

    Every real deployment starts with its inputs on a distributed
    filesystem, so pinning them is free; *reading them back* after a
    failure is charged (restart recovery pays it).
    """
    for pid, records in enumerate(initial_state.partitions):
        runtime.storage.write(ctx.initial_state_key(pid), records or [], charge=False)
    if initial_workset is not None:
        for pid, records in enumerate(initial_workset.partitions):
            runtime.storage.write(ctx.initial_workset_key(pid), records or [], charge=False)


def count_converged(
    records: Iterable[Any],
    truth: dict[Any, Any] | None,
    tolerance: float,
    job: str | None = None,
) -> int:
    """How many ``(key, value)`` records match the precomputed truth.

    The demo "precomputes the true values for presentation reasons"
    (§3.2); this is the comparison behind its convergence plots. The
    comparison itself is :func:`repro.runtime.state.record_matches` —
    shared with the keyed state backend's incremental converged counter
    so bulk and delta iterations count identically.

    Raises:
        IterationError: when a state record is not ``(key, value)``-shaped
            (e.g. not subscriptable), naming ``job`` and the record.
    """
    if truth is None:
        return 0
    converged = 0
    for record in records:
        try:
            key, value = record[0], record[1]
        except (TypeError, IndexError) as exc:
            where = f" of job {job!r}" if job is not None else ""
            raise IterationError(
                f"state record {record!r}{where} is not (key, value)-shaped: "
                f"truth comparison needs subscriptable records with at least "
                f"two fields"
            ) from exc
        if key not in truth:
            continue
        if record_matches(value, truth[key], tolerance):
            converged += 1
    return converged
