"""Delta iterations.

A delta iteration (§2.1) maintains two datasets: the **solution set**
holding the current intermediate result and the **workset** holding
pending updates. Every superstep consumes the workset, selectively updates
elements of the solution set, and computes the next workset; the iteration
terminates once the workset runs empty. Connected Components is the
paper's delta workload.

The step plan sees two dynamic sources — the solution set and the
workset — and produces two outputs: the *delta* (``(key, value)`` records
replacing/inserting solution-set entries) and the next workset. The driver
keeps the solution set in a keyed state backend
(:mod:`repro.runtime.state`): partitioned by the state key like Flink's
co-located solution sets (so no shuffle is needed) and indexed per
partition, so applying the delta costs O(|delta|) — not O(|state|) — per
superstep. ``EngineConfig.state_backend`` selects the backend
implementation.

Failures destroy the freshly updated solution-set partitions *and* the
next workset partitions on the failed workers.
"""

from __future__ import annotations

from contextlib import closing, nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..config import DEFAULT_CONFIG, EngineConfig
from ..core.recovery import RecoveryContext, RecoveryStrategy
from ..core.restart import RestartRecovery
from ..core.strategies import resolve_recovery
from ..dataflow.datatypes import KeySpec
from ..dataflow.invariants import analyze_invariants
from ..dataflow.plan import Plan
from ..errors import IterationError, TerminationError
from ..observability.span import SpanKind
from ..observability.telemetry import RunTelemetry
from ..observability.tracer import NOOP_TRACER, Tracer
from ..runtime.cache import SuperstepExecutionCache
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from ..runtime.failures import FailureSchedule
from ..runtime.metrics import IterationStats, StatsSeries
from ..runtime.state import make_state_backend
from ._runtime import bind_statics, build_runtime, pin_initial_inputs
from .result import IterationResult
from .snapshots import SnapshotPhase, SnapshotStore
from .termination import EmptyWorkset, TerminationCriterion


@dataclass
class DeltaIterationSpec:
    """Description of a delta-iterative job.

    Attributes:
        name: job name.
        step_plan: dataflow executed once per superstep, with sources
            named ``solution_source`` and ``workset_source`` plus any
            loop-invariant inputs.
        solution_source: plan source bound to the current solution set.
        workset_source: plan source bound to the current workset.
        delta_output: operator whose output records ``(key, value)``
            replace/insert solution-set entries.
        workset_output: operator whose output becomes the next workset.
        state_key: key spec both solution set and workset are partitioned
            by.
        termination: convergence test; defaults to the canonical
            empty-workset criterion.
        max_supersteps: hard superstep budget.
        message_counter: metrics counter reported as "messages" per
            superstep (e.g. ``records_in.candidate-label``).
        truth: precomputed correct final solution, for convergence plots.
        truth_tolerance: tolerance for float truth comparison.
        value_fn: optional float extraction for L1-delta tracking.
    """

    name: str
    step_plan: Plan
    solution_source: str
    workset_source: str
    delta_output: str
    workset_output: str
    state_key: KeySpec
    termination: TerminationCriterion | None = None
    max_supersteps: int = 100
    message_counter: str | None = None
    truth: dict[Any, Any] | None = None
    truth_tolerance: float = 0.0
    value_fn: Callable[[Any], float] | None = None

    def __post_init__(self) -> None:
        if self.max_supersteps < 1:
            raise IterationError(f"max_supersteps must be >= 1, got {self.max_supersteps}")
        if self.termination is None:
            self.termination = EmptyWorkset()
        source_names = {op.name for op in self.step_plan.sources()}
        for required in (self.solution_source, self.workset_source):
            if required not in source_names:
                raise IterationError(
                    f"step plan has no source named {required!r} "
                    f"(sources: {sorted(source_names)})"
                )
        self.step_plan.operator_by_name(self.delta_output)
        self.step_plan.operator_by_name(self.workset_output)


def run_delta_iteration(
    spec: DeltaIterationSpec,
    initial_solution: Iterable[Any],
    initial_workset: Iterable[Any] | None = None,
    statics: dict[str, Iterable[Any]] | None = None,
    *,
    config: EngineConfig = DEFAULT_CONFIG,
    recovery: RecoveryStrategy | None = None,
    failures: FailureSchedule | None = None,
    snapshots: SnapshotStore | None = None,
    tracer: Tracer | None = None,
    telemetry: RunTelemetry | None = None,
) -> IterationResult:
    """Run a delta iteration until the workset empties (or budget ends).

    Args:
        spec: the job description.
        initial_solution: initial solution set, ``(key, value)`` records.
        initial_workset: initial workset; defaults to a copy of the
            initial solution set (the paper's Connected Components does
            exactly this: "the workset initially equals the labels
            input").
        statics: loop-invariant inputs ``{plan source name: records}``.
        config: engine configuration.
        recovery: fault-tolerance strategy; ``None`` builds the strategy
            named by ``config.recovery`` (default: restart / no FT).
        failures: failure schedule to inject.
        snapshots: optional per-superstep state snapshot store.
        tracer: optional span tracer (default: the no-op tracer). A
            :class:`repro.observability.tracer.RecordingTracer` captures
            the run → superstep → operator → partition span tree.
        telemetry: optional live-telemetry bundle
            (:class:`repro.observability.telemetry.RunTelemetry`). Purely
            observational — the run's records, simulated time and
            superstep count are bit-identical with or without it.

    Returns:
        An :class:`repro.iteration.result.IterationResult`; its
        ``final_records`` are the solution set.
    """
    if recovery is None:
        recovery = resolve_recovery(config)
    recovery = recovery if recovery is not None else RestartRecovery()
    tracer = tracer if tracer is not None else NOOP_TRACER
    runtime = build_runtime(config, failures, tracer=tracer)
    if telemetry is not None:
        telemetry.bind_runtime(
            runtime.metrics, runtime.clock, runtime.events, job=spec.name
        )
        telemetry.set_target(getattr(spec.termination, "epsilon", None))
    parallelism = config.parallelism
    bound_statics = bind_statics(
        spec.step_plan,
        dict(statics or {}),
        {spec.solution_source, spec.workset_source},
        parallelism,
        executor=runtime.executor,
    )
    initial_solution = list(initial_solution)
    if not initial_solution:
        raise IterationError(f"delta iteration {spec.name!r} started with empty solution set")
    workset_records = (
        list(initial_workset) if initial_workset is not None else list(initial_solution)
    )
    solution = PartitionedDataset.from_records(
        initial_solution, parallelism, key=spec.state_key
    )
    # The workset is reborn every superstep from the repartitioned step
    # output (which packs when columnar); packing the initial one keeps
    # superstep 0 on the same representation. The solution set stays
    # record lists — the keyed state backend owns and mutates it.
    workset = runtime.executor.pack_dataset(
        PartitionedDataset.from_records(workset_records, parallelism, key=spec.state_key)
    )
    backend = make_state_backend(
        config.state_backend,
        solution,
        spec.state_key,
        metrics=runtime.metrics,
        value_fn=spec.value_fn,
        truth=spec.truth,
        truth_tolerance=spec.truth_tolerance,
    )
    cache: SuperstepExecutionCache | None = None
    if config.execution_cache != "off":
        cache = SuperstepExecutionCache(
            analyze_invariants(
                spec.step_plan, {spec.solution_source, spec.workset_source}
            ),
            mode=config.execution_cache,
            metrics=runtime.metrics,
        )
    ctx = RecoveryContext(
        job_name=spec.name,
        cluster=runtime.cluster,
        executor=runtime.executor,
        storage=runtime.storage,
        state_key=spec.state_key,
        statics=bound_statics,
        initial_state=solution.copy(),
        initial_workset=workset.copy(),
        state_backend=backend,
        execution_cache=cache,
    )
    pin_initial_inputs(runtime, ctx, solution, workset)
    recovery.reset()
    recovery.on_start(ctx)
    assert spec.termination is not None
    spec.termination.reset()

    series = StatsSeries()
    if snapshots is not None:
        snapshots.add(-1, SnapshotPhase.INITIAL, backend.records_view())
    converged = False
    supersteps_run = 0

    # closing() releases worker-resident side values even when the run
    # raises (the shared thread/process pools themselves stay up); the
    # telemetry bundle unhooks from the collector and event log likewise.
    with closing(runtime), (
        closing(telemetry) if telemetry is not None else nullcontext()
    ), tracer.span(
        f"run:{spec.name}",
        kind=SpanKind.RUN,
        job=spec.name,
        mode="delta",
        strategy=recovery.name,
        parallelism=parallelism,
        state_backend=backend.name,
        parallel_backend=runtime.executor.backend.name,
        parallel_workers=runtime.executor.backend.workers,
    ) as run_span:
        for superstep in range(spec.max_supersteps):
            supersteps_run = superstep + 1
            stats = IterationStats(superstep, sim_time_start=runtime.clock.now)
            runtime.events.record(
                EventKind.SUPERSTEP_STARTED, time=runtime.clock.now, superstep=superstep
            )
            metrics_before = runtime.metrics.snapshot()
            entering_workset = workset.num_records()
            runtime.metrics.set_gauge("workset_size", entering_workset)
            runtime.metrics.observe("workset_size", entering_workset)

            with tracer.span(
                f"superstep:{superstep}",
                kind=SpanKind.SUPERSTEP,
                superstep=superstep,
                workset_size=entering_workset,
            ) as superstep_span:
                outputs = runtime.executor.execute(
                    spec.step_plan,
                    {
                        spec.solution_source: backend.to_dataset(),
                        spec.workset_source: workset,
                        **bound_statics,
                    },
                    outputs=[spec.delta_output, spec.workset_output],
                    cache=cache,
                )
                delta = runtime.executor.repartition(
                    outputs[spec.delta_output], spec.state_key, context=f"{spec.name}.delta"
                )
                next_workset = runtime.executor.repartition(
                    outputs[spec.workset_output],
                    spec.state_key,
                    context=f"{spec.name}.workset",
                )
                if next_workset is delta:
                    # One operator may feed both outputs (Connected Components'
                    # label-update does); decouple so losing workset partitions
                    # cannot alias into the delta.
                    next_workset = delta.copy()
                if spec.message_counter is not None:
                    stats.messages = runtime.metrics.diff(metrics_before).get(
                        spec.message_counter, 0
                    )
                stats.updates = backend.apply_delta(delta)
                if spec.value_fn is not None:
                    stats.l1_delta = backend.last_l1_delta

                due = runtime.injector.pop(superstep)
                if due:
                    if snapshots is not None:
                        snapshots.add(
                            superstep,
                            SnapshotPhase.BEFORE_FAILURE,
                            backend.records_view(),
                        )
                    with tracer.span(
                        "recovery", kind=SpanKind.RECOVERY, superstep=superstep
                    ) as recovery_span:
                        lost: list[int] = []
                        for event in due:
                            lost.extend(
                                runtime.cluster.fail_workers(
                                    list(event.worker_ids), superstep
                                )
                            )
                        runtime.clock.charge_failure_detection()
                        stats.failed = True
                        if lost:
                            if recovery.needs_preloss_capture:
                                # Confined recovery's replay oracle: the
                                # partition contents the failure is about
                                # to destroy (what a deterministic replay
                                # would recompute).
                                recovery.capture_preloss(
                                    superstep,
                                    backend.to_dataset(),
                                    next_workset,
                                    lost,
                                )
                            backend.lose(lost)
                            next_workset.lose(lost)
                            runtime.cluster.reassign_lost(superstep)
                            if cache is not None:
                                # Cached partitions lived on the failed
                                # workers; recovery must recompute them.
                                cache.invalidate(lost)
                            # Worker-resident copies of the invalidated
                            # build sides are stale too.
                            runtime.executor.release_residents()
                            outcome = recovery.recover(
                                ctx, superstep, backend.to_dataset(), next_workset, lost
                            )
                            recovered_state = runtime.executor.repartition(
                                outcome.state,
                                spec.state_key,
                                context=f"{spec.name}.recovered",
                            )
                            if outcome.healed_partitions is not None:
                                # Confined recovery: survivors' partitions
                                # (and their indexes) are untouched — only
                                # the healed ones are reinstalled.
                                for pid in outcome.healed_partitions:
                                    backend.replace_partition(
                                        pid, recovered_state.partitions[pid] or []
                                    )
                            else:
                                backend.restore_from(recovered_state)
                            if outcome.workset is None:
                                raise IterationError(
                                    f"recovery strategy {recovery.name!r} returned no "
                                    f"workset for delta iteration {spec.name!r}"
                                )
                            next_workset = runtime.executor.repartition(
                                outcome.workset,
                                spec.state_key,
                                context=f"{spec.name}.recovered-ws",
                            )
                            stats.compensated = outcome.compensated
                            stats.rolled_back = outcome.rolled_back_to is not None
                            stats.restarted = outcome.restarted
                            stats.confined = outcome.healed_partitions is not None
                            if outcome.restarted:
                                spec.termination.reset()
                            recovery_span.set_attribute("lost_partitions", sorted(lost))
                            recovery_span.set_attribute(
                                "outcome",
                                "replay"
                                if stats.confined
                                else "compensation"
                                if outcome.compensated
                                else "rollback"
                                if stats.rolled_back
                                else "restart",
                            )
                            if snapshots is not None:
                                phase = (
                                    SnapshotPhase.AFTER_CONFINED
                                    if stats.confined
                                    else SnapshotPhase.AFTER_COMPENSATION
                                    if outcome.compensated
                                    else SnapshotPhase.AFTER_ROLLBACK
                                    if stats.rolled_back
                                    else SnapshotPhase.AFTER_RESTART
                                )
                                snapshots.add(
                                    superstep, phase, backend.records_view()
                                )
                else:
                    with tracer.span(
                        "commit", kind=SpanKind.CHECKPOINT, superstep=superstep
                    ):
                        recovery.on_superstep_committed(
                            ctx, superstep, backend.to_dataset(), next_workset
                        )

                stats.workset_size = next_workset.num_records()
                stats.converged = backend.converged_count()
                stats.sim_time_end = runtime.clock.now
                superstep_span.set_attribute("messages", stats.messages)
                superstep_span.set_attribute("updates", stats.updates)
                superstep_span.set_attribute("next_workset_size", stats.workset_size)
                superstep_span.set_attribute("failed", stats.failed)
            series.append(stats)
            if telemetry is not None:
                telemetry.on_superstep(stats)
            runtime.events.record(
                EventKind.SUPERSTEP_FINISHED, time=runtime.clock.now, superstep=superstep
            )
            if snapshots is not None:
                snapshots.add(
                    superstep, SnapshotPhase.AFTER_SUPERSTEP, backend.records_view()
                )

            workset = next_workset
            if not stats.failed and spec.termination.should_stop(stats):
                converged = True
                runtime.events.record(
                    EventKind.CONVERGED, time=runtime.clock.now, superstep=superstep
                )
                break
        run_span.set_attribute("supersteps", supersteps_run)
        run_span.set_attribute("converged", converged)

    if not converged and config.strict_iterations:
        raise TerminationError(
            f"delta iteration {spec.name!r} did not converge within "
            f"{spec.max_supersteps} supersteps"
        )
    if snapshots is not None and converged:
        snapshots.add(supersteps_run - 1, SnapshotPhase.CONVERGED, backend.records_view())
    runtime.events.record(
        EventKind.TERMINATED,
        time=runtime.clock.now,
        superstep=supersteps_run - 1,
        converged=converged,
    )
    return IterationResult(
        job_name=spec.name,
        final_records=backend.records_view(),
        converged=converged,
        supersteps=supersteps_run,
        stats=series,
        events=runtime.events,
        clock=runtime.clock,
        metrics=runtime.metrics,
        cluster=runtime.cluster,
        snapshots=snapshots,
    )
