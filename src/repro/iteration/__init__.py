"""Iterative execution on top of the dataflow engine.

Flink offers two iteration modes (§2.1 of the paper), both reproduced
here:

* **bulk iterations** (:mod:`repro.iteration.bulk`) recompute the whole
  intermediate state every superstep — PageRank's mode;
* **delta iterations** (:mod:`repro.iteration.delta`) keep a *solution
  set* and a *workset* of pending updates, terminating when the workset
  runs empty — Connected Components' mode.

Both drivers execute a user-supplied *step plan* once per superstep,
inject scheduled failures at the end of a superstep's compute phase,
delegate to a pluggable recovery strategy (:mod:`repro.core`), collect the
per-superstep statistics the demo GUI plots, and can snapshot state for
the demo's backward/replay buttons.
"""

from .bulk import BulkIterationSpec, run_bulk_iteration
from .delta import DeltaIterationSpec, run_delta_iteration
from .result import IterationResult
from .snapshots import SnapshotPhase, SnapshotStore, StateSnapshot
from .termination import (
    EmptyWorkset,
    EpsilonL1,
    FixedSupersteps,
    NoUpdates,
    TerminationCriterion,
)

__all__ = [
    "BulkIterationSpec",
    "DeltaIterationSpec",
    "EmptyWorkset",
    "EpsilonL1",
    "FixedSupersteps",
    "IterationResult",
    "NoUpdates",
    "SnapshotPhase",
    "SnapshotStore",
    "StateSnapshot",
    "TerminationCriterion",
    "run_bulk_iteration",
    "run_delta_iteration",
]
