"""State snapshots for the demo's replay controls.

The demo GUI lets attendees step backward through iterations and shows
four canonical states of a run (Figures 3 and 5 of the paper): the initial
state, the state right before a failure, the state right after the
compensation function ran, and the converged state. The drivers record a
:class:`StateSnapshot` for every superstep (plus the special phases) into
a :class:`SnapshotStore` when one is supplied.

Snapshots hold full copies of the state records; they are intended for
demo-scale inputs, so stores can be bounded with ``max_snapshots``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator


class SnapshotPhase(enum.Enum):
    """Which moment of the run a snapshot captures."""

    INITIAL = "initial"
    AFTER_SUPERSTEP = "after_superstep"
    BEFORE_FAILURE = "before_failure"
    AFTER_COMPENSATION = "after_compensation"
    AFTER_ROLLBACK = "after_rollback"
    AFTER_RESTART = "after_restart"
    AFTER_CONFINED = "after_confined"
    CONVERGED = "converged"


@dataclass(frozen=True)
class StateSnapshot:
    """An immutable copy of the iterative state at one moment.

    Attributes:
        superstep: 0-based superstep index (``-1`` for the initial state).
        phase: the moment captured.
        records: the full state (for delta iterations, the solution set).
        lost_partitions: partitions whose state was destroyed at capture
            time (only non-empty for BEFORE_FAILURE snapshots, where it
            names what the failure is about to take out / has taken out).
    """

    superstep: int
    phase: SnapshotPhase
    records: tuple[Any, ...]
    lost_partitions: tuple[int, ...] = ()

    def as_dict(self) -> dict[Any, Any]:
        """View the records as ``{key: value}`` assuming 2-tuples."""
        return {record[0]: record[1] for record in self.records}


class SnapshotStore:
    """Ordered collection of snapshots with phase lookups."""

    def __init__(self, max_snapshots: int | None = None):
        self._snapshots: list[StateSnapshot] = []
        self.max_snapshots = max_snapshots

    def add(
        self,
        superstep: int,
        phase: SnapshotPhase,
        records: list[Any],
        lost_partitions: list[int] | None = None,
    ) -> StateSnapshot | None:
        """Record a snapshot; drops it silently when the store is full."""
        if self.max_snapshots is not None and len(self._snapshots) >= self.max_snapshots:
            return None
        snapshot = StateSnapshot(
            superstep=superstep,
            phase=phase,
            records=tuple(records),
            lost_partitions=tuple(lost_partitions or ()),
        )
        self._snapshots.append(snapshot)
        return snapshot

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[StateSnapshot]:
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> StateSnapshot:
        return self._snapshots[index]

    def of_phase(self, phase: SnapshotPhase) -> list[StateSnapshot]:
        """All snapshots of one phase, in order."""
        return [snap for snap in self._snapshots if snap.phase is phase]

    def at_superstep(self, superstep: int) -> list[StateSnapshot]:
        """All snapshots captured during one superstep — the backward
        button's lookup."""
        return [snap for snap in self._snapshots if snap.superstep == superstep]

    def latest(self, phase: SnapshotPhase | None = None) -> StateSnapshot | None:
        """The most recent snapshot, optionally of one phase."""
        candidates = self.of_phase(phase) if phase is not None else self._snapshots
        return candidates[-1] if candidates else None
