"""Termination criteria for iterations.

A criterion inspects the :class:`repro.runtime.metrics.IterationStats` of
the superstep that just finished (the drivers fill in ``l1_delta``,
``updates`` and ``workset_size`` before asking) and decides whether the
fixpoint is reached. Criteria are never consulted for a superstep during
which a failure struck: right after a rollback or a compensation the state
is consistent but not meaningful for convergence testing, and a rollback
could otherwise terminate an unconverged run (restored state can be
spuriously close to the pre-failure state).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import IterationError
from ..runtime.metrics import IterationStats


class TerminationCriterion(ABC):
    """Decides when an iteration has converged."""

    #: whether :meth:`should_stop` reads ``stats.updates`` — the bulk
    #: driver consults this to decide if per-superstep update counting
    #: (an O(|state|) dict build) can be skipped.
    uses_updates: bool = False

    @abstractmethod
    def should_stop(self, stats: IterationStats) -> bool:
        """True when the superstep described by ``stats`` reached the
        fixpoint. Drivers call this exactly once per committed superstep."""

    def reset(self) -> None:
        """Clear any internal state (called when an iteration restarts)."""


class FixedSupersteps(TerminationCriterion):
    """Run exactly ``n`` supersteps — Flink's "predefined number of
    iterations" mode (§2.1)."""

    def __init__(self, n: int):
        if n < 1:
            raise IterationError(f"FixedSupersteps needs n >= 1, got {n}")
        self.n = n
        self._completed = 0

    def should_stop(self, stats: IterationStats) -> bool:
        self._completed += 1
        return self._completed >= self.n

    def reset(self) -> None:
        self._completed = 0


class EmptyWorkset(TerminationCriterion):
    """Stop when the next workset is empty — the delta-iteration default
    ("the delta iteration terminates once the working set becomes
    empty", §2.1)."""

    def should_stop(self, stats: IterationStats) -> bool:
        if stats.workset_size is None:
            raise IterationError("EmptyWorkset requires a delta iteration (workset_size unset)")
        return stats.workset_size == 0


class EpsilonL1(TerminationCriterion):
    """Stop when the L1 norm between consecutive states drops below
    ``epsilon`` — the classic PageRank convergence test the demo's second
    plot visualizes."""

    def __init__(self, epsilon: float):
        if epsilon <= 0:
            raise IterationError(f"EpsilonL1 needs epsilon > 0, got {epsilon}")
        self.epsilon = epsilon

    def should_stop(self, stats: IterationStats) -> bool:
        if stats.l1_delta is None:
            raise IterationError(
                "EpsilonL1 requires the iteration spec to define value_fn "
                "so the driver can compute L1 deltas"
            )
        return stats.l1_delta < self.epsilon


class NoUpdates(TerminationCriterion):
    """Stop when a superstep changed nothing (``updates == 0``). A
    cheaper alternative to :class:`EpsilonL1` for discrete-state
    algorithms run as bulk iterations."""

    uses_updates = True

    def should_stop(self, stats: IterationStats) -> bool:
        return stats.updates == 0
