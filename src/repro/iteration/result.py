"""Result object returned by the iteration drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..runtime.clock import SimulatedClock
from ..runtime.cluster import SimulatedCluster
from ..runtime.events import EventKind, EventLog
from ..runtime.metrics import MetricsRegistry, StatsSeries
from .snapshots import SnapshotStore


@dataclass
class IterationResult:
    """Everything a run produced.

    Attributes:
        job_name: the iteration's name.
        final_records: the final state (solution set for delta
            iterations) as a flat record list.
        converged: True when the termination criterion fired within the
            superstep budget; False when the budget ran out first.
        supersteps: number of supersteps executed (including supersteps
            re-executed after rollbacks or restarts).
        stats: per-superstep statistics — the demo GUI's plot series.
        events: the structured event log of the run.
        clock: the simulated clock (total time, per-category breakdown).
        metrics: the raw counter registry.
        cluster: the cluster in its end-of-run condition.
        snapshots: state snapshots, when a store was supplied.
    """

    job_name: str
    final_records: list[Any]
    converged: bool
    supersteps: int
    stats: StatsSeries
    events: EventLog
    clock: SimulatedClock
    metrics: MetricsRegistry
    cluster: SimulatedCluster
    snapshots: SnapshotStore | None = None

    @property
    def final_dict(self) -> dict[Any, Any]:
        """The final state as ``{key: value}`` (assumes 2-tuple records)."""
        return {record[0]: record[1] for record in self.final_records}

    @property
    def sim_time(self) -> float:
        """Total simulated seconds of the run."""
        return self.clock.now

    def cost_breakdown(self) -> dict[str, float]:
        """Simulated seconds per cost category."""
        return self.clock.breakdown()

    @property
    def num_failures(self) -> int:
        """How many failure events struck during the run."""
        return len(self.events.of_kind(EventKind.FAILURE))

    def summary(self) -> str:
        """One-line human-readable run summary."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{self.job_name}: {status} after {self.supersteps} supersteps, "
            f"{self.num_failures} failures, sim_time={self.sim_time:.4f}s"
        )
