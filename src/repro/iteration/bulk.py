"""Bulk iterations.

A bulk iteration "always recomputes the intermediate result of an
iteration as a whole" (§2.1): every superstep executes the step plan over
the full current state and replaces it with the plan's output. PageRank is
the paper's bulk workload.

Failure semantics: scheduled failures fire at the end of a superstep's
compute phase, destroying the freshly computed state partitions hosted on
the failed workers. The driver then pauses (charging failure detection),
acquires replacement workers, and delegates state repair to the configured
:class:`repro.core.recovery.RecoveryStrategy`.
"""

from __future__ import annotations

from contextlib import closing, nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..config import DEFAULT_CONFIG, EngineConfig
from ..core.recovery import RecoveryContext, RecoveryStrategy
from ..core.restart import RestartRecovery
from ..core.strategies import resolve_recovery
from ..dataflow.datatypes import KeySpec
from ..dataflow.invariants import analyze_invariants
from ..dataflow.plan import Plan
from ..errors import IterationError, TerminationError
from ..observability.span import SpanKind
from ..observability.telemetry import RunTelemetry
from ..observability.tracer import NOOP_TRACER, Tracer
from ..runtime.cache import SuperstepExecutionCache
from ..runtime.events import EventKind
from ..runtime.executor import PartitionedDataset
from ..runtime.failures import FailureSchedule
from ..runtime.metrics import IterationStats, StatsSeries
from ._runtime import bind_statics, build_runtime, count_converged, pin_initial_inputs
from .result import IterationResult
from .snapshots import SnapshotPhase, SnapshotStore
from .termination import TerminationCriterion


@dataclass
class BulkIterationSpec:
    """Description of a bulk-iterative job.

    Attributes:
        name: job name (used in storage keys and reports).
        step_plan: the dataflow executed once per superstep. It must have
            a source named ``state_source`` (bound to the current state)
            and may have further sources for loop-invariant inputs.
        state_source: name of the plan source carrying the current state.
        next_state_output: name of the operator whose output becomes the
            next state. State records are ``(key, value)`` tuples.
        state_key: key spec the state is partitioned by across supersteps.
        termination: convergence test, consulted after every failure-free
            superstep.
        max_supersteps: hard budget; exceeding it either raises (strict
            config) or returns an unconverged result.
        message_counter: metrics counter whose per-superstep increase is
            reported as "messages" (e.g. ``records_in.recompute-ranks``).
        value_fn: extracts a float from a state record; enables L1-delta
            computation between consecutive states (PageRank's
            convergence plot).
        truth: precomputed correct final values keyed by state key, for
            the converged-count plot; optional.
        truth_tolerance: tolerance for float truth comparison.
    """

    name: str
    step_plan: Plan
    state_source: str
    next_state_output: str
    state_key: KeySpec
    termination: TerminationCriterion
    max_supersteps: int = 100
    message_counter: str | None = None
    value_fn: Callable[[Any], float] | None = None
    truth: dict[Any, Any] | None = None
    truth_tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.max_supersteps < 1:
            raise IterationError(f"max_supersteps must be >= 1, got {self.max_supersteps}")
        source_names = {op.name for op in self.step_plan.sources()}
        if self.state_source not in source_names:
            raise IterationError(
                f"step plan has no source named {self.state_source!r} "
                f"(sources: {sorted(source_names)})"
            )
        self.step_plan.operator_by_name(self.next_state_output)


def _values(records: Iterable[Any]) -> dict[Any, Any]:
    return {record[0]: record[1] for record in records}


def _l1_delta(
    old: list[Any], new: list[Any], value_fn: Callable[[Any], float]
) -> float:
    old_values = {record[0]: value_fn(record) for record in old}
    new_values = {record[0]: value_fn(record) for record in new}
    keys = old_values.keys() | new_values.keys()
    return sum(abs(new_values.get(k, 0.0) - old_values.get(k, 0.0)) for k in keys)


def _count_updates(old: list[Any], new: list[Any]) -> int:
    old_values = _values(old)
    changed = 0
    for record in new:
        if old_values.get(record[0]) != record[1]:
            changed += 1
    return changed


def run_bulk_iteration(
    spec: BulkIterationSpec,
    initial_records: Iterable[Any],
    statics: dict[str, Iterable[Any]] | None = None,
    *,
    config: EngineConfig = DEFAULT_CONFIG,
    recovery: RecoveryStrategy | None = None,
    failures: FailureSchedule | None = None,
    snapshots: SnapshotStore | None = None,
    tracer: Tracer | None = None,
    telemetry: RunTelemetry | None = None,
) -> IterationResult:
    """Run a bulk iteration to convergence (or budget exhaustion).

    Args:
        spec: the job description.
        initial_records: the initial state as ``(key, value)`` records.
        statics: loop-invariant inputs, ``{plan source name: records}``.
        config: engine configuration (parallelism, spares, cost model).
        recovery: fault-tolerance strategy; ``None`` builds the strategy
            named by ``config.recovery``, and when that is also unset
            defaults to :class:`repro.core.restart.RestartRecovery` (no
            fault tolerance — restart is all an unprotected system can
            do).
        failures: the failure schedule to inject (default: none).
        snapshots: optional store capturing per-superstep state copies.
        tracer: optional span tracer (default: the no-op tracer). A
            :class:`repro.observability.tracer.RecordingTracer` captures
            the run → superstep → operator → partition span tree.
        telemetry: optional live-telemetry bundle
            (:class:`repro.observability.telemetry.RunTelemetry`). Purely
            observational — the run's records, simulated time and
            superstep count are bit-identical with or without it.

    Returns:
        An :class:`repro.iteration.result.IterationResult`.
    """
    if recovery is None:
        recovery = resolve_recovery(config)
    recovery = recovery if recovery is not None else RestartRecovery()
    tracer = tracer if tracer is not None else NOOP_TRACER
    runtime = build_runtime(config, failures, tracer=tracer)
    if telemetry is not None:
        telemetry.bind_runtime(
            runtime.metrics, runtime.clock, runtime.events, job=spec.name
        )
        telemetry.set_target(getattr(spec.termination, "epsilon", None))
    parallelism = config.parallelism
    bound_statics = bind_statics(
        spec.step_plan,
        dict(statics or {}),
        {spec.state_source},
        parallelism,
        executor=runtime.executor,
    )
    initial_state = PartitionedDataset.from_records(
        initial_records, parallelism, key=spec.state_key
    )
    if initial_state.num_records() == 0:
        raise IterationError(f"bulk iteration {spec.name!r} started with empty state")
    cache: SuperstepExecutionCache | None = None
    if config.execution_cache != "off":
        cache = SuperstepExecutionCache(
            analyze_invariants(spec.step_plan, {spec.state_source}),
            mode=config.execution_cache,
            metrics=runtime.metrics,
        )
    ctx = RecoveryContext(
        job_name=spec.name,
        cluster=runtime.cluster,
        executor=runtime.executor,
        storage=runtime.storage,
        state_key=spec.state_key,
        statics=bound_statics,
        initial_state=initial_state,
        execution_cache=cache,
    )
    pin_initial_inputs(runtime, ctx, initial_state, None)
    recovery.reset()
    recovery.on_start(ctx)
    spec.termination.reset()

    series = StatsSeries()
    state = runtime.executor.pack_dataset(initial_state.copy())
    if snapshots is not None:
        snapshots.add(-1, SnapshotPhase.INITIAL, state.all_records())
    converged = False
    supersteps_run = 0
    track_l1 = spec.value_fn is not None
    # Update counting is an O(|state|) dict-building pass; run it only
    # when something consumes ``stats.updates``: L1 tracking, snapshot
    # capture, truth comparison, or a termination criterion that reads it.
    track_updates = (
        track_l1
        or snapshots is not None
        or spec.truth is not None
        or spec.termination.uses_updates
    )

    # closing() releases worker-resident side values even when the run
    # raises (the shared thread/process pools themselves stay up); the
    # telemetry bundle unhooks from the collector and event log likewise.
    with closing(runtime), (
        closing(telemetry) if telemetry is not None else nullcontext()
    ), tracer.span(
        f"run:{spec.name}",
        kind=SpanKind.RUN,
        job=spec.name,
        mode="bulk",
        strategy=recovery.name,
        parallelism=parallelism,
        parallel_backend=runtime.executor.backend.name,
        parallel_workers=runtime.executor.backend.workers,
    ) as run_span:
        for superstep in range(spec.max_supersteps):
            supersteps_run = superstep + 1
            stats = IterationStats(superstep, sim_time_start=runtime.clock.now)
            runtime.events.record(
                EventKind.SUPERSTEP_STARTED, time=runtime.clock.now, superstep=superstep
            )
            metrics_before = runtime.metrics.snapshot()
            previous_records = state.all_records() if track_updates else None

            with tracer.span(
                f"superstep:{superstep}", kind=SpanKind.SUPERSTEP, superstep=superstep
            ) as superstep_span:
                outputs = runtime.executor.execute(
                    spec.step_plan,
                    {spec.state_source: state, **bound_statics},
                    outputs=[spec.next_state_output],
                    cache=cache,
                )
                next_state = runtime.executor.repartition(
                    outputs[spec.next_state_output],
                    spec.state_key,
                    context=f"{spec.name}.state",
                )
                if spec.message_counter is not None:
                    stats.messages = runtime.metrics.diff(metrics_before).get(
                        spec.message_counter, 0
                    )
                # One materialization pass per superstep, shared by update
                # counting, L1 tracking, truth comparison and snapshots.
                computed_records = next_state.all_records() if track_updates else None
                if track_updates:
                    stats.updates = _count_updates(previous_records, computed_records)
                if track_l1:
                    stats.l1_delta = _l1_delta(
                        previous_records, computed_records, spec.value_fn
                    )

                due = runtime.injector.pop(superstep)
                if due:
                    if snapshots is not None:
                        snapshots.add(
                            superstep, SnapshotPhase.BEFORE_FAILURE, computed_records
                        )
                    with tracer.span(
                        "recovery", kind=SpanKind.RECOVERY, superstep=superstep
                    ) as recovery_span:
                        lost: list[int] = []
                        for event in due:
                            lost.extend(
                                runtime.cluster.fail_workers(
                                    list(event.worker_ids), superstep
                                )
                            )
                        runtime.clock.charge_failure_detection()
                        stats.failed = True
                        if lost:
                            if recovery.needs_preloss_capture:
                                # Confined recovery's replay oracle: the
                                # partition contents the failure is about
                                # to destroy (what a deterministic replay
                                # would recompute).
                                recovery.capture_preloss(
                                    superstep, next_state, None, lost
                                )
                            next_state.lose(lost)
                            runtime.cluster.reassign_lost(superstep)
                            if cache is not None:
                                # Cached partitions lived on the failed
                                # workers; recovery must recompute them.
                                cache.invalidate(lost)
                            # Worker-resident copies of the invalidated
                            # build sides are stale too.
                            runtime.executor.release_residents()
                            outcome = recovery.recover(ctx, superstep, next_state, None, lost)
                            next_state = runtime.executor.repartition(
                                outcome.state,
                                spec.state_key,
                                context=f"{spec.name}.recovered",
                            )
                            stats.compensated = outcome.compensated
                            stats.rolled_back = outcome.rolled_back_to is not None
                            stats.restarted = outcome.restarted
                            stats.confined = outcome.healed_partitions is not None
                            if outcome.restarted:
                                spec.termination.reset()
                            recovery_span.set_attribute("lost_partitions", sorted(lost))
                            recovery_span.set_attribute(
                                "outcome",
                                "replay"
                                if stats.confined
                                else "compensation"
                                if outcome.compensated
                                else "rollback"
                                if stats.rolled_back
                                else "restart",
                            )
                            if snapshots is not None:
                                phase = (
                                    SnapshotPhase.AFTER_CONFINED
                                    if stats.confined
                                    else SnapshotPhase.AFTER_COMPENSATION
                                    if outcome.compensated
                                    else SnapshotPhase.AFTER_ROLLBACK
                                    if stats.rolled_back
                                    else SnapshotPhase.AFTER_RESTART
                                )
                                snapshots.add(superstep, phase, next_state.all_records())
                else:
                    with tracer.span(
                        "commit", kind=SpanKind.CHECKPOINT, superstep=superstep
                    ):
                        recovery.on_superstep_committed(ctx, superstep, next_state, None)

                if stats.failed and track_updates:
                    # Recovery replaced the state computed above.
                    computed_records = next_state.all_records()
                if spec.truth is not None:
                    stats.converged = count_converged(
                        computed_records, spec.truth, spec.truth_tolerance, job=spec.name
                    )
                else:
                    stats.converged = 0
                stats.sim_time_end = runtime.clock.now
                superstep_span.set_attribute("messages", stats.messages)
                superstep_span.set_attribute("updates", stats.updates)
                superstep_span.set_attribute("failed", stats.failed)
            series.append(stats)
            if telemetry is not None:
                telemetry.on_superstep(stats)
            runtime.events.record(
                EventKind.SUPERSTEP_FINISHED, time=runtime.clock.now, superstep=superstep
            )
            if snapshots is not None:
                snapshots.add(superstep, SnapshotPhase.AFTER_SUPERSTEP, computed_records)

            state = next_state
            if not stats.failed and spec.termination.should_stop(stats):
                converged = True
                runtime.events.record(
                    EventKind.CONVERGED, time=runtime.clock.now, superstep=superstep
                )
                break
        run_span.set_attribute("supersteps", supersteps_run)
        run_span.set_attribute("converged", converged)

    if not converged and config.strict_iterations:
        raise TerminationError(
            f"bulk iteration {spec.name!r} did not converge within "
            f"{spec.max_supersteps} supersteps"
        )
    if snapshots is not None and converged:
        snapshots.add(supersteps_run - 1, SnapshotPhase.CONVERGED, state.all_records())
    runtime.events.record(
        EventKind.TERMINATED,
        time=runtime.clock.now,
        superstep=supersteps_run - 1,
        converged=converged,
    )
    return IterationResult(
        job_name=spec.name,
        final_records=state.all_records(),
        converged=converged,
        supersteps=supersteps_run,
        stats=series,
        events=runtime.events,
        clock=runtime.clock,
        metrics=runtime.metrics,
        cluster=runtime.cluster,
        snapshots=snapshots,
    )
