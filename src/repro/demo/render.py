"""ASCII renderings of the demo's visualizations.

The GUI encodes intermediate state visually: Connected Components draws a
distinct color around each intermediate component ("areas of the same
color grow as the algorithm discovers larger and larger parts", §3.2) and
highlights vertices lost to a failure; PageRank scales each vertex's size
with its current rank ("the higher the rank, the larger the vertex",
§3.3). Headless, colors become component groupings and sizes become bar
lengths — the same information, terminal-friendly.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..iteration.snapshots import StateSnapshot


def render_components(
    labels: Mapping[int, int],
    highlight: Iterable[int] = (),
    max_components: int = 20,
) -> str:
    """Render a labeling as one line per intermediate component.

    ``highlight`` marks vertices (e.g. those lost to a failure) with a
    ``*`` — the GUI's red highlighting. The number of lines equals the
    number of distinct labels, so watching successive renderings shows
    the color count shrinking exactly as in the GUI.
    """
    groups: dict[int, list[int]] = {}
    for vertex, label in labels.items():
        groups.setdefault(label, []).append(vertex)
    marked = set(highlight)
    lines = [f"{len(groups)} component(s)"]
    for index, label in enumerate(sorted(groups)):
        if index >= max_components:
            lines.append(f"... and {len(groups) - max_components} more")
            break
        members = ", ".join(
            f"{v}*" if v in marked else str(v) for v in sorted(groups[label])
        )
        lines.append(f"  component[label={label}]: {{{members}}}")
    return "\n".join(lines)


def render_ranks(
    ranks: Mapping[int, float],
    highlight: Iterable[int] = (),
    width: int = 40,
    max_vertices: int = 30,
) -> str:
    """Render ranks as per-vertex bars (bar length ∝ rank).

    Vertices are listed by descending rank; ``highlight`` marks failed
    vertices with ``*``.
    """
    if not ranks:
        return "(empty rank vector)"
    marked = set(highlight)
    top = max(ranks.values())
    lines = []
    ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], kv[0]))
    for index, (vertex, rank) in enumerate(ordered):
        if index >= max_vertices:
            lines.append(f"... and {len(ordered) - max_vertices} more")
            break
        bar_length = int(round(width * rank / top)) if top > 0 else 0
        marker = "*" if vertex in marked else " "
        lines.append(f"  v{vertex:<6}{marker} {'#' * bar_length} {rank:.6f}")
    return "\n".join(lines)


def render_snapshot(snapshot: StateSnapshot, kind: str = "components") -> str:
    """Render one state snapshot, highlighting lost partitions' vertices.

    ``kind`` is ``"components"`` (labels) or ``"ranks"``. Lost vertices
    cannot be derived from the snapshot itself (their records are exactly
    the ones destroyed), so the highlight set is empty unless the
    snapshot carries ``lost_partitions`` metadata — callers that know the
    vertex placement can render richer views with
    :func:`render_components` / :func:`render_ranks` directly.
    """
    header = f"[superstep {snapshot.superstep}, {snapshot.phase.value}]"
    state = snapshot.as_dict()
    if kind == "ranks":
        body = render_ranks(state)
    else:
        body = render_components(state)
    return f"{header}\n{body}"
