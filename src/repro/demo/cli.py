"""Command-line interface to the demo.

``python -m repro.demo`` is the headless equivalent of the SIGMOD demo
booth: pick the algorithm tab, pick the graph, schedule failures, press
play, and look at the state renderings and statistics plots::

    python -m repro.demo --algorithm connected-components --graph small \
        --fail 2:0 --strategy optimistic --states --plots

    python -m repro.demo --algorithm pagerank --fail 3:1 --strategy confined

    python -m repro.demo --algorithm pagerank --graph twitter --size 500 \
        --fail 4:1 --fail 9:0,2 --plots

Passing ``--trace-out trace.jsonl`` records the run's span tree (run →
superstep → operator → partition) and writes it as JSONL; the companion
``profile`` subcommand reads such a trace back and prints where the
simulated time went::

    python -m repro.demo --algorithm pagerank --fail 3:0 \
        --recovery optimistic --trace-out trace.jsonl
    python -m repro.demo profile trace.jsonl

The ``serve`` subcommand runs a seeded multi-job workload through the
:mod:`repro.service` job service — many concurrent runs, injected
failures, retries, backpressure — and prints the service report::

    python -m repro.demo serve --jobs 50 --pool 4 --per-job

With telemetry, ``serve`` doubles as a live dashboard: it prints
``repro status`` frames while the workload runs and can export the final
metrics as a Prometheus scrape plus a telemetry JSONL event stream::

    python -m repro.demo serve --jobs 50 --status-interval 1 \
        --prom-out scrape.prom --telemetry-out telemetry.jsonl

The ``views`` subcommand maintains materialized views over a mutating
graph (:mod:`repro.views`): seeded mutation epochs are committed and the
refresh orchestrator keeps a small view DAG fresh, warm-starting each
refresh from the previous solution when the mutation batch allows it::

    python -m repro.demo views --epochs 3 --mutations 4
    python -m repro.demo views --epochs 5 --removal-fraction 0 --service
    python -m repro.demo views --epochs 3 --fail 2:0 --strategy optimistic
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..analysis import Series, format_figure
from ..config import PARALLEL_BACKENDS
from ..errors import ConfigError, ReproError
from ..iteration.snapshots import SnapshotPhase
from ..observability.export import trace_to_jsonl
from ..observability.profile import format_profile, profile_trace
from ..observability.tracer import RecordingTracer
from .controller import ALGORITHMS, GRAPHS, RECOVERIES, DemoRun, DemoSession
from .render import render_components, render_ranks

#: the usage hint shown for malformed --fail specs.
FAILURE_USAGE = (
    "failure specs are SUPERSTEP:P1[,P2,...] with numeric superstep and "
    "partition ids, e.g. --fail 2:0 or --fail 4:1,3"
)

#: the usage hint shown for unknown --strategy names.
STRATEGY_USAGE = (
    "valid strategies are " + ", ".join(RECOVERIES) + "; "
    "e.g. --strategy confined or --strategy adaptive"
)


def _check_strategy(name: str) -> None:
    """Reject unknown recovery strategy names with a usage error.

    Mirrors the ``--fail`` convention: a :class:`repro.errors.ConfigError`
    carrying a usage hint, which the CLI turns into exit code 2.
    """
    if name not in RECOVERIES:
        raise ConfigError(
            f"unknown recovery strategy {name!r}\nhint: {STRATEGY_USAGE}"
        )


def _parse_failure(text: str) -> tuple[int, list[int]]:
    """Parse ``SUPERSTEP:P1,P2,...`` into ``(superstep, partitions)``.

    Malformed specs — a missing worker list (``--fail 3``), non-numeric
    ids (``--fail 3:a``), an empty list (``--fail 3:``) — raise
    :class:`repro.errors.ConfigError` carrying a usage hint; the CLI
    turns that into exit code 2.
    """
    try:
        superstep_text, partitions_text = text.split(":", 1)
        superstep = int(superstep_text)
        partitions = [int(p) for p in partitions_text.split(",") if p]
    except ValueError as exc:
        raise ConfigError(
            f"malformed failure spec {text!r}: {exc}\nhint: {FAILURE_USAGE}"
        ) from exc
    if not partitions:
        raise ConfigError(
            f"failure spec {text!r} names no partitions\nhint: {FAILURE_USAGE}"
        )
    return superstep, partitions


def add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--parallel-backend`` / ``--parallel-workers``
    options (run, serve and profile all take them)."""
    parser.add_argument(
        "--parallel-backend",
        choices=PARALLEL_BACKENDS,
        default=None,
        help="intra-job execution backend; results are identical across "
        "backends, only wall-clock time changes (default: REPRO_PARALLEL_BACKEND "
        "or serial)",
    )
    parser.add_argument(
        "--parallel-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for a parallel backend (default: derived from "
        "the machine's core count)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        default=None,
        help="pack partition payloads into typed columnar blocks "
        "(vectorized kernels, shared-memory process IPC); records and "
        "simulated costs are identical, only wall-clock time changes "
        "(default: REPRO_COLUMNAR or off)",
    )


def _check_parallel_workers(workers: int | None) -> None:
    """Reject non-positive ``--parallel-workers`` with a usage error."""
    if workers is not None and workers < 1:
        raise ConfigError(f"parallel_workers must be >= 1, got {workers}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo",
        description="Headless demo of optimistic recovery for iterative dataflows",
    )
    parser.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="connected-components",
        help="which algorithm tab to open (default: connected-components)",
    )
    parser.add_argument(
        "--graph",
        choices=GRAPHS,
        default="small",
        help="small hand-crafted graph or the synthetic Twitter-like one",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=500,
        help="vertex count of the Twitter-like graph (default: 500)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="number of workers / state partitions (default: 4)",
    )
    parser.add_argument(
        "--fail",
        dest="failures",
        action="append",
        default=[],
        metavar="SUPERSTEP:PARTITIONS",
        help="fail partitions at a superstep, e.g. --fail 2:0 --fail 5:1,3",
    )
    parser.add_argument(
        "--strategy",
        "--recovery",
        dest="strategy",
        default="optimistic",
        metavar="NAME",
        help="recovery strategy: " + ", ".join(RECOVERIES) + " "
        "(default: optimistic; confined replays only the lost partitions, "
        "adaptive picks a strategy from the job's failure profile)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=2,
        help="interval for --recovery checkpoint (default: 2)",
    )
    parser.add_argument(
        "--states",
        action="store_true",
        help="render the initial / before-failure / after-compensation / converged states",
    )
    parser.add_argument(
        "--plots",
        action="store_true",
        help="print the demo's statistics plots",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full run report (costs, statistics, event timeline)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="generator seed (default: 7)"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record the run's span tree and write it as JSONL to PATH",
    )
    add_parallel_arguments(parser)
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo profile",
        description="Attribute a recorded trace's simulated time to "
        "recovery-cost categories (compute, shuffle, checkpoint, rollback, "
        "compensation, restart, plus confined recovery's log and replay)",
    )
    parser.add_argument("trace", help="JSONL trace written with --trace-out")
    add_parallel_arguments(parser)
    return parser


def profile_main(argv: Sequence[str]) -> int:
    """``profile`` subcommand: read a trace, print the cost breakdown.

    The parallel options are accepted for symmetry with run/serve and
    validated the same way; the analysis itself reads a recorded trace,
    whose backend is already fixed (it appears as run-span attributes).
    """
    args = build_profile_parser().parse_args(argv)
    try:
        _check_parallel_workers(args.parallel_workers)
    except ConfigError as error:
        print(f"error: {error}")
        return 2
    try:
        report = format_profile(profile_trace(args.trace), title=args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        return 1
    print(report)
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo serve",
        description="Run a seeded multi-job workload through the job "
        "service and print the service report",
    )
    parser.add_argument(
        "--jobs", type=int, default=50, help="workload size (default: 50)"
    )
    parser.add_argument(
        "--pool", type=int, default=4, help="concurrent jobs (default: 4)"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="admission queue bound (default: unbounded)",
    )
    parser.add_argument(
        "--backpressure",
        choices=("reject", "block"),
        default="block",
        help="policy when the queue is full (default: block)",
    )
    parser.add_argument(
        "--cc-fraction",
        type=float,
        default=0.5,
        help="fraction of Connected Components jobs (default: 0.5)",
    )
    parser.add_argument(
        "--failure-density",
        type=float,
        default=0.4,
        help="probability a job gets injected partition failures (default: 0.4)",
    )
    parser.add_argument(
        "--view-fraction",
        type=float,
        default=0.0,
        help="fraction of jobs that are warm view refreshes over seeded "
        "mutated graphs (default: 0)",
    )
    parser.add_argument(
        "--strategy",
        default="optimistic",
        metavar="NAME",
        help="recovery strategy stamped onto every generated job: "
        + ", ".join(RECOVERIES)
        + " (default: optimistic)",
    )
    parser.add_argument(
        "--per-job",
        action="store_true",
        help="also print one line per terminal job",
    )
    parser.add_argument(
        "--core-budget",
        type=int,
        default=None,
        metavar="CORES",
        help="cores shared between the pool's job slots; each job's "
        "parallel workers are clamped to budget // pool (default: all cores)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable the live telemetry layer (collector, convergence "
        "monitors, event log); also on when REPRO_TELEMETRY=on",
    )
    parser.add_argument(
        "--status-interval",
        type=float,
        default=None,
        metavar="SECS",
        help="print a live `repro status` frame every SECS seconds while "
        "the workload runs (implies --telemetry)",
    )
    parser.add_argument(
        "--prom-out",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-format scrape of the final metrics "
        "to PATH",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="stream telemetry events to PATH as JSONL while the service "
        "runs (implies --telemetry)",
    )
    parser.add_argument(
        "--tenants",
        metavar="SPEC",
        default=None,
        help="tenant weights as 'a=4,b=2,c=1': enables tenant-fair "
        "scheduling (deficit round-robin, load shedding) and assigns "
        "generated jobs to the named tenants round-robin",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant cap on live queued jobs (default: none)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run the workload through N scheduler shard processes "
        "coordinated over a spool directory (default: 0 = in-process)",
    )
    parser.add_argument(
        "--http",
        action="store_true",
        help="serve the HTTP front door instead of running a generated "
        "workload; submit jobs via POST /api/v1/jobs, stop via "
        "POST /api/v1/shutdown",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="front-door bind address (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="front-door port, 0 picks a free one (default: 8080)",
    )
    add_parallel_arguments(parser)
    return parser


def _parse_tenants(text: str) -> tuple[tuple[str, int], ...]:
    """Parse ``a=4,b=2,c=1`` into ``((tenant, weight), ...)`` pairs."""
    weights = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, weight_text = item.partition("=")
        if not name:
            raise ConfigError(f"tenant spec {item!r} needs a name")
        if not weight_text:
            weight = 1
        else:
            try:
                weight = int(weight_text)
            except ValueError:
                raise ConfigError(
                    f"tenant weight in {item!r} must be an integer"
                ) from None
        weights.append((name, weight))
    if not weights:
        raise ConfigError("--tenants must name at least one tenant")
    return tuple(weights)


def _watch_service(service, handles, interval: float) -> None:
    """Print live ``repro status`` frames until every handle is terminal."""
    from ..observability.health import render_status

    while True:
        done = all(h.is_terminal for h in handles)
        print(render_status(service.health()))
        print()
        if done:
            return
        remaining = [h for h in handles if not h.is_terminal]
        remaining[0].wait(interval)


def _serve_http(args, service_config) -> int:
    """``serve --http``: block serving the front door until shut down."""
    from ..config import ShardConfig
    from ..service import (
        JobService,
        LocalBackend,
        ShardBackend,
        ShardedJobService,
        make_http_server,
    )

    try:
        if args.shards > 0:
            backend = ShardBackend(
                ShardedJobService(service_config, ShardConfig(num_shards=args.shards))
            )
        else:
            backend = LocalBackend(JobService(service_config))
        server = make_http_server(backend, args.host, args.port)
    except (ReproError, OSError) as error:
        print(f"error: {error}")
        return 1
    host, port = server.server_address[:2]
    mode = f"{args.shards} shards" if args.shards > 0 else "in-process"
    print(
        f"front door listening on http://{host}:{port} ({mode}); "
        f"POST /api/v1/shutdown to stop",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        backend.shutdown()
    print("front door stopped")
    return 0


def _serve_sharded(args, service_config, tenant_names: tuple[str, ...]) -> int:
    """``serve --shards N``: descriptor workload through shard processes."""
    import time as _time

    from ..config import ShardConfig
    from ..service import ShardedJobService, generate_descriptor_workload

    descriptors = generate_descriptor_workload(
        num_jobs=args.jobs,
        seed=args.seed,
        tenants=tenant_names,
        cc_fraction=args.cc_fraction,
        failure_density=args.failure_density,
        recovery=args.strategy,
    )
    try:
        with ShardedJobService(
            service_config, ShardConfig(num_shards=args.shards)
        ) as service:
            started = _time.monotonic()
            job_ids = service.submit_all(descriptors)
            records = service.wait_all()
            wall = _time.monotonic() - started
    except ReproError as error:
        print(f"error: {error}")
        return 1
    states: dict[str, int] = {}
    for record in records.values():
        states[record["state"]] = states.get(record["state"], 0) + 1
    if args.per_job:
        for job_id in job_ids:
            record = records[job_id]
            print(
                f"job {job_id} {record['name']:<24} {record['state']:<10} "
                f"attempts={record['attempts']}"
            )
        print()
    print(f"=== serve: {args.jobs} jobs, {args.shards} shards ===")
    print("terminal: " + " ".join(f"{s}={c}" for s, c in sorted(states.items())))
    print(
        f"throughput: {len(records)} jobs in {wall:.3f}s "
        f"({len(records) / wall:.1f} jobs/s)" if wall > 0 else "throughput: -"
    )
    return 0


def serve_main(argv: Sequence[str]) -> int:
    """``serve`` subcommand: load-gen workload through the job service."""
    from ..config import FairnessConfig, ServiceConfig, TelemetryConfig
    from ..service import JobService, WorkloadConfig, generate_workload

    args = build_serve_parser().parse_args(argv)
    try:
        _check_parallel_workers(args.parallel_workers)
        _check_strategy(args.strategy)
        if args.status_interval is not None and args.status_interval <= 0:
            raise ConfigError(
                f"status-interval must be > 0, got {args.status_interval}"
            )
        if args.shards < 0:
            raise ConfigError(f"--shards must be >= 0, got {args.shards}")
        tenant_weights: tuple[tuple[str, int], ...] = ()
        tenant_names: tuple[str, ...] = ()
        if args.tenants is not None:
            tenant_weights = _parse_tenants(args.tenants)
            tenant_names = tuple(name for name, _ in tenant_weights)
        fairness = FairnessConfig(
            enabled=bool(tenant_weights) or args.tenant_quota is not None,
            weights=tenant_weights,
            tenant_quota=args.tenant_quota,
        )
        workload = generate_workload(
            WorkloadConfig(
                num_jobs=args.jobs,
                seed=args.seed,
                cc_fraction=args.cc_fraction,
                failure_density=args.failure_density,
                view_refresh_fraction=args.view_fraction,
                recovery=args.strategy,
                parallel_backend=args.parallel_backend,
                parallel_workers=args.parallel_workers,
                columnar=args.columnar,
                tenants=tenant_names,
            )
        )
        telemetry_config = TelemetryConfig(jsonl_path=args.telemetry_out)
        if (
            args.telemetry
            or args.status_interval is not None
            or args.telemetry_out is not None
        ):
            telemetry_config = TelemetryConfig(
                enabled=True, jsonl_path=args.telemetry_out
            )
        service_config = ServiceConfig(
            pool_size=args.pool,
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
            core_budget=args.core_budget,
            default_recovery=args.strategy,
            telemetry=telemetry_config,
            fairness=fairness,
        )
    except ConfigError as error:
        print(f"error: {error}")
        return 2
    if args.http:
        return _serve_http(args, service_config)
    if args.shards > 0:
        return _serve_sharded(args, service_config, tenant_names)
    try:
        with JobService(service_config) as service:
            if args.status_interval is not None:
                handles = [service.submit(spec) for spec in workload]
                _watch_service(service, handles, args.status_interval)
            else:
                handles = service.run_all(workload)
            report = service.report()
            prom_text = None
            if args.prom_out is not None:
                from ..observability.prometheus import (
                    render_collector,
                    render_snapshots,
                )

                if service.collector is not None:
                    prom_text = render_collector(service.collector)
                else:
                    prom_text = render_snapshots(
                        [({"scope": "service"}, service.metrics.snapshot_all())]
                    )
    except ReproError as error:
        print(f"error: {error}")
        return 1
    if prom_text is not None:
        try:
            with open(args.prom_out, "w") as handle:
                handle.write(prom_text)
        except OSError as error:
            print(f"error: cannot write scrape: {error}")
            return 1
        print(f"prometheus scrape written to {args.prom_out}")
    if args.telemetry_out is not None:
        print(f"telemetry events written to {args.telemetry_out}")
    if args.per_job:
        for handle in handles:
            line = (
                f"job {handle.job_id:>3} {handle.spec.name:<24} "
                f"{handle.state.value:<10} attempts={handle.attempts}"
            )
            if handle.retries:
                line += f" retries={handle.retries}"
            print(line)
        print()
    print(report.format(title=f"serve: {args.jobs} jobs, pool={args.pool}"))
    return 0


def build_views_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo views",
        description="Maintain materialized views (CC labels, PageRank "
        "ranks, per-component rank mass) over a mutating graph: seeded "
        "mutation epochs are committed and the refresh orchestrator keeps "
        "the view DAG fresh, warm-starting from the previous solution "
        "when the mutation batch is small enough",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=3,
        help="mutation epochs to commit and refresh (default: 3)",
    )
    parser.add_argument(
        "--components",
        type=int,
        default=4,
        help="components of the starting graph (default: 4)",
    )
    parser.add_argument(
        "--component-size",
        type=int,
        default=15,
        help="vertices per starting component (default: 15)",
    )
    parser.add_argument(
        "--mutations",
        type=int,
        default=4,
        help="mutations per epoch batch (default: 4)",
    )
    parser.add_argument(
        "--removal-fraction",
        type=float,
        default=0.25,
        help="probability a mutation is a removal (default: 0.25; 0 keeps "
        "the batch adds-only, the monotone-safe regime)",
    )
    parser.add_argument(
        "--refresh-mode",
        choices=("auto", "warm", "cold"),
        default="auto",
        help="warm/cold policy (default: auto — warm while the affected-key "
        "fraction stays within the threshold)",
    )
    parser.add_argument(
        "--warm-threshold",
        type=float,
        default=0.5,
        help="affected-key fraction above which auto refreshes go cold "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="partitions of every refresh job (default: 4)",
    )
    parser.add_argument(
        "--strategy",
        "--recovery",
        dest="strategy",
        default="optimistic",
        metavar="NAME",
        help="recovery strategy of refresh jobs: " + ", ".join(RECOVERIES) + " "
        "(default: optimistic)",
    )
    parser.add_argument(
        "--fail",
        dest="failures",
        action="append",
        default=[],
        metavar="SUPERSTEP:PARTITIONS",
        help="inject partition failures into the refreshes of one epoch "
        "(see --fail-epoch), healed in-run by the recovery strategy",
    )
    parser.add_argument(
        "--fail-epoch",
        type=int,
        default=None,
        metavar="N",
        help="epoch whose refreshes receive the --fail injections "
        "(default: every epoch)",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="submit refreshes through a JobService (admission, retries, "
        "telemetry) instead of running them standalone",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="scenario seed (default: 7)"
    )
    add_parallel_arguments(parser)
    return parser


def views_main(argv: Sequence[str]) -> int:
    """``views`` subcommand: the mutating-graph view-maintenance demo."""
    from dataclasses import replace

    from ..config import ServiceConfig, ViewsConfig
    from ..runtime.failures import FailureSchedule
    from ..views import ScenarioConfig, run_scenario

    args = build_views_parser().parse_args(argv)
    try:
        _check_strategy(args.strategy)
        _check_parallel_workers(args.parallel_workers)
        if args.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {args.epochs}")
        if args.fail_epoch is not None and args.fail_epoch < 1:
            raise ConfigError(f"fail-epoch must be >= 1, got {args.fail_epoch}")
        failure_specs = [_parse_failure(text) for text in args.failures]
        config = ScenarioConfig(
            num_components=args.components,
            component_size=args.component_size,
            seed=args.seed,
            mutations_per_epoch=args.mutations,
            removal_fraction=args.removal_fraction,
            parallelism=args.parallelism,
            recovery=args.strategy,
            views=ViewsConfig(
                refresh_mode=args.refresh_mode,
                warm_threshold=args.warm_threshold,
            ),
        )
        engine = config.engine
        if args.parallel_backend is not None or args.parallel_workers is not None:
            engine = engine.with_parallel(
                args.parallel_backend or engine.parallel_backend,
                args.parallel_workers,
            )
        if args.columnar:
            engine = engine.with_columnar()
    except ConfigError as error:
        print(f"error: {error}")
        return 2
    failures = (
        FailureSchedule.at(*[(s, ps) for s, ps in failure_specs])
        if failure_specs
        else None
    )
    scenario_kwargs = dict(
        epochs=args.epochs, failures=failures, fail_epoch=args.fail_epoch
    )
    try:
        # thread the engine overrides through the scenario's per-view config
        config = replace(config, engine_config=engine)
        if args.service:
            from ..service import JobService

            with JobService(ServiceConfig(views=config.views)) as service:
                outcomes = run_scenario(config, service=service, **scenario_kwargs)
        else:
            outcomes = run_scenario(config, **scenario_kwargs)
    except ReproError as error:
        print(f"error: {error}")
        return 1
    _print_view_outcomes(outcomes)
    return 0


def _print_view_outcomes(outcomes) -> None:
    header = (
        f"{'epoch':>5}  {'view':<16} {'mode':<5} {'supersteps':>10} "
        f"{'changed':>8} {'affected':>9} {'failures':>8}"
    )
    print(header)
    print("-" * len(header))
    for outcome in outcomes:
        mutations = ", ".join(
            f"{kind}={count}" for kind, count in sorted(outcome.mutation_counts.items())
        )
        print(f"epoch {outcome.epoch}" + (f": {mutations}" if mutations else ": base graph"))
        for report in outcome.reports:
            affected = (
                f"{report.affected}/{report.total_keys}" if report.total_keys else "-"
            )
            print(
                f"{'':>5}  {report.view:<16} {report.mode:<5} "
                f"{report.supersteps:>10} {report.changed:>8} {affected:>9} "
                f"{report.failures:>8}"
            )
    warm = sum(1 for o in outcomes for r in o.reports if r.mode == "warm")
    cold = sum(1 for o in outcomes for r in o.reports if r.mode == "cold")
    print(f"\n{warm} warm refreshes, {cold} cold refreshes; all views fresh")


def _render_state(run: DemoRun, state: dict, highlight: list[int]) -> str:
    if run.algorithm == "pagerank":
        return render_ranks(state, highlight=highlight, width=30)
    return render_components(state, highlight=highlight)


def _print_states(run: DemoRun) -> None:
    snapshots = run.result.snapshots
    failure_supersteps = run.result.stats.failure_supersteps()
    phases = [
        (SnapshotPhase.INITIAL, "initial state"),
        (SnapshotPhase.BEFORE_FAILURE, "before failure"),
        (SnapshotPhase.AFTER_COMPENSATION, "after compensation"),
        (SnapshotPhase.AFTER_ROLLBACK, "after rollback"),
        (SnapshotPhase.AFTER_RESTART, "after restart"),
        (SnapshotPhase.CONVERGED, "converged state"),
    ]
    for phase, title in phases:
        for snapshot in snapshots.of_phase(phase):
            highlight = (
                run.lost_vertices(snapshot.superstep)
                if snapshot.superstep in failure_supersteps
                else []
            )
            print(f"\n--- {title} [superstep {snapshot.superstep}] ---")
            print(_render_state(run, snapshot.as_dict(), highlight))


def _print_plots(run: DemoRun) -> None:
    stats = run.statistics()
    series = [Series.of("converged", stats.converged.values)]
    if run.algorithm == "pagerank":
        series.append(Series.of("l1_delta", stats.l1.values))
    else:
        series.append(Series.of("messages", stats.messages.values))
    print()
    print(format_figure(f"{run.algorithm} statistics", series))
    if stats.failures:
        print(f"failures struck at iteration(s): {stats.failures}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes follow argparse conventions: 2 for bad command-line input
    (malformed ``--fail`` specs, out-of-range partitions), 1 for runtime
    errors, 0 on success.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "views":
        return views_main(argv[1:])
    args = build_parser().parse_args(argv)
    tracer = RecordingTracer() if args.trace_out else None
    try:
        _check_strategy(args.strategy)
        failures = [_parse_failure(text) for text in args.failures]
        session = DemoSession(
            algorithm=args.algorithm,
            graph=args.graph,
            parallelism=args.parallelism,
            spare_workers=max(4, args.parallelism),
            twitter_size=args.size,
            seed=args.seed,
            parallel_backend=args.parallel_backend,
            parallel_workers=args.parallel_workers,
            columnar=args.columnar,
        )
        for superstep, partitions in failures:
            session.schedule_failure(superstep, partitions)
    except ConfigError as error:
        print(f"error: {error}")
        return 2
    try:
        run = session.press_play(
            recovery=args.strategy,
            checkpoint_interval=args.checkpoint_interval,
            tracer=tracer,
        )
    except ConfigError as error:
        # Invalid option combination (e.g. incremental recovery on the
        # bulk-iteration tab) — a usage error, same exit code as argparse.
        print(f"error: {error}")
        return 2
    except ReproError as error:
        print(f"error: {error}")
        return 1
    print(run.result.summary())
    print(f"cost breakdown: {run.result.cost_breakdown()}")
    if tracer is not None:
        try:
            trace_to_jsonl(
                tracer.roots,
                args.trace_out,
                events=run.result.events,
                stats=run.result.stats,
                meta={
                    "algorithm": args.algorithm,
                    "graph": args.graph,
                    "recovery": args.strategy,
                    "parallelism": args.parallelism,
                    "parallel_backend": args.parallel_backend,
                    "parallel_workers": args.parallel_workers,
                    "supersteps": run.result.supersteps,
                    "converged": run.result.converged,
                    "sim_time": run.result.clock.now,
                },
            )
        except OSError as error:
            print(f"error: cannot write trace: {error}")
            return 1
        print(f"trace written to {args.trace_out}")
    if args.states:
        _print_states(run)
    if args.plots:
        _print_plots(run)
    if args.report:
        from ..analysis.run_report import render_run_report

        print()
        print(render_run_report(run.result))
    return 0
