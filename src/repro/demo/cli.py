"""Command-line interface to the demo.

``python -m repro.demo`` is the headless equivalent of the SIGMOD demo
booth: pick the algorithm tab, pick the graph, schedule failures, press
play, and look at the state renderings and statistics plots::

    python -m repro.demo --algorithm connected-components --graph small \
        --fail 2:0 --recovery optimistic --states --plots

    python -m repro.demo --algorithm pagerank --graph twitter --size 500 \
        --fail 4:1 --fail 9:0,2 --plots

Passing ``--trace-out trace.jsonl`` records the run's span tree (run →
superstep → operator → partition) and writes it as JSONL; the companion
``profile`` subcommand reads such a trace back and prints where the
simulated time went::

    python -m repro.demo --algorithm pagerank --fail 3:0 \
        --recovery optimistic --trace-out trace.jsonl
    python -m repro.demo profile trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..analysis import Series, format_figure
from ..errors import ReproError
from ..iteration.snapshots import SnapshotPhase
from ..observability.export import trace_to_jsonl
from ..observability.profile import format_profile, profile_trace
from ..observability.tracer import RecordingTracer
from .controller import ALGORITHMS, GRAPHS, RECOVERIES, DemoRun, DemoSession
from .render import render_components, render_ranks


def _parse_failure(text: str) -> tuple[int, list[int]]:
    """Parse ``SUPERSTEP:P1,P2,...`` into ``(superstep, partitions)``."""
    try:
        superstep_text, partitions_text = text.split(":", 1)
        superstep = int(superstep_text)
        partitions = [int(p) for p in partitions_text.split(",") if p]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected SUPERSTEP:P1,P2,... (e.g. 2:0 or 4:1,3), got {text!r}"
        ) from exc
    if not partitions:
        raise argparse.ArgumentTypeError(f"no partitions in failure spec {text!r}")
    return superstep, partitions


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo",
        description="Headless demo of optimistic recovery for iterative dataflows",
    )
    parser.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="connected-components",
        help="which algorithm tab to open (default: connected-components)",
    )
    parser.add_argument(
        "--graph",
        choices=GRAPHS,
        default="small",
        help="small hand-crafted graph or the synthetic Twitter-like one",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=500,
        help="vertex count of the Twitter-like graph (default: 500)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=4,
        help="number of workers / state partitions (default: 4)",
    )
    parser.add_argument(
        "--fail",
        dest="failures",
        type=_parse_failure,
        action="append",
        default=[],
        metavar="SUPERSTEP:PARTITIONS",
        help="fail partitions at a superstep, e.g. --fail 2:0 --fail 5:1,3",
    )
    parser.add_argument(
        "--recovery",
        choices=RECOVERIES,
        default="optimistic",
        help="recovery strategy (default: optimistic)",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=2,
        help="interval for --recovery checkpoint (default: 2)",
    )
    parser.add_argument(
        "--states",
        action="store_true",
        help="render the initial / before-failure / after-compensation / converged states",
    )
    parser.add_argument(
        "--plots",
        action="store_true",
        help="print the demo's statistics plots",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full run report (costs, statistics, event timeline)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="generator seed (default: 7)"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record the run's span tree and write it as JSONL to PATH",
    )
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-demo profile",
        description="Attribute a recorded trace's simulated time to "
        "recovery-cost categories",
    )
    parser.add_argument("trace", help="JSONL trace written with --trace-out")
    return parser


def profile_main(argv: Sequence[str]) -> int:
    """``profile`` subcommand: read a trace, print the cost breakdown."""
    args = build_profile_parser().parse_args(argv)
    try:
        report = format_profile(profile_trace(args.trace), title=args.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        return 1
    print(report)
    return 0


def _render_state(run: DemoRun, state: dict, highlight: list[int]) -> str:
    if run.algorithm == "pagerank":
        return render_ranks(state, highlight=highlight, width=30)
    return render_components(state, highlight=highlight)


def _print_states(run: DemoRun) -> None:
    snapshots = run.result.snapshots
    failure_supersteps = run.result.stats.failure_supersteps()
    phases = [
        (SnapshotPhase.INITIAL, "initial state"),
        (SnapshotPhase.BEFORE_FAILURE, "before failure"),
        (SnapshotPhase.AFTER_COMPENSATION, "after compensation"),
        (SnapshotPhase.AFTER_ROLLBACK, "after rollback"),
        (SnapshotPhase.AFTER_RESTART, "after restart"),
        (SnapshotPhase.CONVERGED, "converged state"),
    ]
    for phase, title in phases:
        for snapshot in snapshots.of_phase(phase):
            highlight = (
                run.lost_vertices(snapshot.superstep)
                if snapshot.superstep in failure_supersteps
                else []
            )
            print(f"\n--- {title} [superstep {snapshot.superstep}] ---")
            print(_render_state(run, snapshot.as_dict(), highlight))


def _print_plots(run: DemoRun) -> None:
    stats = run.statistics()
    series = [Series.of("converged", stats.converged.values)]
    if run.algorithm == "pagerank":
        series.append(Series.of("l1_delta", stats.l1.values))
    else:
        series.append(Series.of("messages", stats.messages.values))
    print()
    print(format_figure(f"{run.algorithm} statistics", series))
    if stats.failures:
        print(f"failures struck at iteration(s): {stats.failures}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    args = build_parser().parse_args(argv)
    tracer = RecordingTracer() if args.trace_out else None
    try:
        session = DemoSession(
            algorithm=args.algorithm,
            graph=args.graph,
            parallelism=args.parallelism,
            spare_workers=max(4, args.parallelism),
            twitter_size=args.size,
            seed=args.seed,
        )
        for superstep, partitions in args.failures:
            session.schedule_failure(superstep, partitions)
        run = session.press_play(
            recovery=args.recovery,
            checkpoint_interval=args.checkpoint_interval,
            tracer=tracer,
        )
    except ReproError as error:
        print(f"error: {error}")
        return 1
    print(run.result.summary())
    print(f"cost breakdown: {run.result.cost_breakdown()}")
    if tracer is not None:
        try:
            trace_to_jsonl(
                tracer.roots,
                args.trace_out,
                events=run.result.events,
                stats=run.result.stats,
                meta={
                    "algorithm": args.algorithm,
                    "graph": args.graph,
                    "recovery": args.recovery,
                    "parallelism": args.parallelism,
                    "supersteps": run.result.supersteps,
                    "converged": run.result.converged,
                    "sim_time": run.result.clock.now,
                },
            )
        except OSError as error:
            print(f"error: cannot write trace: {error}")
            return 1
        print(f"trace written to {args.trace_out}")
    if args.states:
        _print_states(run)
    if args.plots:
        _print_plots(run)
    if args.report:
        from ..analysis.run_report import render_run_report

        print()
        print(render_run_report(run.result))
    return 0
