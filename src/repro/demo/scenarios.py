"""Canned demo walkthroughs matching the paper's figures.

Each scenario builds a :class:`repro.demo.controller.DemoSession` with the
failure timing the paper's figures show and presses play, returning the
finished :class:`repro.demo.controller.DemoRun`.

Iteration numbering: the paper narrates 1-based iterations ("the plummet
at the third iteration", "failure in the iteration 5"); the engine counts
0-based supersteps. The scenarios below schedule failures at 0-based
superstep ``k`` so they read as "iteration k+1" in the paper's terms.
"""

from __future__ import annotations

from .controller import DemoRun, DemoSession


def small_cc_scenario(
    failure_superstep: int = 2,
    failed_partitions: tuple[int, ...] = (0,),
    recovery: str = "optimistic",
) -> DemoRun:
    """Figures 2–3: Connected Components on the small graph, one failure.

    Defaults reproduce the paper's narration — a failure detected at the
    third iteration (0-based superstep 2), visible as a plummet in the
    converged-vertices plot and a message spike while recovering.
    """
    session = DemoSession(algorithm="connected-components", graph="small")
    session.schedule_failure(failure_superstep, list(failed_partitions))
    return session.press_play(recovery=recovery)


def small_pagerank_scenario(
    failure_superstep: int = 4,
    failed_partitions: tuple[int, ...] = (1,),
    recovery: str = "optimistic",
) -> DemoRun:
    """Figures 4–5: PageRank on the small graph, one failure.

    Defaults reproduce the paper's narration — a failure in iteration 5
    (0-based superstep 4), with the converged-vertices plummet and the
    L1-delta spike at the following iteration.
    """
    session = DemoSession(algorithm="pagerank", graph="small")
    session.schedule_failure(failure_superstep, list(failed_partitions))
    return session.press_play(recovery=recovery)


def twitter_cc_scenario(
    twitter_size: int = 500,
    failure_superstep: int = 2,
    failed_partitions: tuple[int, ...] = (0,),
    recovery: str = "optimistic",
    seed: int = 7,
) -> DemoRun:
    """Connected Components on the larger Twitter-like graph.

    The GUI does not visualize the large graph — "attendees can track the
    demo progress only via plots of statistics" (§3.1) — and so the
    interesting output here is :meth:`DemoRun.statistics`.
    """
    session = DemoSession(
        algorithm="connected-components",
        graph="twitter",
        twitter_size=twitter_size,
        seed=seed,
    )
    session.schedule_failure(failure_superstep, list(failed_partitions))
    return session.press_play(recovery=recovery)


def twitter_pagerank_scenario(
    twitter_size: int = 500,
    failure_superstep: int = 4,
    failed_partitions: tuple[int, ...] = (1,),
    recovery: str = "optimistic",
    seed: int = 7,
) -> DemoRun:
    """PageRank on the larger Twitter-like graph (statistics-only view)."""
    session = DemoSession(
        algorithm="pagerank",
        graph="twitter",
        twitter_size=twitter_size,
        seed=seed,
    )
    session.schedule_failure(failure_superstep, list(failed_partitions))
    return session.press_play(recovery=recovery)
