"""The demo controller — the GUI, headless.

:class:`DemoSession` mirrors the interface of §3.1: choose the algorithm
tab, choose the input graph, schedule which partitions to fail in which
iterations, press play. Execution is batch (the engine is deterministic,
so "slowing down the demo" is unnecessary); the play button returns a
:class:`DemoRun`, which supports the GUI's navigation — stepping forward
and backward over per-iteration snapshots — plus the renderings and the
statistics plots.
"""

from __future__ import annotations

from typing import Any

from ..algorithms.connected_components import connected_components
from ..algorithms.pagerank import pagerank
from ..config import RECOVERY_STRATEGIES, EngineConfig
from ..core.adaptive import AdaptiveRecovery
from ..core.checkpointing import CheckpointRecovery
from ..core.confined import ConfinedRecovery
from ..core.incremental import IncrementalCheckpointRecovery
from ..core.recovery import RecoveryStrategy
from ..core.restart import LineageRecovery, RestartRecovery
from ..errors import ConfigError
from ..graph.generators import demo_graph, demo_pagerank_graph, twitter_like_graph
from ..graph.graph import Graph
from ..graph.partitioning import partition_vertices
from ..iteration.result import IterationResult
from ..iteration.snapshots import SnapshotPhase, SnapshotStore, StateSnapshot
from ..observability.tracer import Tracer
from ..runtime.failures import FailureSchedule
from ..runtime.parallel import PARALLEL_BACKENDS
from .render import render_components, render_ranks
from .statistics import DemoStatistics

#: the two algorithm tabs of the GUI.
ALGORITHMS = ("connected-components", "pagerank")

#: the two input choices of the GUI (§3.1).
GRAPHS = ("small", "twitter")

#: recovery modes selectable in this reproduction (the paper's demo only
#: ships optimistic recovery; the baselines exist for comparison runs).
#: "incremental" is valid for the delta-iterative tab only. Tracks the
#: engine-wide registry, so "confined" and "adaptive" are selectable too.
RECOVERIES = RECOVERY_STRATEGIES


class DemoRun:
    """A finished demo execution with GUI-style navigation.

    The GUI's "backward" button "jumps to the previous iteration" and
    "pause" stops at the end of the current one (§3.1); with batch
    execution both reduce to moving a cursor over the recorded
    per-iteration snapshots.
    """

    def __init__(
        self,
        algorithm: str,
        graph: Graph,
        result: IterationResult,
        parallelism: int,
    ):
        self.algorithm = algorithm
        self.graph = graph
        self.result = result
        self.parallelism = parallelism
        if result.snapshots is None:
            raise ConfigError("DemoRun requires a run recorded with snapshots")
        self._snapshots: SnapshotStore = result.snapshots
        self._position = -1  # initial state

    # -- navigation ------------------------------------------------------------

    @property
    def position(self) -> int:
        """Current iteration cursor (``-1`` = initial state)."""
        return self._position

    @property
    def last_superstep(self) -> int:
        return self.result.supersteps - 1

    def step_forward(self) -> int:
        """Advance one iteration (clamped at the last)."""
        self._position = min(self._position + 1, self.last_superstep)
        return self._position

    def step_backward(self) -> int:
        """The GUI's backward button (clamped at the initial state)."""
        self._position = max(self._position - 1, -1)
        return self._position

    def jump(self, superstep: int) -> int:
        """Move the cursor to a specific iteration."""
        if not -1 <= superstep <= self.last_superstep:
            raise ConfigError(
                f"superstep must be in [-1, {self.last_superstep}], got {superstep}"
            )
        self._position = superstep
        return self._position

    # -- state access ------------------------------------------------------------

    def snapshot_at(self, superstep: int) -> StateSnapshot:
        """The committed state at the end of ``superstep`` (``-1`` for
        the initial state)."""
        if superstep == -1:
            initial = self._snapshots.of_phase(SnapshotPhase.INITIAL)
            if not initial:
                raise ConfigError("run has no initial snapshot")
            return initial[0]
        committed = [
            snap
            for snap in self._snapshots.at_superstep(superstep)
            if snap.phase is SnapshotPhase.AFTER_SUPERSTEP
        ]
        if not committed:
            raise ConfigError(f"no snapshot recorded for superstep {superstep}")
        return committed[-1]

    def state_at(self, superstep: int) -> dict[Any, Any]:
        """``{key: value}`` state at the end of ``superstep``."""
        return self.snapshot_at(superstep).as_dict()

    def lost_vertices(self, superstep: int) -> list[int]:
        """Vertices destroyed by the failure at ``superstep`` (empty when
        no failure struck there) — the GUI's red highlighting."""
        failures = [
            event
            for event in self.result.events.failures()
            if event.superstep == superstep
        ]
        lost_partitions = {
            pid for event in failures for pid in event.details.get("lost_partitions", [])
        }
        if not lost_partitions:
            return []
        placement = partition_vertices(self.graph, self.parallelism)
        return sorted(v for v, pid in placement.items() if pid in lost_partitions)

    # -- rendering ------------------------------------------------------------

    def render_current(self) -> str:
        """Render the state at the cursor, highlighting lost vertices."""
        snapshot = self.snapshot_at(self._position)
        highlight = self.lost_vertices(self._position)
        header = f"[{self.algorithm} @ iteration {self._position}]"
        if self.algorithm == "pagerank":
            return f"{header}\n{render_ranks(snapshot.as_dict(), highlight)}"
        return f"{header}\n{render_components(snapshot.as_dict(), highlight)}"

    def statistics(self) -> DemoStatistics:
        """The GUI's statistics plots."""
        return DemoStatistics.from_result(self.result)

    def __repr__(self) -> str:
        return (
            f"DemoRun({self.algorithm!r}, supersteps={self.result.supersteps}, "
            f"position={self._position})"
        )


class DemoSession:
    """The demo GUI's controls.

    Args:
        algorithm: ``"connected-components"`` (delta-iteration tab) or
            ``"pagerank"`` (bulk-iteration tab).
        graph: ``"small"`` for the hand-crafted graph, ``"twitter"`` for
            the synthetic Twitter-like snapshot, or a :class:`Graph` for
            a custom input.
        parallelism: worker / partition count.
        spare_workers: spares available for recovery; must cover the
            scheduled failures.
        twitter_size: vertex count of the synthetic Twitter graph.
        seed: generator seed.
        parallel_backend: intra-job execution backend (``"serial"``,
            ``"threads"`` or ``"processes"``); ``None`` keeps the
            :class:`repro.config.EngineConfig` default (the
            ``REPRO_PARALLEL_BACKEND`` environment variable, else
            serial). Results are identical across backends — only
            wall-clock time changes.
        parallel_workers: worker count for a parallel backend; ``None``
            picks a default from the machine's core count.
        columnar: pack partition payloads into typed columnar blocks
            (:mod:`repro.runtime.blocks`); ``None`` keeps the
            :class:`repro.config.EngineConfig` default (the
            ``REPRO_COLUMNAR`` environment variable, else off). Records
            and simulated costs are identical either way.
    """

    def __init__(
        self,
        algorithm: str = "connected-components",
        graph: str | Graph = "small",
        parallelism: int = 4,
        spare_workers: int = 4,
        twitter_size: int = 500,
        seed: int = 7,
        parallel_backend: str | None = None,
        parallel_workers: int | None = None,
        columnar: bool | None = None,
    ):
        if algorithm not in ALGORITHMS:
            raise ConfigError(f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}")
        if parallel_backend is not None and parallel_backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {parallel_backend!r}"
            )
        if parallel_workers is not None and parallel_workers < 1:
            raise ConfigError(
                f"parallel_workers must be >= 1, got {parallel_workers}"
            )
        self.algorithm = algorithm
        self.parallelism = parallelism
        self.spare_workers = spare_workers
        self.parallel_backend = parallel_backend
        self.parallel_workers = parallel_workers
        self.columnar = columnar
        if isinstance(graph, Graph):
            self.graph = graph
        elif graph == "small":
            self.graph = (
                demo_graph() if algorithm == "connected-components" else demo_pagerank_graph()
            )
        elif graph == "twitter":
            self.graph = twitter_like_graph(twitter_size, seed=seed)
        else:
            raise ConfigError(f"graph must be one of {GRAPHS} or a Graph, got {graph!r}")
        self._failures: list[tuple[int, tuple[int, ...]]] = []

    def schedule_failure(self, iteration: int, partitions: list[int]) -> None:
        """Fail the workers hosting ``partitions`` during ``iteration``.

        Partition ``i`` initially lives on worker ``i``, so failing
        "partition p" kills worker ``p`` — attendees think in partitions,
        the cluster in workers, and before any recovery the two coincide.
        """
        if iteration < 0:
            raise ConfigError(f"iteration must be >= 0, got {iteration}")
        bad = [p for p in partitions if not 0 <= p < self.parallelism]
        if bad:
            raise ConfigError(
                f"partitions {bad} out of range [0, {self.parallelism})"
            )
        self._failures.append((iteration, tuple(partitions)))

    def clear_failures(self) -> None:
        """Forget all scheduled failures."""
        self._failures.clear()

    @property
    def scheduled_failures(self) -> list[tuple[int, tuple[int, ...]]]:
        return list(self._failures)

    def _build_recovery(self, name: str, job, checkpoint_interval: int) -> RecoveryStrategy:
        if name == "optimistic":
            return job.optimistic()
        if name == "checkpoint":
            return CheckpointRecovery(interval=checkpoint_interval)
        if name == "incremental":
            if self.algorithm != "connected-components":
                raise ConfigError(
                    "incremental checkpointing requires a delta iteration "
                    "(the connected-components tab)"
                )
            return IncrementalCheckpointRecovery()
        if name == "restart":
            return RestartRecovery()
        if name == "lineage":
            return LineageRecovery()
        if name == "confined":
            return ConfinedRecovery()
        if name == "adaptive":
            return AdaptiveRecovery(
                getattr(job, "compensation", None),
                getattr(job, "invariants", None),
                checkpoint_interval=checkpoint_interval,
            )
        raise ConfigError(
            f"recovery must be one of {', '.join(RECOVERIES)}, got {name!r}; "
            f"hint: pick a strategy name, e.g. --strategy confined"
        )

    def press_play(
        self,
        recovery: str = "optimistic",
        checkpoint_interval: int = 2,
        epsilon: float = 1e-9,
        tracer: Tracer | None = None,
    ) -> DemoRun:
        """Run the demo to completion and return the navigable run.

        Pass a :class:`repro.observability.tracer.RecordingTracer` as
        ``tracer`` to capture the run's span tree for export or
        profiling; by default no tracing happens.
        """
        overrides: dict[str, Any] = {}
        if self.parallel_backend is not None:
            overrides["parallel_backend"] = self.parallel_backend
        if self.parallel_workers is not None:
            overrides["parallel_workers"] = self.parallel_workers
        if self.columnar is not None:
            overrides["columnar"] = self.columnar
        config = EngineConfig(
            parallelism=self.parallelism,
            spare_workers=self.spare_workers,
            **overrides,
        )
        if self.algorithm == "connected-components":
            job = connected_components(self.graph)
        else:
            job = pagerank(self.graph, epsilon=epsilon)
        strategy = self._build_recovery(recovery, job, checkpoint_interval)
        schedule = FailureSchedule.at(*self._failures) if self._failures else None
        result = job.run(
            config=config,
            recovery=strategy,
            failures=schedule,
            snapshots=SnapshotStore(),
            tracer=tracer,
        )
        return DemoRun(self.algorithm, self.graph, result, self.parallelism)
