"""Headless reimplementation of the demonstration (§3 of the paper).

The SIGMOD demo is a GUI: tabs choose the algorithm (Connected Components
→ delta iterations, PageRank → bulk iterations), attendees pick a small
hand-crafted graph or a larger Twitter-derived one, press play, choose
partitions to fail in chosen iterations, and watch the algorithm recover
through compensation, with per-iteration statistics plotted below.

Every one of those affordances exists here programmatically:

* :class:`repro.demo.controller.DemoSession` — tabs, graph choice,
  failure picking, play / pause / step / backward;
* :mod:`repro.demo.render` — the visualizations (component coloring,
  vertex-size ∝ rank) as ASCII;
* :mod:`repro.demo.statistics` — the four statistics plots;
* :mod:`repro.demo.scenarios` — the canned walkthroughs the paper's
  Figures 2–5 show.
"""

from .controller import DemoRun, DemoSession
from .render import render_components, render_ranks, render_snapshot
from .scenarios import (
    small_cc_scenario,
    small_pagerank_scenario,
    twitter_cc_scenario,
    twitter_pagerank_scenario,
)
from .statistics import DemoStatistics

__all__ = [
    "DemoRun",
    "DemoSession",
    "DemoStatistics",
    "render_components",
    "render_ranks",
    "render_snapshot",
    "small_cc_scenario",
    "small_pagerank_scenario",
    "twitter_cc_scenario",
    "twitter_pagerank_scenario",
]
