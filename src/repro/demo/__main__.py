"""``python -m repro.demo`` — run the headless demo CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
