"""The demo GUI's statistics plots, as data.

§3.2–3.3 of the paper describe four plots:

* Connected Components: (i) vertices converged to their final component
  per iteration — plummets when a failure destroys partitions holding
  converged vertices; (ii) messages (candidate labels sent) per
  iteration — spikes while recovering, "because the vertices restored to
  their initial labels by the compensation function (as well as their
  neighbors) have to propagate their labels again";
* PageRank: (i) vertices converged to their true rank per iteration;
  (ii) the L1 norm of the difference between consecutive rank estimates —
  trends downward, with spikes at iterations that follow a compensation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.series import Series
from ..iteration.result import IterationResult


@dataclass
class DemoStatistics:
    """The plotted series of one demo run.

    Attributes:
        converged: converged-entity count per iteration (plot (i)).
        messages: messages per iteration (CC plot (ii)).
        l1: consecutive-state L1 norm per iteration (PageRank plot (ii));
            entries are ``None`` when the run does not track values.
        failures: iterations during which a failure struck.
        supersteps: number of iterations run.
    """

    converged: Series
    messages: Series
    l1: Series
    failures: list[int]
    supersteps: int

    @classmethod
    def from_result(cls, result: IterationResult) -> "DemoStatistics":
        """Extract the GUI series from a finished run."""
        return cls(
            converged=Series.of("converged", result.stats.converged_series()),
            messages=Series.of("messages", result.stats.messages_series()),
            l1=Series.of("l1_delta", result.stats.l1_series()),
            failures=result.stats.failure_supersteps(),
            supersteps=result.supersteps,
        )

    def convergence_plummets(self) -> list[int]:
        """Iterations where the converged count dropped — the demo's
        plummet markers; under a correct compensation these coincide with
        (or immediately follow) failure iterations."""
        return self.converged.drops()

    def message_spikes(self) -> list[int]:
        """Iterations where the message count rose above the previous
        iteration's — for a monotonically shrinking workset this only
        happens while recovering from a failure."""
        return self.messages.spikes()

    def l1_spikes(self) -> list[int]:
        """Iterations where the L1 delta increased — PageRank's failure
        signature."""
        return self.l1.spikes()
