"""repro — Optimistic Recovery for Iterative Dataflows, reproduced.

A pure-Python reproduction of Dudoladov et al., *Optimistic Recovery for
Iterative Dataflows in Action* (SIGMOD 2015) and the underlying mechanism
of Schelter et al., *All Roads Lead to Rome* (CIKM 2013): checkpoint-free
fault tolerance for fixpoint algorithms via user-defined compensation
functions, demonstrated on a simulated Flink-like iterative dataflow
engine.

Quickstart::

    from repro.graph import demo_graph
    from repro.algorithms import connected_components
    from repro.core import OptimisticRecovery
    from repro.runtime import FailureSchedule

    graph = demo_graph()
    job = connected_components(graph)
    result = job.run(
        recovery=OptimisticRecovery(job.compensation),
        failures=FailureSchedule.single(superstep=2, worker_ids=[0]),
    )
    print(result.summary())
    print(result.final_dict)  # vertex -> component label

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure.
"""

from .config import (
    DEFAULT_CONFIG,
    DEFAULT_FAIRNESS_CONFIG,
    DEFAULT_SERVICE_CONFIG,
    DEFAULT_SHARD_CONFIG,
    DEFAULT_TELEMETRY_CONFIG,
    DEFAULT_VIEWS_CONFIG,
    CostModel,
    EngineConfig,
    FairnessConfig,
    ServiceConfig,
    ShardConfig,
    TelemetryConfig,
    ViewsConfig,
)
from .errors import (
    AdmissionError,
    CompensationError,
    ConfigError,
    ExecutionError,
    GraphError,
    IterationError,
    JobCancelledError,
    JobTimeoutError,
    PartitionLostError,
    PlanError,
    RecoveryError,
    ReproError,
    ServiceError,
    StorageError,
    TerminationError,
    ViewError,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionError",
    "CompensationError",
    "ConfigError",
    "CostModel",
    "DEFAULT_CONFIG",
    "DEFAULT_FAIRNESS_CONFIG",
    "DEFAULT_SERVICE_CONFIG",
    "DEFAULT_SHARD_CONFIG",
    "DEFAULT_TELEMETRY_CONFIG",
    "DEFAULT_VIEWS_CONFIG",
    "EngineConfig",
    "ExecutionError",
    "FairnessConfig",
    "GraphError",
    "IterationError",
    "JobCancelledError",
    "JobTimeoutError",
    "PartitionLostError",
    "PlanError",
    "RecoveryError",
    "ReproError",
    "ServiceConfig",
    "ServiceError",
    "ShardConfig",
    "StorageError",
    "TelemetryConfig",
    "TerminationError",
    "ViewError",
    "ViewsConfig",
    "__version__",
]
