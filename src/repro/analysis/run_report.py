"""Full-text run reports.

``render_run_report`` assembles everything a finished
:class:`repro.iteration.result.IterationResult` knows — summary line,
cost breakdown, the statistics plots, and the event timeline — into one
terminal-friendly block. The demo CLI's ``--report`` flag and the
examples use it; tests treat it as the single place where "what does a
run look like" is rendered.
"""

from __future__ import annotations

from ..iteration.result import IterationResult
from ..runtime.events import EventKind
from .report import Table, format_figure, format_float
from .series import Series

#: event kinds worth a line in the timeline (superstep start/finish are
#: noise at report granularity).
_TIMELINE_KINDS = (
    EventKind.FAILURE,
    EventKind.WORKERS_ACQUIRED,
    EventKind.COMPENSATION,
    EventKind.CHECKPOINT_WRITTEN,
    EventKind.ROLLBACK,
    EventKind.RESTART,
    EventKind.CONVERGED,
    EventKind.TERMINATED,
)


def _cost_table(result: IterationResult) -> Table:
    table = Table(["cost category", "simulated seconds", "share"])
    total = result.sim_time
    for category, seconds in sorted(
        result.cost_breakdown().items(), key=lambda kv: -kv[1]
    ):
        share = f"{seconds / total * 100:.1f}%" if total > 0 else "-"
        table.add_row(category, seconds, share)
    return table


def _statistics_figure(result: IterationResult) -> str:
    series = [Series.of("converged", result.stats.converged_series())]
    messages = result.stats.messages_series()
    if any(messages):
        series.append(Series.of("messages", messages))
    l1 = result.stats.l1_series()
    if any(value is not None for value in l1):
        series.append(Series.of("l1_delta", l1))
    workset = [s.workset_size for s in result.stats]
    if any(value is not None for value in workset):
        series.append(Series.of("workset", workset))
    return format_figure("per-superstep statistics", series)


def _timeline(result: IterationResult, limit: int) -> list[str]:
    lines = []
    interesting = [e for e in result.events if e.kind in _TIMELINE_KINDS]
    for event in interesting[:limit]:
        details = ", ".join(f"{k}={v}" for k, v in sorted(event.details.items()))
        suffix = f" ({details})" if details else ""
        lines.append(
            f"  t={format_float(event.time):>10}  superstep {event.superstep:>3}  "
            f"{event.kind.value}{suffix}"
        )
    if len(interesting) > limit:
        lines.append(f"  ... and {len(interesting) - limit} more events")
    return lines


def render_run_report(
    result: IterationResult, title: str | None = None, timeline_limit: int = 30
) -> str:
    """Render one run as a multi-section text report."""
    sections = [
        f"==== {title or result.job_name} ====",
        result.summary(),
        "",
        str(_cost_table(result)),
        "",
        _statistics_figure(result),
    ]
    timeline = _timeline(result, timeline_limit)
    if timeline:
        sections.extend(["", "event timeline:", *timeline])
    return "\n".join(sections)
