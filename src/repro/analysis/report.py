"""Text tables and figure blocks for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence

from .series import Series


def format_float(value: float, digits: int = 4) -> str:
    """Compact float formatting: fixed point for moderate magnitudes,
    scientific otherwise."""
    if value == 0:
        return "0"
    if abs(value) >= 10 ** (digits + 2) or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}".rstrip("0").rstrip(".")


class Table:
    """A minimal aligned text table."""

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; floats are compact-formatted, the rest ``str``."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        formatted = [
            format_float(cell) if isinstance(cell, float) else str(cell)
            for cell in cells
        ]
        self.rows.append(formatted)

    def to_text(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def format_figure(title: str, series_list: Sequence[Series], width: int = 60) -> str:
    """Render a "figure": one sparkline per series plus the raw values.

    This is how the benchmark harness regenerates the demo GUI's plots in
    a terminal — the shape (downward trend, plummet, spike) reads off the
    sparkline, the exact numbers follow.
    """
    lines = [f"=== {title} ==="]
    for series in series_list:
        lines.append(f"{series.name:<28} {series.spark(width)}")
    for series in series_list:
        rendered = ", ".join(
            "-" if v is None else (format_float(float(v)) if isinstance(v, float) else str(v))
            for v in series.values
        )
        lines.append(f"{series.name}: [{rendered}]")
    return "\n".join(lines)
