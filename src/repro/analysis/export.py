"""CSV export of run statistics.

The demo GUI plots live; a headless reproduction wants its series on
disk. These helpers dump :class:`repro.analysis.series.Series` bundles
and full :class:`repro.iteration.result.IterationResult` statistics as
CSV for external plotting.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Any, Sequence

from ..iteration.result import IterationResult
from .series import Series


def _cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            # NaN means "no measurement" — same as None, so same empty cell
            return ""
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return repr(value)
    return str(value)


def series_to_csv(series_list: Sequence[Series], path: str | Path) -> Path:
    """Write series as CSV columns (one ``step`` index column first).

    Shorter series are padded with empty cells.
    """
    path = Path(path)
    length = max((len(s) for s in series_list), default=0)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["step", *(s.name for s in series_list)])
        for index in range(length):
            row = [index]
            for series in series_list:
                row.append(_cell(series.values[index]) if index < len(series) else "")
            writer.writerow(row)
    return path


def result_to_csv(result: IterationResult, path: str | Path) -> Path:
    """Write a run's full per-superstep statistics as CSV rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "superstep",
                "messages",
                "updates",
                "converged",
                "l1_delta",
                "workset_size",
                "sim_duration",
                "failed",
                "compensated",
                "rolled_back",
                "restarted",
            ]
        )
        for stats in result.stats:
            writer.writerow(
                [
                    stats.superstep,
                    stats.messages,
                    stats.updates,
                    stats.converged,
                    _cell(stats.l1_delta),
                    _cell(stats.workset_size),
                    _cell(stats.sim_duration),
                    int(stats.failed),
                    int(stats.compensated),
                    int(stats.rolled_back),
                    int(stats.restarted),
                ]
            )
    return path


def read_csv_columns(path: str | Path) -> dict[str, list[str]]:
    """Read a CSV back as ``{column name: cells}`` (for tests and quick
    inspection; values stay strings)."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        columns: dict[str, list[str]] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                columns[name].append(cell)
    return columns
