"""Reporting helpers used by the demo and the benchmark harness."""

from .export import read_csv_columns, result_to_csv, series_to_csv
from .report import Table, format_figure, format_float
from .run_report import render_run_report
from .series import Series, sparkline

__all__ = [
    "Series",
    "Table",
    "format_figure",
    "format_float",
    "read_csv_columns",
    "render_run_report",
    "result_to_csv",
    "series_to_csv",
    "sparkline",
]
