"""Numeric series containers and text sparklines.

The demo GUI shows line plots of per-iteration statistics; headless, we
render the same series as aligned numbers plus a unicode sparkline so the
plot's *shape* (downward trends, plummets, spikes) is visible in terminal
output and in the benchmark logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float | int | None], width: int | None = None) -> str:
    """Render values as a unicode sparkline.

    ``None`` entries render as spaces; constant series render at mid
    height. ``width`` optionally downsamples long series by taking
    evenly spaced samples.
    """
    series = list(values)
    if width is not None and len(series) > width > 0:
        step = len(series) / width
        series = [series[min(int(i * step), len(series) - 1)] for i in range(width)]
    numeric = [v for v in series if v is not None and not math.isinf(v)]
    if not numeric:
        return " " * len(series)
    low, high = min(numeric), max(numeric)
    span = high - low
    chars = []
    for value in series:
        if value is None or math.isinf(value):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_CHARS[len(_SPARK_CHARS) // 2])
            continue
        bucket = int((value - low) / span * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[bucket])
    return "".join(chars)


@dataclass
class Series:
    """A named numeric series with simple statistics.

    Attributes:
        name: label shown in reports.
        values: the data points (``None`` marks gaps).
    """

    name: str
    values: list[float | int | None] = field(default_factory=list)

    @classmethod
    def of(cls, name: str, values: Iterable[float | int | None]) -> "Series":
        return cls(name=name, values=list(values))

    def __len__(self) -> int:
        return len(self.values)

    def _numeric(self) -> list[float]:
        return [float(v) for v in self.values if v is not None and not math.isinf(v)]

    @property
    def total(self) -> float:
        return sum(self._numeric())

    @property
    def maximum(self) -> float | None:
        numeric = self._numeric()
        return max(numeric) if numeric else None

    @property
    def minimum(self) -> float | None:
        numeric = self._numeric()
        return min(numeric) if numeric else None

    def argmax(self) -> int | None:
        """Index of the largest value (first occurrence)."""
        best_index, best_value = None, None
        for index, value in enumerate(self.values):
            if value is None or math.isinf(value):
                continue
            if best_value is None or value > best_value:
                best_index, best_value = index, value
        return best_index

    def drops(self) -> list[int]:
        """Indices where the series decreases — the demo's "plummets"."""
        return [
            i
            for i in range(1, len(self.values))
            if self.values[i] is not None
            and self.values[i - 1] is not None
            and self.values[i] < self.values[i - 1]  # type: ignore[operator]
        ]

    def spikes(self) -> list[int]:
        """Indices where the series increases — the demo's message /
        L1 "spikes" after failures."""
        return [
            i
            for i in range(1, len(self.values))
            if self.values[i] is not None
            and self.values[i - 1] is not None
            and self.values[i] > self.values[i - 1]  # type: ignore[operator]
        ]

    def spark(self, width: int | None = None) -> str:
        """The series as a sparkline."""
        return sparkline(self.values, width)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, n={len(self.values)})"
