"""Prometheus text-format exposition of metrics and telemetry.

Renders registry snapshots (and collector series) in the Prometheus
text exposition format, version 0.0.4 — the format every Prometheus
scraper, Grafana agent and ``promtool`` understands::

    # TYPE repro_service_submitted_total counter
    repro_service_submitted_total{scope="service"} 50
    # TYPE repro_service_queue_depth gauge
    repro_service_queue_depth{scope="service"} 3
    # TYPE repro_service_job_seconds summary
    repro_service_job_seconds{scope="service",quantile="0.5"} 0.012

Conventions applied:

* metric names are sanitized to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (dots and
  dashes become underscores) and prefixed ``repro_``;
* counters get a ``_total`` suffix, histograms render as summaries with
  ``quantile`` labels (p50/p95/p99) plus ``_sum`` and ``_count``;
* label values are escaped per the spec (backslash, quote, newline);
* non-finite values render as the spec's ``NaN`` / ``+Inf`` / ``-Inf``
  tokens — never as Python's ``nan``/``inf`` reprs, which scrapers
  reject.

Inputs are duck-typed snapshots (the dicts
:meth:`repro.runtime.metrics.MetricsRegistry.snapshot_all` returns), so
this module stays engine-import-free like the rest of the package.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

from .metrics import HistogramStats

#: every exposed metric name starts with this.
NAME_PREFIX = "repro_"

#: the quantiles summaries expose.
SUMMARY_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_NAME_START = re.compile(r"^[a-zA-Z_:]")


def sanitize_metric_name(name: str, prefix: str = NAME_PREFIX) -> str:
    """A raw metric name (``service.queue_depth``) as a legal Prometheus
    name (``repro_service_queue_depth``)."""
    cleaned = _NAME_OK.sub("_", name)
    if not _NAME_START.match(cleaned):
        cleaned = "_" + cleaned
    return prefix + cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: Any) -> str:
    """One sample value as Prometheus text.

    Finite floats keep full precision via ``repr``; integers stay
    integral; NaN and ±inf become the spec tokens ``NaN`` / ``+Inf`` /
    ``-Inf`` (mirroring the NaN-safe CSV cells, but in the scraper's own
    vocabulary — an empty cell is not valid here).
    """
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Renderer:
    """Accumulates exposition lines, emitting each TYPE header once."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._typed: set[str] = set()

    def _type(self, name: str, kind: str) -> None:
        if name not in self._typed:
            self._typed.add(name)
            self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, kind: str, value: Any, labels: Mapping[str, str]
    ) -> None:
        self._type(name, kind)
        self._lines.append(f"{name}{_labels_text(labels)} {format_value(value)}")

    def summary(
        self, name: str, stats: HistogramStats, labels: Mapping[str, str]
    ) -> None:
        self._type(name, "summary")
        for quantile, _ in SUMMARY_QUANTILES:
            q_labels = dict(labels)
            q_labels["quantile"] = str(quantile)
            value = {0.5: stats.p50, 0.95: stats.p95, 0.99: stats.p99}[quantile]
            self._lines.append(f"{name}{_labels_text(q_labels)} {format_value(value)}")
        self._lines.append(f"{name}_sum{_labels_text(labels)} {format_value(stats.total)}")
        self._lines.append(f"{name}_count{_labels_text(labels)} {format_value(stats.count)}")

    def text(self) -> str:
        return "\n".join(self._lines) + ("\n" if self._lines else "")


def render_snapshots(
    snapshots: Iterable[tuple[Mapping[str, str], Mapping[str, Any]]],
) -> str:
    """Render ``(labels, snapshot_all-dict)`` pairs as exposition text.

    Counters become ``<name>_total`` counter samples, gauges become
    gauges, histograms become summaries (quantiles + sum + count). The
    same metric from differently-labelled sources shares one TYPE header
    and renders as one labelled family, which is exactly how a scraper
    wants per-job series.
    """
    renderer = _Renderer()
    for labels, snapshot in snapshots:
        for name, value in sorted(snapshot.get("counters", {}).items()):
            renderer.sample(
                sanitize_metric_name(name) + "_total", "counter", value, labels
            )
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            renderer.sample(sanitize_metric_name(name), "gauge", value, labels)
        for name, values in sorted(snapshot.get("histograms", {}).items()):
            if values:
                renderer.summary(
                    sanitize_metric_name(name), HistogramStats.of(values), labels
                )
    return renderer.text()


def render_collector(collector: Any) -> str:
    """Exposition text of a :class:`~repro.observability.telemetry.TelemetryCollector`.

    Live sources render in full (their current counters, gauges and
    histogram summaries); collector-recorded series (per-superstep run
    metrics) contribute their most recent point as a labelled gauge, so
    the scrape always reflects "now".
    """
    renderer = _Renderer()
    for labels, snapshot in collector.registered_snapshots():
        for name, value in sorted(snapshot.get("counters", {}).items()):
            renderer.sample(
                sanitize_metric_name(name) + "_total", "counter", value, labels
            )
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            renderer.sample(sanitize_metric_name(name), "gauge", value, labels)
        for name, values in sorted(snapshot.get("histograms", {}).items()):
            if values:
                renderer.summary(
                    sanitize_metric_name(name), HistogramStats.of(values), labels
                )
    last = collector.last_values(origin="recorded")
    for key in sorted(last, key=lambda k: (k.metric, k.job_id or -1, k.attempt or -1)):
        renderer.sample(
            sanitize_metric_name(key.metric), "gauge", last[key], key.labels()
        )
    return renderer.text()
