"""Live convergence monitoring: rate, ETA, stalls, divergence.

The paper's argument is that optimistic recovery trades checkpoint cost
for *bounded re-convergence work* — extra supersteps after a failure
while the compensated state converges again. Until now that overhead was
only measurable after the fact, from exported traces. The
:class:`ConvergenceMonitor` makes it visible while the job runs: the
iteration drivers feed it every superstep's
:class:`repro.runtime.metrics.IterationStats` (duck-typed — anything
with the same attributes works), and the monitor

* estimates the **convergence rate** as the per-superstep geometric
  decay of the L1 series (bulk iterations) or the workset size (delta
  iterations), and from it an **ETA in supersteps** to the job's
  termination threshold;
* emits **health events** into a :class:`repro.observability.telemetry_log.TelemetryLog`:
  ``stall`` (no forward progress in K consecutive supersteps — e.g. a
  failure/restart loop injected via the failure injector), ``divergence``
  (L1 rising superstep over superstep after a compensation ran — the
  compensated state is moving *away* from the fixpoint), ``recovery``
  (a failure struck; tagged with the strategy outcome) and
  ``reconverged`` (the run is back to its pre-failure progress — the
  paper's re-convergence overhead, counted live in supersteps).

The monitor only *reads* the stats objects; it never touches simulated
clocks, RNGs or state, so a monitored run is bit-identical to an
unmonitored one.
"""

from __future__ import annotations

import math
from typing import Any

from .telemetry_log import TelemetryLog

#: signals the monitor may base progress decisions on, for reports.
SIGNALS = ("l1", "workset", "updates", "messages")


class ConvergenceMonitor:
    """Per-run (one job attempt) convergence watcher.

    Args:
        job_name: human-readable job name for emitted events.
        job_id / attempt: correlation ids stamped on emitted events.
        log: destination for health events (``None`` = keep them only in
            :meth:`events`, still inspectable).
        stall_after: consecutive no-progress supersteps before a single
            ``stall`` warning fires (re-armed once progress resumes).
        divergence_after: consecutive L1 rises (after a compensation has
            run) before a single ``divergence`` warning fires.
        window: trailing supersteps the rate estimate looks at.
        target: the termination threshold the ETA aims for — the
            driver passes its criterion's epsilon (L1 jobs) and the
            workset signal aims for "< 1 pending update" implicitly.
    """

    def __init__(
        self,
        job_name: str,
        *,
        job_id: int | None = None,
        attempt: int | None = None,
        log: TelemetryLog | None = None,
        stall_after: int = 5,
        divergence_after: int = 3,
        window: int = 6,
        target: float | None = None,
    ):
        if stall_after < 1:
            raise ValueError(f"stall_after must be >= 1, got {stall_after}")
        if divergence_after < 1:
            raise ValueError(f"divergence_after must be >= 1, got {divergence_after}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.job_name = job_name
        self.job_id = job_id
        self.attempt = attempt
        self.log = log
        self.stall_after = stall_after
        self.divergence_after = divergence_after
        self.window = window
        self.target = target
        #: events emitted by this monitor, in order (mirror of what went
        #: to ``log``, kept so callers without a log still see them).
        self.events: list[Any] = []

        self._superstep: int | None = None
        self._sim_time: float | None = None
        self._l1: list[float] = []
        self._workset: list[float] = []
        self._last_updates: int | None = None
        self._last_messages: int | None = None
        self._signal: str | None = None
        self._no_progress_streak = 0
        self._stalled = False
        self._l1_rise_streak = 0
        self._diverging = False
        self._compensated_ever = False
        self._failures = 0
        #: best (lowest) L1 / workset before the most recent failure,
        #: used to measure re-convergence overhead.
        self._recovery_baseline: float | None = None
        self._recovery_superstep: int | None = None

    # -- feeding -----------------------------------------------------------------

    def observe(self, stats: Any) -> None:
        """Consume one superstep's stats (drivers call this per superstep)."""
        self._superstep = stats.superstep
        self._sim_time = getattr(stats, "sim_time_end", None)
        l1 = getattr(stats, "l1_delta", None)
        workset = getattr(stats, "workset_size", None)
        updates = getattr(stats, "updates", 0)
        messages = getattr(stats, "messages", 0)

        previous_l1 = self._l1[-1] if self._l1 else None
        previous_workset = self._workset[-1] if self._workset else None
        if l1 is not None:
            self._l1.append(float(l1))
            self._signal = "l1"
        if workset is not None:
            self._workset.append(float(workset))
            if self._signal is None:
                self._signal = "workset"
        if self._signal is None:
            self._signal = "updates" if updates else "messages"
        self._last_updates = updates
        self._last_messages = messages

        if stats.failed:
            self._failures += 1
            self._on_failure(stats)

        progress = self._made_progress(
            stats, l1, previous_l1, workset, previous_workset, updates, messages
        )
        if progress:
            self._no_progress_streak = 0
            if self._stalled:
                self._stalled = False
                self._emit(
                    "stall_cleared",
                    "info",
                    stats,
                    no_progress_supersteps=0,
                )
        else:
            self._no_progress_streak += 1
            if not self._stalled and self._no_progress_streak >= self.stall_after:
                self._stalled = True
                self._emit(
                    "stall",
                    "warning",
                    stats,
                    no_progress_supersteps=self._no_progress_streak,
                    signal=self._signal,
                    failures_so_far=self._failures,
                )

        self._track_divergence(stats, l1, previous_l1)
        self._track_reconvergence(stats, l1, workset)

    def _made_progress(
        self,
        stats: Any,
        l1: float | None,
        previous_l1: float | None,
        workset: float | None,
        previous_workset: float | None,
        updates: int,
        messages: int,
    ) -> bool:
        # A superstep whose work was thrown away (restart / rollback) is
        # never progress, whatever the series did — this is what turns an
        # injected failure loop into a visible stall.
        if getattr(stats, "restarted", False) or getattr(stats, "rolled_back", False):
            return False
        if l1 is not None and previous_l1 is not None:
            return l1 < previous_l1
        if workset is not None and previous_workset is not None:
            # A shrinking workset is the delta iteration converging. A
            # flat one — zero included — is not: a clean run terminates
            # the superstep its workset empties, so a *streak* of empty
            # worksets means failures are blocking termination.
            return workset < previous_workset
        if updates:
            return True
        # First observed superstep, or a job tracking nothing: count raw
        # activity as progress so we never cry stall without a signal.
        return messages > 0 or previous_l1 is None and l1 is not None

    def _on_failure(self, stats: Any) -> None:
        outcome = (
            "compensation"
            if getattr(stats, "compensated", False)
            else "rollback"
            if getattr(stats, "rolled_back", False)
            else "restart"
            if getattr(stats, "restarted", False)
            else "none"
        )
        if getattr(stats, "compensated", False):
            self._compensated_ever = True
        # Baseline = best progress before this failure; the run has
        # "re-converged" once the series is back at or below it.
        series = self._l1 if self._l1 else self._workset
        history = series[:-1] if len(series) > 1 else series
        if history:
            self._recovery_baseline = min(history)
            self._recovery_superstep = stats.superstep
        self._emit(
            "recovery",
            "info",
            stats,
            outcome=outcome,
            signal=self._signal,
            baseline=self._recovery_baseline,
        )

    def _track_divergence(
        self, stats: Any, l1: float | None, previous_l1: float | None
    ) -> None:
        if l1 is None or previous_l1 is None:
            return
        if l1 > previous_l1 and not stats.failed:
            self._l1_rise_streak += 1
        elif l1 <= previous_l1:
            if self._diverging and l1 < previous_l1:
                self._diverging = False
            self._l1_rise_streak = 0
        if (
            self._compensated_ever
            and not self._diverging
            and self._l1_rise_streak >= self.divergence_after
        ):
            self._diverging = True
            self._emit(
                "divergence",
                "warning",
                stats,
                rising_supersteps=self._l1_rise_streak,
                l1=l1,
            )

    def _track_reconvergence(
        self, stats: Any, l1: float | None, workset: float | None
    ) -> None:
        if self._recovery_baseline is None or self._recovery_superstep is None:
            return
        if stats.failed:
            return
        current = l1 if l1 is not None else workset
        if current is None:
            return
        if current <= self._recovery_baseline:
            self._emit(
                "reconverged",
                "info",
                stats,
                overhead_supersteps=stats.superstep - self._recovery_superstep,
                baseline=self._recovery_baseline,
            )
            self._recovery_baseline = None
            self._recovery_superstep = None

    def _emit(self, kind: str, level: str, stats: Any, **details: Any) -> None:
        details.setdefault("job", self.job_name)
        if self.log is not None:
            event = self.log.emit(
                kind,
                level,
                job_id=self.job_id,
                attempt=self.attempt,
                superstep=stats.superstep,
                sim_time=self._sim_time,
                **details,
            )
        else:
            event = {
                "kind": kind,
                "level": level,
                "superstep": stats.superstep,
                **details,
            }
        self.events.append(event)

    # -- estimates ---------------------------------------------------------------

    @property
    def superstep(self) -> int | None:
        """The last observed superstep (``None`` before any)."""
        return self._superstep

    @property
    def stalled(self) -> bool:
        """True while a stall episode is open."""
        return self._stalled

    @property
    def signal(self) -> str | None:
        """Which series drives the estimates (one of :data:`SIGNALS`)."""
        return self._signal

    def convergence_rate(self) -> float | None:
        """Per-superstep geometric decay of the active series.

        A rate of 0.6 means the residual shrinks to 60% each superstep;
        ``None`` when there is no usable (positive, shrinking-capable)
        window yet; a rate >= 1.0 means no decay over the window.
        """
        series = self._l1 if self._signal == "l1" else self._workset
        window = [v for v in series[-self.window :] if v > 0]
        if len(window) < 2 or window[0] <= 0:
            return None
        ratio = window[-1] / window[0]
        return ratio ** (1.0 / (len(window) - 1))

    def eta_supersteps(self) -> int | None:
        """Estimated supersteps until termination, or ``None``.

        L1 jobs aim for the driver-provided ``target`` (the termination
        epsilon); workset jobs aim for an empty workset (< 1 pending
        update). Undefined while the run is not decaying (rate >= 1).
        """
        rate = self.convergence_rate()
        if rate is None or rate >= 1.0:
            return None
        if self._signal == "l1":
            if self.target is None or not self._l1:
                return None
            current = self._l1[-1]
            target = self.target
        else:
            if not self._workset:
                return None
            current = self._workset[-1]
            target = 1.0
        if current <= 0 or current <= target:
            return 0
        return max(0, math.ceil(math.log(target / current) / math.log(rate)))

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable live view (feeds ``JobService.health()``)."""
        series = self._l1 if self._signal == "l1" else self._workset
        return {
            "job": self.job_name,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "superstep": self._superstep,
            "sim_time": self._sim_time,
            "signal": self._signal,
            "residual": series[-1] if series else None,
            "target": self.target if self._signal == "l1" else 1.0,
            "updates": self._last_updates,
            "messages": self._last_messages,
            "rate": self.convergence_rate(),
            "eta_supersteps": self.eta_supersteps(),
            "stalled": self._stalled,
            "diverging": self._diverging,
            "failures": self._failures,
            "recovering": self._recovery_baseline is not None,
        }
