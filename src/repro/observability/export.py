"""Structured JSONL export of traces.

A trace file is one JSON object per line, each tagged with a ``type``:

* ``{"type": "meta", ...}`` — one header line describing the run;
* ``{"type": "span", ...}`` — one line per span, parents before
  children (pre-order), linked via ``span_id`` / ``parent_id``;
* ``{"type": "event", ...}`` — the structured engine events;
* ``{"type": "superstep", ...}`` — the per-superstep statistics rows.

The format is deliberately flat and line-oriented so runs can be diffed
with standard tools and loaded into pandas/duckdb with one call. Events
and statistics are passed in duck-typed (anything with ``to_dict()``), so
this module stays free of engine imports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .span import Span, SpanKind

#: bumped when the line schema changes incompatibly.
TRACE_FORMAT_VERSION = 1


def span_to_dict(span: Span) -> dict[str, Any]:
    """One span as a JSON-ready dict (wall time collapses to a duration)."""
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind.value,
        "sim_start": span.sim_start,
        "sim_end": span.sim_end if span.sim_end is not None else span.sim_start,
        "wall_duration": span.wall_duration,
        "attributes": span.attributes,
        "costs": span.costs,
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild one span (children are linked up by :func:`read_trace`)."""
    return Span(
        span_id=int(data["span_id"]),
        name=str(data["name"]),
        kind=SpanKind(data["kind"]),
        sim_start=float(data["sim_start"]),
        sim_end=float(data["sim_end"]),
        wall_start=0.0,
        wall_end=float(data.get("wall_duration", 0.0)),
        parent_id=data.get("parent_id"),
        attributes=dict(data.get("attributes", {})),
        costs={str(k): float(v) for k, v in data.get("costs", {}).items()},
    )


@dataclass
class TraceData:
    """A trace file, loaded.

    Attributes:
        meta: the header line's payload (empty dict if absent).
        spans: the re-linked span forest (top-level spans only; descend
            via ``Span.children`` / ``Span.walk()``).
        events: event lines as plain dicts, in file order.
        stats: per-superstep statistic lines as plain dicts.
    """

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    stats: list[dict[str, Any]] = field(default_factory=list)

    @property
    def root(self) -> Span | None:
        """The run span, when the trace has exactly one top-level span."""
        return self.spans[0] if self.spans else None

    def all_spans(self) -> list[Span]:
        """Every span of the forest, pre-order."""
        return [span for root in self.spans for span in root.walk()]


def trace_to_jsonl(
    spans: Span | Sequence[Span] | None,
    path: str | Path,
    *,
    events: Iterable[Any] | None = None,
    stats: Iterable[Any] | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Serialize a run's spans (and optionally events + stats) as JSONL.

    Args:
        spans: the root span, a list of root spans, or ``None`` (an
            event/stats-only export is legal).
        path: output file.
        events: any iterable of objects with ``to_dict()`` (e.g. an
            :class:`repro.runtime.events.EventLog`).
        stats: any iterable of objects with ``to_dict()`` (e.g. a
            :class:`repro.runtime.metrics.StatsSeries`).
        meta: extra payload for the header line.
    """
    path = Path(path)
    if spans is None:
        roots: list[Span] = []
    elif isinstance(spans, Span):
        roots = [spans]
    else:
        roots = list(spans)
    header = {"type": "meta", "format_version": TRACE_FORMAT_VERSION}
    header.update(meta or {})
    with path.open("w") as handle:
        handle.write(json.dumps(header, default=str) + "\n")
        for root in roots:
            for span in root.walk():
                line = {"type": "span", **span_to_dict(span)}
                handle.write(json.dumps(line, default=str) + "\n")
        for event in events or ():
            handle.write(json.dumps({"type": "event", **event.to_dict()}, default=str) + "\n")
        for stat in stats or ():
            handle.write(
                json.dumps({"type": "superstep", **stat.to_dict()}, default=str) + "\n"
            )
    return path


def read_trace(path: str | Path) -> TraceData:
    """Load a JSONL trace back into a :class:`TraceData`.

    Spans are re-linked into their tree; unknown line types are ignored
    so the format can grow.
    """
    path = Path(path)
    trace = TraceData()
    by_id: dict[int, Span] = {}
    with path.open() as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            line_type = line.pop("type", None)
            if line_type == "meta":
                trace.meta = line
            elif line_type == "span":
                span = span_from_dict(line)
                by_id[span.span_id] = span
                parent = by_id.get(span.parent_id) if span.parent_id is not None else None
                if parent is not None:
                    parent.children.append(span)
                else:
                    trace.spans.append(span)
            elif line_type == "event":
                trace.events.append(line)
            elif line_type == "superstep":
                trace.stats.append(line)
    return trace
