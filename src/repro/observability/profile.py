"""The recovery-cost profiler.

Consumes a span tree (live or loaded from a JSONL trace) and attributes
every simulated second of the run to exactly one of eight categories::

    compute       useful operator work outside any recovery activity
    shuffle       network time outside any recovery activity
    checkpoint    failure-free checkpoint I/O (the pessimistic premium)
    rollback      restoring + re-placing state from a checkpoint
    compensation  running a compensation function and rebuilding worksets
    restart       re-reading inputs and restarting, plus the generic
                  failure-handling costs (detection, worker acquisition)
                  of failures that ended in a restart
    log           confined recovery's failure-free message-log appends
                  (the bounded tax its replay capability costs)
    replay        confined recovery's per-failure work: restoring the
                  lost partitions' snapshots and replaying survivors'
                  logged messages into them

The attribution is a *partition*: each span's self-costs (its clock
charges minus its children's) land in exactly one bucket, so the category
totals sum to the run's total simulated time — the invariant the tests
pin down. This is the "what did recovery strategy X actually cost"
breakdown behind the paper's Figure 4/5 narrative.

Attribution rules, outermost first:

1. inside a ``CHECKPOINT`` / ``ROLLBACK`` / ``RESTART`` / ``COMPENSATION``
   / ``REPLAY`` span, everything belongs to that phase (e.g. the network
   cost of re-partitioning a compensated workset is *compensation*, not
   shuffle);
2. inside a driver-level ``RECOVERY`` span, costs belong to the failure's
   outcome category (its ``outcome`` attribute) until rule 1 refines them;
3. otherwise the clock category decides: compute → compute, network →
   shuffle, checkpoint_io → checkpoint, restore_io → rollback,
   compensation → compensation, recovery → restart, log_io → log,
   replay → replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .span import Span, SpanKind

#: the profile categories, in report order.
CATEGORIES = (
    "compute",
    "shuffle",
    "checkpoint",
    "rollback",
    "compensation",
    "restart",
    "log",
    "replay",
)

#: rule 1 — phase spans claim all enclosed costs.
_PHASE_CATEGORY = {
    SpanKind.CHECKPOINT: "checkpoint",
    SpanKind.ROLLBACK: "rollback",
    SpanKind.RESTART: "restart",
    SpanKind.COMPENSATION: "compensation",
    SpanKind.REPLAY: "replay",
}

#: rule 3 — fallback map from simulated-clock cost categories.
_CLOCK_CATEGORY = {
    "compute": "compute",
    "network": "shuffle",
    "checkpoint_io": "checkpoint",
    "restore_io": "rollback",
    "compensation": "compensation",
    "recovery": "restart",
    "log_io": "log",
    "replay": "replay",
}


@dataclass
class ProfileReport:
    """The category breakdown of one traced run.

    Attributes:
        categories: simulated seconds per profile category (every key in
            :data:`CATEGORIES` always present, zero-filled).
        total: total simulated seconds attributed (== the run's simulated
            duration when profiling a complete run trace).
        operator_compute: useful compute seconds per operator name —
            the "where does time go per operator" answer.
        num_spans: how many spans the profile covered.
    """

    categories: dict[str, float] = field(
        default_factory=lambda: {category: 0.0 for category in CATEGORIES}
    )
    total: float = 0.0
    operator_compute: dict[str, float] = field(default_factory=dict)
    num_spans: int = 0

    def fraction(self, category: str) -> float:
        """Share of total simulated time spent in ``category``."""
        if self.total <= 0.0:
            return 0.0
        return self.categories.get(category, 0.0) / self.total

    def overhead(self) -> float:
        """Simulated seconds spent on anything but useful compute+shuffle.

        This is the number recovery-strategy comparisons care about: the
        price of fault tolerance (checkpointing) plus the price actually
        paid when failures struck (rollback / compensation / restart).
        """
        return self.total - self.categories["compute"] - self.categories["shuffle"]

    def to_dict(self) -> dict:
        return {
            "categories": dict(self.categories),
            "total": self.total,
            "operator_compute": dict(self.operator_compute),
            "num_spans": self.num_spans,
        }


def _outcome_category(span: Span) -> str | None:
    outcome = span.attributes.get("outcome")
    return outcome if outcome in CATEGORIES else None


def profile_spans(spans: Span | Sequence[Span]) -> ProfileReport:
    """Attribute a span forest's simulated costs to profile categories."""
    roots = [spans] if isinstance(spans, Span) else list(spans)
    report = ProfileReport()

    def visit(span: Span, context: str | None) -> None:
        report.num_spans += 1
        if span.kind in _PHASE_CATEGORY:
            context = _PHASE_CATEGORY[span.kind]
        elif span.kind is SpanKind.RECOVERY:
            context = _outcome_category(span) or context
        for clock_category, seconds in span.self_costs().items():
            category = context or _CLOCK_CATEGORY.get(clock_category, "compute")
            report.categories[category] += seconds
            report.total += seconds
            if (
                category == "compute"
                and span.kind is SpanKind.OPERATOR
                and clock_category == "compute"
            ):
                operator = span.attributes.get("operator", span.name)
                report.operator_compute[operator] = (
                    report.operator_compute.get(operator, 0.0) + seconds
                )
        for child in span.children:
            visit(child, context)

    for root in roots:
        visit(root, None)
    return report


def profile_trace(path: str | Path) -> ProfileReport:
    """Profile a JSONL trace file written by ``--trace-out``."""
    from .export import read_trace

    return profile_spans(read_trace(path).spans)


def format_profile(report: ProfileReport, title: str = "recovery-cost profile") -> str:
    """Render the breakdown as the CLI's aligned text table."""
    lines = [title, "=" * len(title)]
    lines.append(f"{'category':<14} {'sim seconds':>14} {'share':>8}")
    lines.append(f"{'-' * 14} {'-' * 14} {'-' * 8}")
    for category in CATEGORIES:
        seconds = report.categories[category]
        lines.append(
            f"{category:<14} {seconds:>14.6f} {report.fraction(category):>7.1%}"
        )
    lines.append(f"{'-' * 14} {'-' * 14} {'-' * 8}")
    lines.append(f"{'total':<14} {report.total:>14.6f} {1.0 if report.total else 0.0:>7.1%}")
    lines.append(f"{'overhead':<14} {report.overhead():>14.6f} "
                 f"{(report.overhead() / report.total if report.total else 0.0):>7.1%}")
    if report.operator_compute:
        lines.append("")
        lines.append("useful compute per operator")
        lines.append("---------------------------")
        width = max(len(name) for name in report.operator_compute)
        for name, seconds in sorted(
            report.operator_compute.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"{name:<{width}} {seconds:>14.6f}")
    return "\n".join(lines)
