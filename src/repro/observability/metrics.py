"""Histogram summaries and timers for the upgraded metrics layer.

:class:`repro.runtime.metrics.MetricsRegistry` keeps its flat counter API
and gains gauges, histograms and timers; the distribution math lives here
so it can be reused on raw value lists (e.g. when analysing an exported
trace). Stdlib-only, imported by the runtime — keep it dependency-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, ClassVar, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` via linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method. An empty
    input short-circuits to ``0.0``: callers scrape snapshots that may
    legitimately contain zero-observation histograms (e.g. a Prometheus
    exposition taken before the first superstep), and an exception there
    takes down the whole scrape.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


@dataclass(frozen=True)
class HistogramStats:
    """Summary statistics of one histogram's observations.

    Attributes:
        count: number of observations.
        total: sum of all observations.
        minimum / maximum: range of the observations.
        mean: arithmetic mean.
        p50 / p95 / p99: the median and the tail percentiles (linear
            interpolation, like numpy's default).
    """

    count: int
    total: float
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float

    #: the summary of zero observations: every statistic is 0.0.
    EMPTY: ClassVar["HistogramStats"]

    @classmethod
    def of(cls, values: Sequence[float]) -> "HistogramStats":
        """Summarize a sequence of observations.

        An empty sequence yields the all-zero :data:`EMPTY` summary
        instead of raising, mirroring :func:`percentile` — scrape paths
        summarize whatever the snapshot holds, including histograms that
        have not seen an observation yet.
        """
        if not values:
            return cls.EMPTY
        total = float(sum(values))
        return cls(
            count=len(values),
            total=total,
            minimum=float(min(values)),
            maximum=float(max(values)),
            mean=total / len(values),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
            p99=percentile(values, 0.99),
        )

    def merge(self, other: "HistogramStats") -> "HistogramStats":
        """Combine two summaries into one, count-weighted.

        Count, total, min and max are exact; the mean is recomputed from
        the merged totals. Percentiles cannot be recovered exactly from
        two summaries, so they are the count-weighted average of the two
        inputs' percentiles — the standard sketch-free approximation,
        exact when both inputs share a distribution. Useful for rolling
        up per-scope latency summaries (e.g. per-job into service-wide).

        Merging with an empty summary returns the other side unchanged
        (an all-zero summary must not drag the min down to 0).
        """
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        count = self.count + other.count
        total = self.total + other.total

        def _weighted(a: float, b: float) -> float:
            return (a * self.count + b * other.count) / count

        return HistogramStats(
            count=count,
            total=total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            mean=total / count,
            p50=_weighted(self.p50, other.p50),
            p95=_weighted(self.p95, other.p95),
            p99=_weighted(self.p99, other.p99),
        )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form for JSON export."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


HistogramStats.EMPTY = HistogramStats(
    count=0, total=0.0, minimum=0.0, maximum=0.0, mean=0.0, p50=0.0, p95=0.0, p99=0.0
)


class Timer:
    """Context manager that records a wall-clock duration observation.

    ``registry`` must expose ``observe(name, value)`` — in practice a
    :class:`repro.runtime.metrics.MetricsRegistry`. Wall-clock timings
    never feed back into the simulation; they only describe where the
    reproduction itself spends real time.
    """

    def __init__(self, registry: Any, name: str):
        self._registry = registry
        self._name = name
        self._started: float | None = None
        #: the last measured duration in seconds (after ``__exit__``).
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._started is not None:
            self.elapsed = time.perf_counter() - self._started
            self._registry.observe(self._name, self.elapsed)
            self._started = None
