"""Observability: span tracing, rich metrics, trace export, profiling.

The paper's demo is, at heart, an observability artifact — its GUI exists
so the audience can *watch* supersteps, failures, compensation and
re-convergence unfold. This package is the headless equivalent:

* :mod:`repro.observability.span` / :mod:`repro.observability.tracer` —
  a run → superstep → operator → partition span tree carrying simulated
  and wall-clock durations plus per-category cost deltas; the default
  :data:`NOOP_TRACER` records nothing and costs nothing;
* :mod:`repro.observability.metrics` — histogram summaries (p50/p95/max)
  and wall-clock timers backing the upgraded
  :class:`repro.runtime.metrics.MetricsRegistry`;
* :mod:`repro.observability.export` — JSONL serialization of spans,
  events and per-superstep stats (``--trace-out`` in the demo CLI);
* :mod:`repro.observability.profile` — the recovery-cost profiler that
  attributes every simulated second to compute / shuffle / checkpoint /
  rollback / compensation / restart (``python -m repro.demo profile``).

The package is intentionally a leaf: it imports nothing from the rest of
``repro``, so every engine layer can depend on it without cycles.
"""

from .export import (
    TRACE_FORMAT_VERSION,
    TraceData,
    read_trace,
    span_from_dict,
    span_to_dict,
    trace_to_jsonl,
)
from .metrics import HistogramStats, Timer, percentile
from .profile import (
    CATEGORIES,
    ProfileReport,
    format_profile,
    profile_spans,
    profile_trace,
)
from .span import Span, SpanKind
from .tracer import NOOP_TRACER, NoopTracer, RecordingTracer, Tracer

__all__ = [
    "CATEGORIES",
    "HistogramStats",
    "NOOP_TRACER",
    "NoopTracer",
    "ProfileReport",
    "RecordingTracer",
    "Span",
    "SpanKind",
    "TRACE_FORMAT_VERSION",
    "Timer",
    "TraceData",
    "Tracer",
    "format_profile",
    "percentile",
    "profile_spans",
    "profile_trace",
    "read_trace",
    "span_from_dict",
    "span_to_dict",
    "trace_to_jsonl",
]
