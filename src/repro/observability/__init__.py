"""Observability: span tracing, rich metrics, trace export, profiling.

The paper's demo is, at heart, an observability artifact — its GUI exists
so the audience can *watch* supersteps, failures, compensation and
re-convergence unfold. This package is the headless equivalent:

* :mod:`repro.observability.span` / :mod:`repro.observability.tracer` —
  a run → superstep → operator → partition span tree carrying simulated
  and wall-clock durations plus per-category cost deltas; the default
  :data:`NOOP_TRACER` records nothing and costs nothing;
* :mod:`repro.observability.metrics` — histogram summaries (p50/p95/max)
  and wall-clock timers backing the upgraded
  :class:`repro.runtime.metrics.MetricsRegistry`;
* :mod:`repro.observability.export` — JSONL serialization of spans,
  events and per-superstep stats (``--trace-out`` in the demo CLI);
* :mod:`repro.observability.profile` — the recovery-cost profiler that
  attributes every simulated second to compute / shuffle / checkpoint /
  rollback / compensation / restart (``python -m repro.demo profile``);
* :mod:`repro.observability.telemetry` — the live telemetry collector:
  bounded time series sampled from metrics registries on wall and
  simulated clocks, plus the per-run :class:`RunTelemetry` bundle the
  iteration drivers feed;
* :mod:`repro.observability.telemetry_log` — bounded, level-tagged
  structured event log with correlation ids and streaming JSONL output;
* :mod:`repro.observability.convergence` — live convergence rate / ETA
  estimation and stall / divergence / re-convergence health events;
* :mod:`repro.observability.prometheus` — Prometheus text-format
  exposition (0.0.4) of registry snapshots and collector series;
* :mod:`repro.observability.health` — the ``repro status`` / ``repro
  top``-style renderer over :meth:`repro.service.api.JobService.health`.

The package is intentionally a leaf: it imports nothing from the rest of
``repro``, so every engine layer can depend on it without cycles.
"""

from .convergence import SIGNALS, ConvergenceMonitor
from .export import (
    TRACE_FORMAT_VERSION,
    TraceData,
    read_trace,
    span_from_dict,
    span_to_dict,
    trace_to_jsonl,
)
from .health import render_status
from .metrics import HistogramStats, Timer, percentile
from .prometheus import (
    format_value,
    render_collector,
    render_snapshots,
    sanitize_metric_name,
)
from .profile import (
    CATEGORIES,
    ProfileReport,
    format_profile,
    profile_spans,
    profile_trace,
)
from .span import Span, SpanKind
from .telemetry import (
    RunTelemetry,
    SeriesKey,
    SeriesPoint,
    TelemetryCollector,
    TimeSeries,
)
from .telemetry_log import (
    LEVELS,
    TelemetryEvent,
    TelemetryLog,
    sanitize_json_value,
)
from .tracer import NOOP_TRACER, NoopTracer, RecordingTracer, Tracer

__all__ = [
    "CATEGORIES",
    "ConvergenceMonitor",
    "HistogramStats",
    "LEVELS",
    "NOOP_TRACER",
    "NoopTracer",
    "ProfileReport",
    "RecordingTracer",
    "RunTelemetry",
    "SIGNALS",
    "SeriesKey",
    "SeriesPoint",
    "Span",
    "SpanKind",
    "TRACE_FORMAT_VERSION",
    "TelemetryCollector",
    "TelemetryEvent",
    "TelemetryLog",
    "TimeSeries",
    "Timer",
    "TraceData",
    "Tracer",
    "format_profile",
    "format_value",
    "percentile",
    "profile_spans",
    "profile_trace",
    "read_trace",
    "render_collector",
    "render_snapshots",
    "render_status",
    "sanitize_json_value",
    "sanitize_metric_name",
    "span_from_dict",
    "span_to_dict",
    "trace_to_jsonl",
]
