"""Tracers: build the span tree, or cost nothing.

Two implementations of the same small surface:

* :class:`NoopTracer` — the default everywhere. Its :meth:`~Tracer.span`
  context manager is a shared, reusable null object; no spans are
  allocated, no clock is read, so an un-traced run is byte-identical to a
  run on a build without tracing at all.
* :class:`RecordingTracer` — builds :class:`repro.observability.span.Span`
  trees. Bound to the run's :class:`repro.runtime.clock.SimulatedClock`
  by the iteration driver, it stamps each span with simulated start/end
  times, wall-clock durations, and the per-category cost deltas that
  accrued while the span was open.

Neither tracer ever *charges* the simulated clock — tracing observes the
simulation, it must not perturb it.
"""

from __future__ import annotations

import time
from typing import Any

from .span import Span, SpanKind


class _NullSpan:
    """Stand-in yielded by the no-op tracer; swallows all annotation."""

    __slots__ = ()

    def set_attribute(self, name: str, value: Any) -> None:
        pass


class _NullContext:
    """A reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class Tracer:
    """The tracing surface the engine calls into.

    The base class *is* the no-op implementation; every method is safe to
    call unconditionally from hot paths. Code that would do real work just
    to feed the tracer (e.g. computing per-partition record counts) should
    guard on :attr:`enabled` first.
    """

    #: True only for tracers that actually record.
    enabled: bool = False

    def bind(self, clock: Any) -> None:
        """Attach the simulated clock that stamps span times.

        Iteration drivers call this once per run, before the run span
        opens. ``clock`` must expose ``now`` and ``accounts()``.
        """

    def span(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any):
        """Open a span as a context manager yielding the span object."""
        return _NULL_CONTEXT

    def point(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any) -> None:
        """Record an instantaneous child span of the currently open span."""

    @property
    def roots(self) -> list[Span]:
        """Top-level spans recorded so far (empty for the no-op tracer)."""
        return []

    @property
    def root(self) -> Span | None:
        """The first top-level span (the run span), or ``None``."""
        return None


class NoopTracer(Tracer):
    """Explicitly-named alias of the no-op base class."""


#: the shared default tracer; safe to use from any number of runs at once
#: because it keeps no state whatsoever.
NOOP_TRACER = NoopTracer()


class _SpanContext:
    """Context manager that closes a recording span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "RecordingTracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._close(self._span)


class RecordingTracer(Tracer):
    """Builds the span tree of one run.

    A tracer instance is single-run: create a fresh one per run (or call
    :meth:`reset` between runs). It is bound to the run's simulated clock
    by the iteration driver; until then spans carry sim time 0.0.
    """

    enabled = True

    def __init__(self) -> None:
        self._clock: Any = None
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._start_accounts: dict[int, dict[str, float]] = {}
        self._next_id = 0

    # -- Tracer surface ----------------------------------------------------

    def bind(self, clock: Any) -> None:
        self._clock = clock

    def span(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any):
        span = self._open(name, kind, attributes)
        return _SpanContext(self, span)

    def point(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any) -> None:
        span = self._open(name, kind, attributes)
        self._close(span)

    @property
    def roots(self) -> list[Span]:
        return list(self._roots)

    @property
    def root(self) -> Span | None:
        return self._roots[0] if self._roots else None

    # -- recording machinery -----------------------------------------------

    def _now(self) -> float:
        return float(self._clock.now) if self._clock is not None else 0.0

    def _accounts(self) -> dict[str, float]:
        if self._clock is None:
            return {}
        return {category.value: secs for category, secs in self._clock.accounts().items()}

    def _open(self, name: str, kind: SpanKind, attributes: dict[str, Any]) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            kind=kind,
            sim_start=self._now(),
            wall_start=time.perf_counter(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            attributes=dict(attributes),
        )
        self._next_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        self._start_accounts[span.span_id] = self._accounts()
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            # Close any forgotten inner spans first so the tree stays sane
            # even if an exception unwound past an un-exited context.
            while self._stack and self._stack[-1] is not span:
                self._close(self._stack[-1])
            if not self._stack:
                return
        self._stack.pop()
        span.sim_end = self._now()
        span.wall_end = time.perf_counter()
        started = self._start_accounts.pop(span.span_id, {})
        current = self._accounts()
        costs = {
            category: secs - started.get(category, 0.0)
            for category, secs in current.items()
            if secs - started.get(category, 0.0) != 0.0
        }
        span.costs = costs

    def reset(self) -> None:
        """Drop all recorded spans (for reuse across runs in tests)."""
        self._roots.clear()
        self._stack.clear()
        self._start_accounts.clear()
        self._next_id = 0
