"""The span tree.

A :class:`Span` is one timed region of a run. Spans nest — the engine
produces a ``run → superstep → operator → partition`` tree (with extra
recovery-phase spans below the superstep that a failure struck) — and
every span carries *two* clocks:

* the **simulated** interval (``sim_start``/``sim_end``), taken from the
  :class:`repro.runtime.clock.SimulatedClock`, which is what experiments
  reason about, and
* the **wall-clock** duration (``wall_duration``), which tells you where
  the reproduction itself spends real time.

Additionally each span records the simulated cost-category deltas that
accrued while it was open (``costs``, inclusive of children); the
recovery-cost profiler (:mod:`repro.observability.profile`) turns those
into the per-category breakdown.

This module is self-contained (stdlib only) so the rest of the engine can
import it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class SpanKind(enum.Enum):
    """What part of the engine a span covers.

    The profiler keys off these: costs inside a ``CHECKPOINT`` /
    ``ROLLBACK`` / ``RESTART`` / ``COMPENSATION`` span are attributed to
    that recovery phase regardless of their low-level clock category.
    """

    RUN = "run"
    SUPERSTEP = "superstep"
    OPERATOR = "operator"
    PARTITION = "partition"
    RECOVERY = "recovery"
    CHECKPOINT = "checkpoint"
    ROLLBACK = "rollback"
    RESTART = "restart"
    COMPENSATION = "compensation"
    REPLAY = "replay"
    PHASE = "phase"


@dataclass
class Span:
    """One node of the span tree.

    Attributes:
        span_id: id unique within one trace (assigned by the tracer).
        name: human-readable label, e.g. ``op:candidate-label``.
        kind: the :class:`SpanKind`.
        sim_start: simulated clock when the span opened.
        sim_end: simulated clock when it closed (``None`` while open).
        wall_start: ``time.perf_counter()`` at open (0.0 for spans
            reconstructed from a trace file).
        wall_end: ``time.perf_counter()`` at close, or ``None``.
        parent_id: the enclosing span's id, or ``None`` for the root.
        attributes: free-form payload (operator name, superstep index,
            record counts, recovery outcome, ...).
        costs: simulated seconds charged per cost-category *while this
            span was open* — inclusive of child spans.
        children: nested spans, in open order.
    """

    span_id: int
    name: str
    kind: SpanKind = SpanKind.PHASE
    sim_start: float = 0.0
    sim_end: float | None = None
    wall_start: float = 0.0
    wall_end: float | None = None
    parent_id: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    # -- timing ------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.sim_end is None

    @property
    def sim_duration(self) -> float:
        """Simulated seconds the span covers (0.0 while still open)."""
        if self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        """Wall-clock seconds the span took (0.0 while still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    def self_costs(self) -> dict[str, float]:
        """Category costs charged in this span *excluding* child spans."""
        own = dict(self.costs)
        for child in self.children:
            for category, seconds in child.costs.items():
                own[category] = own.get(category, 0.0) - seconds
        return {cat: secs for cat, secs in own.items() if abs(secs) > 0.0}

    def total_cost(self) -> float:
        """Sum of all category costs (inclusive of children)."""
        return sum(self.costs.values())

    # -- attributes --------------------------------------------------------

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    # -- traversal ---------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: SpanKind) -> list["Span"]:
        """All descendant spans (including self) of one kind."""
        return [span for span in self.walk() if span.kind is kind]

    def __repr__(self) -> str:
        state = "open" if self.is_open else f"{self.sim_duration:.6f}s"
        return f"Span(#{self.span_id} {self.name!r} {self.kind.value} {state})"
