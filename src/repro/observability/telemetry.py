"""Live telemetry: bounded time series sampled from running jobs.

The recovery-cost profiler and the JSONL traces explain a run *after* it
finished; this module watches runs *while they execute*. Three pieces:

* :class:`TimeSeries` — one metric's history as a bounded ring buffer of
  ``(wall_time, sim_time, value)`` points with a drop counter; old
  points fall off, memory stays O(capacity) however long the service
  lives.
* :class:`TelemetryCollector` — the sampler. Sources (the service's
  :class:`repro.runtime.metrics.MetricsRegistry`, each running job's
  per-run registry, the shared parallel-backend registries) register
  with a scope and optional ``(job_id, attempt)`` correlation; the
  collector periodically takes each registry's *atomic*
  ``snapshot_all()`` and appends every counter and gauge to the matching
  series. Sampling is read-only and wall-clock driven — it never touches
  simulated clocks, RNGs or run state, so results are bit-identical with
  the collector on or off.
* :class:`RunTelemetry` — the per-attempt bundle the iteration drivers
  accept: it registers the run's registry with the collector, mirrors
  the run's engine events into the level-tagged
  :class:`~repro.observability.telemetry_log.TelemetryLog` with
  correlation ids, and feeds each superstep's stats to a
  :class:`~repro.observability.convergence.ConvergenceMonitor`.

Everything is duck-typed (a "registry" is anything with
``snapshot_all()``; a "clock" anything with ``.now``), keeping this
package a leaf with no engine imports.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .convergence import ConvergenceMonitor
from .telemetry_log import TelemetryLog


@dataclass(frozen=True)
class SeriesKey:
    """Identity of one time series: metric name plus correlation ids."""

    metric: str
    job_id: int | None = None
    attempt: int | None = None

    def labels(self) -> dict[str, str]:
        """The key's correlation ids as exposition labels."""
        labels: dict[str, str] = {}
        if self.job_id is not None:
            labels["job_id"] = str(self.job_id)
        if self.attempt is not None:
            labels["attempt"] = str(self.attempt)
        return labels


@dataclass(frozen=True)
class SeriesPoint:
    """One sample: wall-clock stamp, simulated stamp (if any), value."""

    wall_time: float
    sim_time: float | None
    value: float


class TimeSeries:
    """A bounded ring buffer of :class:`SeriesPoint`."""

    def __init__(self, key: SeriesKey, capacity: int = 512, origin: str = "sampled"):
        if capacity < 1:
            raise ValueError(f"time series capacity must be >= 1, got {capacity}")
        self.key = key
        self.capacity = capacity
        #: ``"sampled"`` (swept from a registry) or ``"recorded"``
        #: (pushed directly, e.g. per-superstep run series).
        self.origin = origin
        self._points: deque[SeriesPoint] = deque(maxlen=capacity)
        self._appended = 0

    def append(
        self, value: float, wall_time: float | None = None, sim_time: float | None = None
    ) -> None:
        self._points.append(
            SeriesPoint(
                wall_time=wall_time if wall_time is not None else time.time(),
                sim_time=sim_time,
                value=float(value),
            )
        )
        self._appended += 1

    @property
    def dropped(self) -> int:
        """Points evicted by the ring buffer."""
        return self._appended - len(self._points)

    @property
    def last(self) -> SeriesPoint | None:
        return self._points[-1] if self._points else None

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[SeriesPoint]:
        return iter(list(self._points))

    def points(self) -> list[SeriesPoint]:
        return list(self._points)

    def values(self) -> list[float]:
        return [p.value for p in self._points]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (for dashboards / tests)."""
        return {
            "metric": self.key.metric,
            "job_id": self.key.job_id,
            "attempt": self.key.attempt,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "points": [
                {"wall_time": p.wall_time, "sim_time": p.sim_time, "value": p.value}
                for p in self._points
            ],
        }


@dataclass
class _Source:
    """One registered registry the collector sweeps."""

    registry: Any
    scope: str
    job_id: int | None
    attempt: int | None
    clock: Any | None


class TelemetryCollector:
    """Samples registered metric registries into bounded time series.

    Thread-safe throughout: the job service's worker threads register and
    unregister run registries while the sampler thread sweeps.

    Args:
        interval: background sampling period in wall seconds.
        series_capacity: ring size of each time series.
        log: the telemetry event log health events and lifecycle
            markers land in (created bounded-default when omitted).
    """

    def __init__(
        self,
        interval: float = 0.25,
        series_capacity: int = 512,
        log: TelemetryLog | None = None,
    ):
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        if series_capacity < 1:
            raise ValueError(f"series capacity must be >= 1, got {series_capacity}")
        self.interval = interval
        self.series_capacity = series_capacity
        self.log = log if log is not None else TelemetryLog()
        self._lock = threading.Lock()
        self._sources: dict[int, _Source] = {}
        self._next_token = 0
        self._series: dict[SeriesKey, TimeSeries] = {}
        self._samples = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- sources -----------------------------------------------------------------

    def register(
        self,
        registry: Any,
        *,
        scope: str = "service",
        job_id: int | None = None,
        attempt: int | None = None,
        clock: Any | None = None,
    ) -> int:
        """Start sampling ``registry``; returns an unregistration token.

        ``clock`` (anything with ``.now``) stamps this source's points
        with simulated time alongside the wall clock.
        """
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._sources[token] = _Source(registry, scope, job_id, attempt, clock)
        return token

    def unregister(self, token: int, final_sample: bool = True) -> None:
        """Stop sampling a source (by default after one last sweep of it)."""
        with self._lock:
            source = self._sources.pop(token, None)
        if source is not None and final_sample:
            self._sample_source(source)

    @property
    def sources(self) -> int:
        """How many registries are currently being sampled."""
        with self._lock:
            return len(self._sources)

    # -- sampling ----------------------------------------------------------------

    def sample(self) -> None:
        """Take one sweep over every registered source, now."""
        with self._lock:
            sources = list(self._sources.values())
            self._samples += 1
        for source in sources:
            self._sample_source(source)

    def _sample_source(self, source: _Source) -> None:
        snapshot = source.registry.snapshot_all(include_histograms=False)
        wall = time.time()
        sim = None
        if source.clock is not None:
            sim = getattr(source.clock, "now", None)
        for name, value in snapshot["counters"].items():
            self._append(name, value, source, wall, sim)
        for name, value in snapshot["gauges"].items():
            self._append(name, value, source, wall, sim)

    def _append(
        self,
        metric: str,
        value: float,
        source: _Source,
        wall: float,
        sim: float | None,
    ) -> None:
        key = SeriesKey(metric=metric, job_id=source.job_id, attempt=source.attempt)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = TimeSeries(key, self.series_capacity, origin="sampled")
                self._series[key] = series
            series.append(value, wall_time=wall, sim_time=sim)

    def record(
        self,
        metric: str,
        value: float,
        *,
        job_id: int | None = None,
        attempt: int | None = None,
        sim_time: float | None = None,
    ) -> None:
        """Append one point directly (drivers push per-superstep values —
        updates, L1 — that never live in a registry)."""
        self.record_batch(((metric, value),), job_id=job_id, attempt=attempt, sim_time=sim_time)

    def record_batch(
        self,
        values: Any,
        *,
        job_id: int | None = None,
        attempt: int | None = None,
        sim_time: float | None = None,
    ) -> None:
        """Append several ``(metric, value)`` points under one lock and one
        wall stamp — the drivers push a handful of series per superstep,
        and batching keeps that on the hot path cheap."""
        wall = time.time()
        with self._lock:
            for metric, value in values:
                key = SeriesKey(metric=metric, job_id=job_id, attempt=attempt)
                series = self._series.get(key)
                if series is None:
                    series = TimeSeries(key, self.series_capacity, origin="recorded")
                    self._series[key] = series
                series.append(value, wall_time=wall, sim_time=sim_time)

    # -- access ------------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Background/manual sweeps taken so far."""
        with self._lock:
            return self._samples

    def series(
        self, metric: str, job_id: int | None = None, attempt: int | None = None
    ) -> TimeSeries | None:
        """The series for ``(metric, job_id, attempt)``, if any."""
        with self._lock:
            return self._series.get(SeriesKey(metric, job_id, attempt))

    def series_keys(self) -> list[SeriesKey]:
        """All series identities collected so far, sorted by metric."""
        with self._lock:
            return sorted(
                self._series,
                key=lambda k: (k.metric, k.job_id or -1, k.attempt or -1),
            )

    def all_series(self) -> list[TimeSeries]:
        with self._lock:
            return list(self._series.values())

    def last_values(self, origin: str | None = None) -> dict[SeriesKey, float]:
        """The newest point of every series (the "current" dashboard view),
        optionally restricted to one origin (``"sampled"``/``"recorded"``)."""
        with self._lock:
            return {
                key: series.last.value
                for key, series in self._series.items()
                if series.last is not None
                and (origin is None or series.origin == origin)
            }

    def registered_snapshots(self) -> list[tuple[dict[str, str], dict[str, Any]]]:
        """``(labels, snapshot_all)`` per live source, for exposition."""
        with self._lock:
            sources = list(self._sources.values())
        out: list[tuple[dict[str, str], dict[str, Any]]] = []
        for source in sources:
            labels = {"scope": source.scope}
            if source.job_id is not None:
                labels["job_id"] = str(source.job_id)
            if source.attempt is not None:
                labels["attempt"] = str(source.attempt)
            out.append((labels, source.registry.snapshot_all()))
        return out

    # -- background thread -------------------------------------------------------

    def start(self) -> None:
        """Start the background sampler (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-telemetry", daemon=True
            )
            self._thread.start()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background sampler and optionally sweep once more."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        if final_sample:
            self.sample()

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def __enter__(self) -> "TelemetryCollector":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


@dataclass
class RunTelemetry:
    """Per-attempt telemetry bundle handed to an iteration driver.

    The driver calls :meth:`bind_runtime` once its runtime exists,
    :meth:`on_superstep` after every superstep, and :meth:`close` in its
    cleanup path. Everything here observes; nothing charges the
    simulation.
    """

    collector: TelemetryCollector | None = None
    monitor: ConvergenceMonitor | None = None
    log: TelemetryLog | None = None
    job_id: int | None = None
    attempt: int | None = None
    #: per-superstep series recorded via ``collector.record``.
    series_metrics: tuple[str, ...] = (
        "run.updates",
        "run.l1_delta",
        "run.workset_size",
        "run.converged",
        "run.messages",
    )
    _token: int | None = field(default=None, repr=False)
    _events: Any = field(default=None, repr=False)
    _forwarder: Callable[[Any], None] | None = field(default=None, repr=False)
    _clock: Any = field(default=None, repr=False)

    def bind_runtime(
        self, metrics: Any, clock: Any, events: Any, job: str | None = None
    ) -> None:
        """Attach a run's registry, simulated clock and engine event log."""
        if self.collector is not None:
            self._token = self.collector.register(
                metrics,
                scope="run" if job is None else f"run:{job}",
                job_id=self.job_id,
                attempt=self.attempt,
                clock=clock,
            )
        self._clock = clock
        if self.log is not None and events is not None:
            log, job_id, attempt = self.log, self.job_id, self.attempt

            def _forward(event: Any) -> None:
                log.emit(
                    f"engine.{event.kind.value}",
                    "debug",
                    job_id=job_id,
                    attempt=attempt,
                    superstep=event.superstep,
                    sim_time=event.time,
                    **event.details,
                )

            events.subscribe(_forward)
            self._events = events
            self._forwarder = _forward

    def on_superstep(self, stats: Any) -> None:
        """Feed one superstep's stats to the monitor and the series."""
        if self.monitor is not None:
            self.monitor.observe(stats)
        if self.collector is not None:
            batch = [
                (metric, value)
                for metric, value in (
                    ("run.updates", stats.updates),
                    ("run.l1_delta", stats.l1_delta),
                    ("run.workset_size", stats.workset_size),
                    ("run.converged", stats.converged),
                    ("run.messages", stats.messages),
                )
                if metric in self.series_metrics and value is not None
            ]
            if batch:
                self.collector.record_batch(
                    batch,
                    job_id=self.job_id,
                    attempt=self.attempt,
                    sim_time=stats.sim_time_end,
                )

    def set_target(self, target: float | None) -> None:
        """Forward the termination threshold to the ETA estimator."""
        if self.monitor is not None and target is not None:
            self.monitor.target = target

    def close(self) -> None:
        """Unregister from the collector and the engine event log."""
        if self.collector is not None and self._token is not None:
            self.collector.unregister(self._token)
            self._token = None
        if self._events is not None and self._forwarder is not None:
            self._events.unsubscribe(self._forwarder)
            self._events = None
            self._forwarder = None
