"""SLO health reports rendered as a ``repro status`` / ``repro top`` frame.

:meth:`repro.service.api.JobService.health` assembles a machine-readable
dict — queue depth, pool utilization, p50/p95/p99 latencies, per-job
convergence snapshots, recent alerts. This module is the presentation
half: :func:`render_status` turns that dict into the terminal frame the
``serve --status-interval`` CLI prints, in the spirit of ``top``::

    === repro status · 12.3s up ===
    queue   depth=7/64        in-flight=4/4 slots (100% busy)
    jobs    submitted=50 ok=31 failed=0 cancelled=0 timed-out=1 retries=2
    latency queue-wait p50=1.2ms p95=8.0ms p99=11.2ms
            job        p50=90ms  p95=310ms p99=480ms
    backends processes x4: util=82% stolen=12 fallbacks=0
    running
      17 pagerank-seed42    attempt 0  superstep 12  l1=3.1e-03 rate=0.62 eta=4
      23 cc-seed99          attempt 1  superstep  3  workset=88 rate=0.41 eta=3  STALLED
    alerts
      [warning] stall job=17 superstep=9 (no progress in 5 supersteps)

The renderer is pure (dict in, string out) and tolerant: every section
renders from whatever keys are present, so it works on degraded reports
(telemetry off, no jobs running) and on health dicts loaded from JSON.
"""

from __future__ import annotations

from typing import Any, Mapping


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_float(value: float | None, digits: int = 2) -> str:
    if value is None:
        return "-"
    if value != 0 and (abs(value) < 0.01 or abs(value) >= 10000):
        return f"{value:.1e}"
    return f"{value:.{digits}f}"


def _fmt_pct(value: float | None) -> str:
    return "-" if value is None else f"{value * 100.0:.0f}%"


def _latency_line(name: str, stats: Mapping[str, Any] | None) -> str:
    if not stats:
        return f"  {name:<11} -"
    return (
        f"  {name:<11} p50={_fmt_seconds(stats.get('p50'))} "
        f"p95={_fmt_seconds(stats.get('p95'))} "
        f"p99={_fmt_seconds(stats.get('p99'))} "
        f"(n={stats.get('count', 0)})"
    )


def _job_line(job: Mapping[str, Any]) -> str:
    parts = [
        f"  {job.get('job_id', '?'):>4} {str(job.get('name', '?')):<26}",
        f"{str(job.get('state', '?')):<9}",
    ]
    attempt = job.get("attempt")
    if attempt is not None:
        parts.append(f"attempt={attempt}")
    convergence = job.get("convergence") or {}
    superstep = convergence.get("superstep")
    if superstep is not None:
        parts.append(f"superstep={superstep}")
    residual = convergence.get("residual")
    if residual is not None:
        signal = convergence.get("signal") or "residual"
        parts.append(f"{signal}={_fmt_float(residual)}")
    rate = convergence.get("rate")
    if rate is not None:
        parts.append(f"rate={_fmt_float(rate)}")
    eta = convergence.get("eta_supersteps")
    if eta is not None:
        parts.append(f"eta={eta}")
    if convergence.get("recovering"):
        parts.append("RECOVERING")
    if convergence.get("diverging"):
        parts.append("DIVERGING")
    if convergence.get("stalled"):
        parts.append("STALLED")
    return " ".join(parts)


def render_status(health: Mapping[str, Any], max_jobs: int = 12, max_alerts: int = 6) -> str:
    """One ``repro status`` frame for a :meth:`JobService.health` dict."""
    lines: list[str] = []
    wall = health.get("wall_seconds")
    title = "repro status"
    if wall is not None:
        title += f" · {wall:.1f}s up"
    if not health.get("accepting", True):
        title += " · draining"
    lines.append(f"=== {title} ===")

    queue = health.get("queue") or {}
    pool = health.get("pool") or {}
    capacity = queue.get("capacity")
    depth_text = f"depth={queue.get('depth', 0)}"
    if capacity is not None:
        depth_text += f"/{capacity}"
    pool_text = (
        f"in-flight={pool.get('in_flight', 0)}/{pool.get('size', '?')} slots"
    )
    busy = pool.get("utilization")
    if busy is not None:
        pool_text += f" ({_fmt_pct(busy)} busy)"
    discarded = queue.get("discarded")
    if discarded:
        depth_text += f" discarded={discarded}"
    lines.append(f"queue   {depth_text:<18} {pool_text}")

    fairness = health.get("fairness") or {}
    if fairness.get("enabled"):
        shed_text = (
            f"fair    shed={fairness.get('shed_jobs', 0)} "
            f"deadline-rejects={fairness.get('deadline_rejects', 0)}"
        )
        lines.append(shed_text)
        tenants = fairness.get("tenants") or {}
        for tenant in sorted(tenants):
            stats = tenants[tenant]
            lines.append(
                f"  tenant {tenant:<12} w={stats.get('weight', 1)} "
                f"queued={stats.get('queued', 0)} "
                f"served={stats.get('dequeued', 0)} "
                f"shed={stats.get('shed', 0)}"
            )

    counters = health.get("counters") or {}
    if counters:
        lines.append(
            "jobs    "
            f"submitted={counters.get('submitted', 0)} "
            f"ok={counters.get('succeeded', 0)} "
            f"failed={counters.get('failed', 0)} "
            f"cancelled={counters.get('cancelled', 0)} "
            f"timed-out={counters.get('timed_out', 0)} "
            f"retries={counters.get('retries', 0)} "
            f"rejected={counters.get('rejected', 0)}"
        )

    latency = health.get("latency") or {}
    if latency:
        lines.append("latency")
        lines.append(_latency_line("queue-wait", latency.get("queue_wait")))
        lines.append(_latency_line("attempt", latency.get("attempt")))
        lines.append(_latency_line("job", latency.get("job")))

    backends = health.get("backends") or []
    for backend in backends:
        text = (
            f"backend {backend.get('name', '?')} x{backend.get('workers', '?')}: "
            f"util={_fmt_pct(backend.get('utilization'))} "
            f"chunks={backend.get('chunks_completed', 0)}"
        )
        stolen = backend.get("chunks_stolen")
        if stolen:
            text += f" stolen={stolen}"
        fallbacks = backend.get("inline_fallbacks")
        if fallbacks:
            text += f" inline-fallbacks={fallbacks}"
        respawns = backend.get("worker_respawns")
        if respawns:
            text += f" respawns={respawns}"
        lines.append(text)

    jobs = health.get("jobs") or []
    if jobs:
        lines.append(f"running ({len(jobs)})")
        for job in jobs[:max_jobs]:
            lines.append(_job_line(job))
        if len(jobs) > max_jobs:
            lines.append(f"  ... and {len(jobs) - max_jobs} more")

    alerts = health.get("alerts") or []
    if alerts:
        lines.append(f"alerts ({len(alerts)})")
        for alert in alerts[-max_alerts:]:
            where = []
            if alert.get("job_id") is not None:
                where.append(f"job={alert['job_id']}")
            if alert.get("superstep") is not None:
                where.append(f"superstep={alert['superstep']}")
            details = alert.get("details") or {}
            detail_text = " ".join(f"{k}={v}" for k, v in sorted(details.items()))
            lines.append(
                f"  [{alert.get('level', '?')}] {alert.get('kind', '?')} "
                + " ".join(where)
                + (f" ({detail_text})" if detail_text else "")
            )

    telemetry = health.get("telemetry") or {}
    if telemetry:
        lines.append(
            "telemetry "
            + ("on" if telemetry.get("enabled") else "off")
            + f" · samples={telemetry.get('samples', 0)}"
            + f" series={telemetry.get('series', 0)}"
            + f" events={telemetry.get('events', 0)}"
            + (
                f" dropped={telemetry['events_dropped']}"
                if telemetry.get("events_dropped")
                else ""
            )
        )
    return "\n".join(lines)
