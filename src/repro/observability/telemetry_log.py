"""Structured, level-tagged telemetry event log.

The engine's per-run :class:`repro.runtime.events.EventLog` records what
*happened inside the simulation* (superstep boundaries, failures,
compensation), stamped with simulated time. This module is the layer
above: one log per service (or per standalone run, when asked for) that
correlates happenings across many concurrent jobs —

* every entry carries a **level** (``debug``/``info``/``warning``/``error``)
  and **correlation ids** (``job_id`` → ``attempt`` → ``superstep``), so a
  stall warning from job 17's second attempt is attributable at a glance;
* the in-memory buffer is a **bounded ring** with a drop counter — a
  service that runs for days holds a window, not its whole history;
* an optional **streaming JSONL writer** appends every entry to disk the
  moment it is emitted, so nothing is lost to the ring even at tiny
  capacities and the file can be tailed live (``tail -f``) or loaded
  into pandas/duckdb with one call.

All payloads are sanitized to *strict* JSON before serialization:
``NaN`` becomes ``null`` (it means "no measurement", mirroring the
NaN-safe CSV cells of :mod:`repro.analysis.export`) and ``±inf`` becomes
the strings ``"inf"`` / ``"-inf"`` — ``json.dumps`` would otherwise emit
bare ``NaN``/``Infinity`` tokens that most parsers reject.

Like the rest of :mod:`repro.observability` this module imports nothing
from the engine; emitters hand it plain values.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, TextIO

#: the levels an entry may carry, in increasing severity.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


def sanitize_json_value(value: Any) -> Any:
    """Make ``value`` strict-JSON-safe, recursively.

    Non-finite floats are rewritten (NaN → ``None``, ±inf → ``"inf"`` /
    ``"-inf"``); dicts and lists/tuples are walked; everything else
    unknown falls back to ``str()`` so an exotic payload degrades to a
    readable string instead of a serialization error.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): sanitize_json_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json_value(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class TelemetryEvent:
    """One telemetry log entry.

    Attributes:
        wall_time: ``time.time()`` at emission (epoch seconds).
        level: one of :data:`LEVELS`.
        kind: free-form event name, e.g. ``"stall"`` or ``"job_finished"``.
        job_id: the job the entry belongs to (``None`` = service scope).
        attempt: the job attempt (0-based; ``None`` outside any attempt).
        superstep: the superstep (0-based; ``None`` outside any run).
        sim_time: the run's simulated clock, when known.
        details: free-form payload (JSON-sanitized at serialization).
    """

    wall_time: float
    level: str
    kind: str
    job_id: int | None = None
    attempt: int | None = None
    superstep: int | None = None
    sim_time: float | None = None
    details: dict[str, Any] = field(default_factory=dict, compare=False)

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-ready form (non-finite floats sanitized)."""
        return sanitize_json_value(
            {
                "wall_time": self.wall_time,
                "level": self.level,
                "kind": self.kind,
                "job_id": self.job_id,
                "attempt": self.attempt,
                "superstep": self.superstep,
                "sim_time": self.sim_time,
                "details": dict(self.details),
            }
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryEvent":
        """Rebuild an entry from :meth:`to_dict` output."""
        return cls(
            wall_time=float(data["wall_time"]),
            level=str(data["level"]),
            kind=str(data["kind"]),
            job_id=data.get("job_id"),
            attempt=data.get("attempt"),
            superstep=data.get("superstep"),
            sim_time=data.get("sim_time"),
            details=dict(data.get("details", {})),
        )


class TelemetryLog:
    """Bounded, thread-safe telemetry log with optional streaming output.

    Args:
        capacity: in-memory ring size (``None`` = unbounded; the service
            default is bounded — see
            :class:`repro.config.TelemetryConfig`).
        path: when given, every entry is appended to this JSONL file as
            it is emitted. The writer is opened lazily on first emit and
            flushed per line so the file can be tailed live.
        min_level: entries below this level are counted but neither
            buffered nor written (default ``"debug"`` keeps everything).
    """

    def __init__(
        self,
        capacity: int | None = 1024,
        path: str | Path | None = None,
        min_level: str = "debug",
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"telemetry log capacity must be >= 1 or None, got {capacity}")
        if min_level not in _LEVEL_RANK:
            raise ValueError(f"min_level must be one of {LEVELS}, got {min_level!r}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.min_level = min_level
        self._lock = threading.Lock()
        self._events: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._emitted = 0
        self._suppressed = 0
        self._writer: TextIO | None = None

    # -- emission ----------------------------------------------------------------

    def emit(
        self,
        kind: str,
        level: str = "info",
        *,
        job_id: int | None = None,
        attempt: int | None = None,
        superstep: int | None = None,
        sim_time: float | None = None,
        **details: Any,
    ) -> TelemetryEvent:
        """Record one entry (and stream it, when a path is configured)."""
        if level not in _LEVEL_RANK:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        event = TelemetryEvent(
            wall_time=time.time(),
            level=level,
            kind=kind,
            job_id=job_id,
            attempt=attempt,
            superstep=superstep,
            sim_time=sim_time,
            details=dict(details),
        )
        with self._lock:
            if _LEVEL_RANK[level] < _LEVEL_RANK[self.min_level]:
                self._suppressed += 1
                return event
            self._events.append(event)
            self._emitted += 1
            if self.path is not None:
                if self._writer is None:
                    self._writer = self.path.open("a")
                self._writer.write(json.dumps(event.to_dict()) + "\n")
                self._writer.flush()
        return event

    # -- introspection -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Entries evicted from the in-memory ring (streamed entries are
        never lost — eviction affects only the buffer)."""
        with self._lock:
            return self._emitted - len(self._events)

    @property
    def emitted(self) -> int:
        """Total entries accepted (excluding level-suppressed ones)."""
        with self._lock:
            return self._emitted

    @property
    def suppressed(self) -> int:
        """Entries discarded because they fell below ``min_level``."""
        with self._lock:
            return self._suppressed

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self.events())

    def events(
        self,
        kind: str | None = None,
        min_level: str | None = None,
        job_id: int | None = None,
    ) -> list[TelemetryEvent]:
        """Buffered entries, oldest first, optionally filtered."""
        with self._lock:
            entries = list(self._events)
        if kind is not None:
            entries = [e for e in entries if e.kind == kind]
        if min_level is not None:
            rank = _LEVEL_RANK[min_level]
            entries = [e for e in entries if _LEVEL_RANK[e.level] >= rank]
        if job_id is not None:
            entries = [e for e in entries if e.job_id == job_id]
        return entries

    def of_kind(self, kind: str) -> list[TelemetryEvent]:
        """Shorthand for :meth:`events` filtered to one kind."""
        return self.events(kind=kind)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the streaming writer (idempotent)."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def __enter__(self) -> "TelemetryLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- serialization -----------------------------------------------------------

    @classmethod
    def read_jsonl(cls, path: str | Path) -> list[TelemetryEvent]:
        """Load entries streamed by a log (blank lines ignored)."""
        entries: list[TelemetryEvent] = []
        with Path(path).open() as handle:
            for raw in handle:
                raw = raw.strip()
                if raw:
                    entries.append(TelemetryEvent.from_dict(json.loads(raw)))
        return entries
