"""Flink-like dataflow API.

Programs are expressed as DAGs of named operators over datasets, exactly
as §2.1 of the paper describes: vertices are tasks running user-defined
functions, edges are data exchanges. The API surface mirrors the subset of
Flink's DataSet API the paper's dataflows (Figure 1) need — ``map``,
``flat_map``, ``filter``, ``reduce_by_key``, ``group_reduce``, ``join``,
``co_group``, ``cross``, ``union`` — plus plan rendering so the Figure 1
dataflows can be regenerated as text/DOT.

The logical plan is engine-agnostic; :mod:`repro.runtime.executor`
executes it over hash-partitioned data with simulated costs.
"""

from .datatypes import KeySpec, first_field, second_field
from .functions import (
    CoGroupFunction,
    CrossFunction,
    FilterFunction,
    FlatMapFunction,
    JoinFunction,
    MapFunction,
    ReduceFunction,
)
from .invariants import InvariantAnalysis, analyze_invariants
from .operators import (
    CoGroupOperator,
    CrossOperator,
    FilterOperator,
    FlatMapOperator,
    GroupReduceOperator,
    JoinOperator,
    MapOperator,
    Operator,
    ReduceByKeyOperator,
    SourceOperator,
    UnionOperator,
)
from .optimizer import fuse_chains, optimize, push_filters_through_unions
from .plan import DataSet, Plan
from .rendering import plan_to_dot, plan_to_text

__all__ = [
    "CoGroupFunction",
    "CoGroupOperator",
    "CrossFunction",
    "CrossOperator",
    "DataSet",
    "FilterFunction",
    "FilterOperator",
    "FlatMapFunction",
    "FlatMapOperator",
    "GroupReduceOperator",
    "InvariantAnalysis",
    "JoinFunction",
    "JoinOperator",
    "KeySpec",
    "MapFunction",
    "MapOperator",
    "Operator",
    "Plan",
    "ReduceByKeyOperator",
    "ReduceFunction",
    "SourceOperator",
    "UnionOperator",
    "analyze_invariants",
    "first_field",
    "fuse_chains",
    "optimize",
    "plan_to_dot",
    "plan_to_text",
    "push_filters_through_unions",
    "second_field",
]
