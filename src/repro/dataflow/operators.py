"""Logical dataflow operators.

A plan is a DAG of these nodes. Each operator carries:

* a unique ``op_id`` within its plan,
* a human-readable ``name`` (the paper's dataflows name every operator —
  ``candidate-label``, ``label-update``, ``find-neighbors``, ... — and the
  metrics layer counts records per name),
* its input operators,
* the UDF (where applicable) and the key specs that drive partitioning.

Operators are pure descriptions; execution lives in
:mod:`repro.runtime.executor`.
"""

from __future__ import annotations

from ..errors import PlanError
from .datatypes import KeySpec
from .functions import (
    CoGroupFunction,
    CrossFunction,
    FilterFunction,
    FlatMapFunction,
    GroupReduceFunction,
    JoinFunction,
    MapFunction,
    ReduceFunction,
)


class Operator:
    """Base class of all logical operators."""

    #: subclasses set this to their operator-kind label used in rendering.
    kind = "operator"

    def __init__(self, op_id: int, name: str, inputs: list["Operator"]):
        if not name:
            raise PlanError("operators must have a non-empty name")
        self.op_id = op_id
        self.name = name
        self.inputs = list(inputs)

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def validate(self) -> None:
        """Subclasses check their structural invariants here."""

    def __repr__(self) -> str:
        ins = ", ".join(op.name for op in self.inputs)
        return f"{type(self).__name__}(#{self.op_id} {self.name!r} <- [{ins}])"


class SourceOperator(Operator):
    """A named input. At execution time a source is bound to a
    partitioned dataset (iterative state, a static input, ...)."""

    kind = "source"

    def __init__(self, op_id: int, name: str, partitioned_by: KeySpec | None = None):
        super().__init__(op_id, name, [])
        self.partitioned_by = partitioned_by

    def validate(self) -> None:
        if self.inputs:
            raise PlanError(f"source {self.name!r} cannot have inputs")


class MapOperator(Operator):
    """Applies a :class:`MapFunction` record-wise; partition-local."""

    kind = "map"

    def __init__(self, op_id: int, name: str, input_op: Operator, fn: MapFunction):
        super().__init__(op_id, name, [input_op])
        self.fn = fn


class FlatMapOperator(Operator):
    """Applies a :class:`FlatMapFunction` record-wise; partition-local.

    ``preserves_partitioning`` declares that the function never changes a
    record's key placement (e.g. a fused chain of pure filters), so the
    executor can keep the input's hash placement instead of dropping it.
    """

    kind = "flat_map"

    def __init__(
        self,
        op_id: int,
        name: str,
        input_op: Operator,
        fn: FlatMapFunction,
        *,
        preserves_partitioning: bool = False,
    ):
        super().__init__(op_id, name, [input_op])
        self.fn = fn
        self.preserves_partitioning = preserves_partitioning


class FilterOperator(Operator):
    """Keeps records matching a :class:`FilterFunction`; partition-local."""

    kind = "filter"

    def __init__(self, op_id: int, name: str, input_op: Operator, fn: FilterFunction):
        super().__init__(op_id, name, [input_op])
        self.fn = fn


class ReduceByKeyOperator(Operator):
    """Hash-partitions by ``key`` then folds each group with an
    associative :class:`ReduceFunction`. Output records are the folded
    group representatives (one per key)."""

    kind = "reduce"

    def __init__(
        self,
        op_id: int,
        name: str,
        input_op: Operator,
        key: KeySpec,
        fn: ReduceFunction,
    ):
        super().__init__(op_id, name, [input_op])
        self.key = key
        self.fn = fn


class GroupReduceOperator(Operator):
    """Hash-partitions by ``key`` then hands each whole group to a
    :class:`GroupReduceFunction`."""

    kind = "group_reduce"

    def __init__(
        self,
        op_id: int,
        name: str,
        input_op: Operator,
        key: KeySpec,
        fn: GroupReduceFunction,
    ):
        super().__init__(op_id, name, [input_op])
        self.key = key
        self.fn = fn


class JoinOperator(Operator):
    """Equi-join of two inputs on their respective key specs, applying a
    :class:`JoinFunction` per matching pair (inner join semantics).

    ``preserves`` optionally names which side's partitioning survives in
    the output ("left", "right" or None): when the UDF keeps the join key
    in the same field the executor can chain keyed operators without a
    re-shuffle.
    """

    kind = "join"

    def __init__(
        self,
        op_id: int,
        name: str,
        left: Operator,
        right: Operator,
        left_key: KeySpec,
        right_key: KeySpec,
        fn: JoinFunction,
        preserves: str | None = None,
    ):
        super().__init__(op_id, name, [left, right])
        self.left_key = left_key
        self.right_key = right_key
        self.fn = fn
        self.preserves = preserves

    def validate(self) -> None:
        if self.preserves not in (None, "left", "right"):
            raise PlanError(
                f"join {self.name!r}: preserves must be None, 'left' or 'right', "
                f"got {self.preserves!r}"
            )


class CoGroupOperator(Operator):
    """Co-group of two inputs on their key specs (full outer grouping)."""

    kind = "co_group"

    def __init__(
        self,
        op_id: int,
        name: str,
        left: Operator,
        right: Operator,
        left_key: KeySpec,
        right_key: KeySpec,
        fn: CoGroupFunction,
        preserves: str | None = None,
    ):
        super().__init__(op_id, name, [left, right])
        self.left_key = left_key
        self.right_key = right_key
        self.fn = fn
        self.preserves = preserves

    def validate(self) -> None:
        if self.preserves not in (None, "left", "right"):
            raise PlanError(
                f"co_group {self.name!r}: preserves must be None, 'left' or 'right', "
                f"got {self.preserves!r}"
            )


class CrossOperator(Operator):
    """Cartesian product of two inputs; the right side is broadcast to
    every partition of the left (how Flink executes small-side crosses,
    and how K-Means ships its centroids)."""

    kind = "cross"

    def __init__(
        self,
        op_id: int,
        name: str,
        left: Operator,
        right: Operator,
        fn: CrossFunction,
    ):
        super().__init__(op_id, name, [left, right])
        self.fn = fn


class UnionOperator(Operator):
    """Bag union of any number of inputs; partition-wise concatenation."""

    kind = "union"

    def __init__(self, op_id: int, name: str, inputs: list[Operator]):
        super().__init__(op_id, name, inputs)

    def validate(self) -> None:
        if len(self.inputs) < 2:
            raise PlanError(f"union {self.name!r} needs at least two inputs")
