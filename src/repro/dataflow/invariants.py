"""Loop-invariant subplan analysis.

An iteration executes the same step plan every superstep, but only some
of the plan's sources change between supersteps (the iterative state and
workset); the rest are *loop-invariant* — the graph's edges, transition
probabilities, dangling-vertex markers. Any operator whose entire
upstream closure touches only loop-invariant sources therefore produces
the exact same output every superstep, and re-executing it is pure
waste. *Spinning Fast Iterative Data Flows* (Ewen et al.) describes how
Flink caches such loop-invariant data across iterations;
:func:`repro.iteration._runtime.bind_statics` models the placement half
(statics are partitioned once), and this module supplies the analysis
half: which operators the
:class:`repro.runtime.cache.SuperstepExecutionCache` may serve from
cache instead of recomputing.

The analysis is a single topological sweep:

* a source is invariant iff its name is not in ``dynamic_sources``;
* any other operator is invariant iff **all** of its inputs are.

On top of the invariant set, :func:`analyze_invariants` also derives the
*build-side reuse* opportunities: joins and co-groups that are themselves
dynamic (one input changes every superstep) but whose other input is
invariant — there the executor cannot cache the operator's output, but it
can cache the hash index it builds over the invariant side (Flink keeps
the static build side of such joins resident across iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import PlanError
from .operators import CoGroupOperator, CrossOperator, JoinOperator, Operator, SourceOperator
from .plan import Plan


@dataclass(frozen=True)
class InvariantAnalysis:
    """Which parts of a step plan are loop-invariant.

    Attributes:
        plan_name: name of the analyzed plan.
        dynamic_sources: source names that change between supersteps.
        invariant_sources: source names bound to loop-invariant inputs.
        invariant_ops: op_ids of all invariant operators (sources
            included).
        cacheable_ops: op_ids of invariant *non-source* operators — the
            ones whose materialized output the executor may serve from
            cache (a source's output is just its binding; caching it
            would only alias the bound dataset).
        build_reuse: ``{join/co_group/cross op_id: ("left" | "right" |
            "both")}`` for dynamic binary operators with an invariant
            input — the sides whose build hash index (or, for a cross,
            broadcast copy) survives across supersteps. A cross only ever
            reuses its ``"right"`` (broadcast) side; its left side is
            partition-local and needs no index.
    """

    plan_name: str
    dynamic_sources: frozenset[str]
    invariant_sources: frozenset[str]
    invariant_ops: frozenset[int]
    cacheable_ops: frozenset[int]
    build_reuse: dict[int, str] = field(default_factory=dict)

    def is_invariant(self, op: Operator) -> bool:
        """Whether ``op``'s output is identical every superstep."""
        return op.op_id in self.invariant_ops

    def is_cacheable(self, op: Operator) -> bool:
        """Whether the executor may serve ``op``'s output from cache."""
        return op.op_id in self.cacheable_ops

    def reusable_build_sides(self, op: Operator) -> tuple[str, ...]:
        """The sides (``"left"``/``"right"``) of a dynamic join or
        co-group whose build index is loop-invariant; empty otherwise."""
        sides = self.build_reuse.get(op.op_id)
        if sides is None:
            return ()
        if sides == "both":
            return ("left", "right")
        return (sides,)


def analyze_invariants(
    plan: Plan, dynamic_sources: Iterable[str]
) -> InvariantAnalysis:
    """Classify every operator of ``plan`` as loop-invariant or dynamic.

    Args:
        plan: the step plan an iteration driver executes every superstep.
        dynamic_sources: names of the sources whose bindings change
            between supersteps (the state source; for delta iterations
            also the workset source). Every name must belong to a source
            of the plan.

    Returns:
        An :class:`InvariantAnalysis` over ``plan``.
    """
    dynamic = frozenset(dynamic_sources)
    source_names = {op.name for op in plan.sources()}
    unknown = dynamic - source_names
    if unknown:
        raise PlanError(
            f"dynamic sources {sorted(unknown)} match no source of plan "
            f"{plan.name!r} (sources: {sorted(source_names)})"
        )

    invariant: set[int] = set()
    invariant_sources: set[str] = set()
    cacheable: set[int] = set()
    for op in plan.topological_order():
        if isinstance(op, SourceOperator):
            if op.name not in dynamic:
                invariant.add(op.op_id)
                invariant_sources.add(op.name)
        elif all(inp.op_id in invariant for inp in op.inputs):
            invariant.add(op.op_id)
            cacheable.add(op.op_id)

    build_reuse: dict[int, str] = {}
    for op in plan.operators:
        if op.op_id in invariant:
            continue
        if isinstance(op, CrossOperator):
            if op.inputs[1].op_id in invariant:
                build_reuse[op.op_id] = "right"
            continue
        if not isinstance(op, (JoinOperator, CoGroupOperator)):
            continue
        left_static = op.inputs[0].op_id in invariant
        right_static = op.inputs[1].op_id in invariant
        if left_static and right_static:  # pragma: no cover - op would be invariant
            build_reuse[op.op_id] = "both"
        elif left_static:
            build_reuse[op.op_id] = "left"
        elif right_static:
            build_reuse[op.op_id] = "right"

    return InvariantAnalysis(
        plan_name=plan.name,
        dynamic_sources=dynamic,
        invariant_sources=frozenset(invariant_sources),
        invariant_ops=frozenset(invariant),
        cacheable_ops=frozenset(cacheable),
        build_reuse=build_reuse,
    )
