"""Record and key conventions.

Records are plain Python tuples (or any immutable values); the engine does
not impose a schema. Keyed operations take a :class:`KeySpec`, which pairs
an extractor function with a stable *name*. Two datasets partitioned by
key specs with the same name are considered co-partitioned, which lets the
executor skip redundant shuffles — the same reasoning Flink's optimizer
applies to its co-located solution sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class KeySpec:
    """A named key extractor.

    Attributes:
        name: stable identifier used for co-partitioning decisions; two
            specs with equal names must extract equal keys from the
            records they are applied to.
        extractor: function mapping a record to a hashable key.
        field: when the extractor is a plain positional projection
            (``record[field]``), the field index — the contract the
            columnar runtime relies on to read keys straight off a typed
            column (:mod:`repro.runtime.vectorized`). ``None`` for
            arbitrary extractors; equality and hashing stay name-only.
    """

    name: str
    extractor: Callable[[Any], Hashable]
    field: int | None = None

    def __call__(self, record: Any) -> Hashable:
        return self.extractor(record)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KeySpec) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"KeySpec({self.name!r})"


def _extract_first(record: Any) -> Hashable:
    return record[0]


def _extract_second(record: Any) -> Hashable:
    return record[1]


def first_field(name: str = "field0") -> KeySpec:
    """Key on ``record[0]`` — the library-wide convention for vertex ids."""
    return KeySpec(name, _extract_first, field=0)


def second_field(name: str = "field1") -> KeySpec:
    """Key on ``record[1]`` (e.g. the target vertex of an edge tuple)."""
    return KeySpec(name, _extract_second, field=1)
