"""Plan rendering.

Regenerates the paper's Figure 1 dataflow diagrams as text or Graphviz
DOT. Compensation operators (which "are invoked only after failures and
are absent from the dataflow otherwise", Figure 1 caption) can be listed
separately and are drawn dashed in DOT output.
"""

from __future__ import annotations

from .operators import Operator, SourceOperator
from .plan import Plan

#: operator-kind → DOT shape, loosely matching the paper's figure style
#: (white circles for sources, rectangles for operators).
_DOT_SHAPES = {
    "source": "ellipse",
    "map": "box",
    "flat_map": "box",
    "filter": "box",
    "reduce": "box",
    "group_reduce": "box",
    "join": "box",
    "co_group": "box",
    "cross": "box",
    "union": "box",
}


def plan_to_text(plan: Plan, compensations: list[str] | None = None) -> str:
    """Render a plan as an indented text listing.

    Each line shows ``name (kind) <- inputs``. Operators whose names
    appear in ``compensations`` get a ``[compensation]`` marker, mirroring
    the dotted boxes of Figure 1.
    """
    compensation_names = set(compensations or [])
    lines = [f"plan {plan.name}"]
    for op in plan.topological_order():
        inputs = ", ".join(inp.name for inp in op.inputs) or "-"
        marker = "  [compensation]" if op.name in compensation_names else ""
        lines.append(f"  {op.name} ({op.kind}) <- {inputs}{marker}")
    return "\n".join(lines)


def _dot_id(op: Operator) -> str:
    return f"op{op.op_id}"


def plan_to_dot(plan: Plan, compensations: list[str] | None = None) -> str:
    """Render a plan as Graphviz DOT.

    Sources are ellipses, operators are boxes, and compensation operators
    are dashed boxes — matching the visual vocabulary of Figure 1.
    """
    compensation_names = set(compensations or [])
    lines = [f'digraph "{plan.name}" {{', "  rankdir=TB;"]
    for op in plan.topological_order():
        shape = _DOT_SHAPES.get(op.kind, "box")
        style = "dashed" if op.name in compensation_names else "solid"
        fill = ', fillcolor="lightgrey", style="filled"' if isinstance(op, SourceOperator) else f', style="{style}"'
        lines.append(f'  {_dot_id(op)} [label="{op.name}\\n({op.kind})", shape={shape}{fill}];')
    for op in plan.topological_order():
        for inp in op.inputs:
            lines.append(f"  {_dot_id(inp)} -> {_dot_id(op)};")
    lines.append("}")
    return "\n".join(lines)
