"""User-defined function (UDF) wrappers.

Flink programs plug UDFs into higher-order operators (§2.1). The engine
accepts either plain callables or subclasses of the classes below; the
class form exists so stateless UDFs can carry a name and be unit-tested in
isolation, matching how the paper's dataflows name their functions
(``candidate-label``, ``fix-ranks``, ...).

Each wrapper is a thin callable adapter; the executor only ever calls the
instance, so subclasses override :meth:`apply` (or the method named after
their role).
"""

from __future__ import annotations

from abc import ABC
from typing import Any, Callable, Iterable, Iterator


class _NamedFunction(ABC):
    """Shared plumbing: every UDF has a human-readable name."""

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MapFunction(_NamedFunction):
    """One record in, one record out."""

    def __init__(self, fn: Callable[[Any], Any] | None = None, name: str | None = None):
        super().__init__(name)
        self._fn = fn

    def apply(self, record: Any) -> Any:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(record)

    def __call__(self, record: Any) -> Any:
        return self.apply(record)


class FlatMapFunction(_NamedFunction):
    """One record in, zero or more records out."""

    def __init__(
        self,
        fn: Callable[[Any], Iterable[Any]] | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def apply(self, record: Any) -> Iterable[Any]:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(record)

    def __call__(self, record: Any) -> Iterable[Any]:
        return self.apply(record)


class FilterFunction(_NamedFunction):
    """Keep a record iff the predicate returns True."""

    def __init__(self, fn: Callable[[Any], bool] | None = None, name: str | None = None):
        super().__init__(name)
        self._fn = fn

    def apply(self, record: Any) -> bool:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return bool(self._fn(record))

    def __call__(self, record: Any) -> bool:
        return self.apply(record)


class ReduceFunction(_NamedFunction):
    """Pairwise-associative combiner: ``(acc, value) -> acc``.

    Used by ``reduce_by_key``; the executor folds each key group left to
    right, so the function must be associative for the result to be
    partitioning-independent (the engine's tests verify this property for
    the library's built-in reducers).
    """

    def __init__(self, fn: Callable[[Any, Any], Any] | None = None, name: str | None = None):
        super().__init__(name)
        self._fn = fn

    def apply(self, left: Any, right: Any) -> Any:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(left, right)

    def __call__(self, left: Any, right: Any) -> Any:
        return self.apply(left, right)


class GroupReduceFunction(_NamedFunction):
    """Whole-group reducer: ``(key, [records]) -> iterable of records``."""

    def __init__(
        self,
        fn: Callable[[Any, list[Any]], Iterable[Any]] | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def apply(self, key: Any, group: list[Any]) -> Iterable[Any]:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(key, group)

    def __call__(self, key: Any, group: list[Any]) -> Iterable[Any]:
        return self.apply(key, group)


class JoinFunction(_NamedFunction):
    """Equi-join UDF: called once per matching ``(left, right)`` pair and
    may emit zero or more records (returning ``None`` emits nothing,
    returning an iterator via ``yield`` emits many, any other value emits
    exactly that value)."""

    def __init__(
        self,
        fn: Callable[[Any, Any], Any] | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def apply(self, left: Any, right: Any) -> Any:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(left, right)

    def __call__(self, left: Any, right: Any) -> Any:
        return self.apply(left, right)


class CoGroupFunction(_NamedFunction):
    """Co-group UDF: ``(key, [left records], [right records]) -> iterable``.

    Unlike a join, the UDF also sees keys present on only one side, which
    the delta-iteration solution-set update needs (a candidate label with
    no current label must still be handled)."""

    def __init__(
        self,
        fn: Callable[[Any, list[Any], list[Any]], Iterable[Any]] | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def apply(self, key: Any, left: list[Any], right: list[Any]) -> Iterable[Any]:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(key, left, right)

    def __call__(self, key: Any, left: list[Any], right: list[Any]) -> Iterable[Any]:
        return self.apply(key, left, right)


class CrossFunction(_NamedFunction):
    """Cartesian-product UDF: called for every ``(left, right)`` pair."""

    def __init__(
        self,
        fn: Callable[[Any, Any], Any] | None = None,
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def apply(self, left: Any, right: Any) -> Any:
        if self._fn is None:
            raise NotImplementedError("override apply() or pass fn=")
        return self._fn(left, right)

    def __call__(self, left: Any, right: Any) -> Any:
        return self.apply(left, right)


def emitted(value: Any) -> Iterator[Any]:
    """Normalize a join/cross UDF return value into an emission stream.

    ``None`` emits nothing; a generator/iterator is drained; anything else
    is emitted as a single record. Tuples and lists count as single
    records because records themselves are tuples.
    """
    if value is None:
        return iter(())
    if isinstance(value, Iterator):
        return value
    return iter((value,))
