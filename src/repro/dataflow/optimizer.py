"""Logical plan optimization.

§2.1 of the paper: Flink "compiles the program into a DAG of operators,
optimizes it and runs it in a cluster". This module reproduces the two
classic rewrites that matter for the engine's cost model:

* **chain fusion** — consecutive record-local operators (map / flat_map /
  filter) with a single consumer collapse into one fused operator, so a
  record is charged once per chain instead of once per operator (Flink's
  operator chaining);
* **filter pushdown through union** — ``union(a, b).filter(p)`` becomes
  ``union(a.filter(p), b.filter(p))``, shrinking the unioned volume.

Optimization is **opt-in** (``optimize(plan)`` returns a new plan; the
original is untouched). The algorithm jobs in :mod:`repro.algorithms`
deliberately run unoptimized plans so their per-operator message counters
keep the paper's operator names; the optimizer exists for user plans and
for the engine-level tests/benchmarks that quantify its effect.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..errors import PlanError
from .functions import FlatMapFunction
from .operators import (
    CoGroupOperator,
    CrossOperator,
    FilterOperator,
    FlatMapOperator,
    GroupReduceOperator,
    JoinOperator,
    MapOperator,
    Operator,
    ReduceByKeyOperator,
    SourceOperator,
    UnionOperator,
)
from .plan import Plan

#: operator types that process records one at a time with no exchange —
#: the candidates for chaining.
_RECORD_LOCAL = (MapOperator, FlatMapOperator, FilterOperator)


class _FusedFunction(FlatMapFunction):
    """The composition of a chain of record-local UDFs as one flat map."""

    def __init__(self, stages: list[Operator], name: str):
        super().__init__(name=name)
        self._stages = [(type(op), op.fn) for op in stages]

    def apply(self, record: Any) -> Iterable[Any]:
        current = [record]
        for op_type, fn in self._stages:
            if op_type is MapOperator:
                current = [fn(r) for r in current]
            elif op_type is FilterOperator:
                current = [r for r in current if fn(r)]
            else:  # FlatMapOperator
                expanded: list[Any] = []
                for r in current:
                    expanded.extend(fn(r))
                current = expanded
            if not current:
                return []
        return current


def _consumers(plan: Plan) -> dict[int, list[Operator]]:
    consumers: dict[int, list[Operator]] = {op.op_id: [] for op in plan.operators}
    for op in plan.operators:
        for inp in op.inputs:
            consumers[inp.op_id].append(op)
    return consumers


def _collect_chains(plan: Plan) -> dict[int, list[Operator]]:
    """Find maximal fusable chains, keyed by the chain head's op_id.

    A chain extends from a record-local operator through record-local
    successors as long as each link has exactly one consumer and that
    consumer is record-local. Only chains of length >= 2 are returned.
    """
    consumers = _consumers(plan)
    in_chain: set[int] = set()
    chains: dict[int, list[Operator]] = {}
    for op in plan.topological_order():
        if not isinstance(op, _RECORD_LOCAL) or op.op_id in in_chain:
            continue
        chain = [op]
        current = op
        while True:
            outs = consumers[current.op_id]
            if len(outs) != 1 or not isinstance(outs[0], _RECORD_LOCAL):
                break
            current = outs[0]
            chain.append(current)
        if len(chain) >= 2:
            chains[op.op_id] = chain
            in_chain.update(link.op_id for link in chain)
    return chains


def fuse_chains(plan: Plan) -> Plan:
    """Apply chain fusion, returning a new plan."""
    chains = _collect_chains(plan)
    fused_members: dict[int, int] = {}  # member op_id -> head op_id
    for head_id, chain in chains.items():
        for member in chain:
            fused_members[member.op_id] = head_id

    new_plan = Plan(plan.name)
    rebuilt: dict[int, Operator] = {}

    def new_input(old: Operator) -> Operator:
        # a reference to a chain member resolves to the fused operator
        target = fused_members.get(old.op_id, old.op_id)
        if target in rebuilt:
            return rebuilt[target]
        raise PlanError(f"input {old.name!r} not rebuilt yet")  # pragma: no cover

    for op in plan.topological_order():
        head_id = fused_members.get(op.op_id)
        if head_id is not None:
            chain = chains[head_id]
            if op is not chain[-1]:
                continue  # only materialize at the chain's tail
            name = "+".join(link.name for link in chain)
            fused = FlatMapOperator(
                new_plan._next_id(),
                name,
                new_input(chain[0].inputs[0]),
                _FusedFunction(chain, name),
                # a chain of pure filters never rewrites records, so the
                # fused operator must not discard the input's placement —
                # otherwise an "optimized" plan gains shuffles downstream
                preserves_partitioning=all(
                    isinstance(link, FilterOperator) for link in chain
                ),
            )
            new_plan._register(fused)
            rebuilt[head_id] = fused
            continue
        rebuilt[op.op_id] = _clone_operator(new_plan, op, new_input)
    return new_plan


def push_filters_through_unions(plan: Plan) -> Plan:
    """Apply filter pushdown through unions, returning a new plan."""
    consumers = _consumers(plan)
    pushable: dict[int, FilterOperator] = {}
    absorbed: set[int] = set()
    for op in plan.topological_order():
        if (
            isinstance(op, FilterOperator)
            and isinstance(op.inputs[0], UnionOperator)
            and len(consumers[op.inputs[0].op_id]) == 1
        ):
            pushable[op.op_id] = op
            absorbed.add(op.inputs[0].op_id)

    new_plan = Plan(plan.name)
    rebuilt: dict[int, Operator] = {}

    for op in plan.topological_order():
        if op.op_id in absorbed:
            continue  # materialized together with its filter
        if op.op_id in pushable:
            union_op = op.inputs[0]
            filtered_inputs = []
            for index, branch in enumerate(union_op.inputs):
                branch_filter = FilterOperator(
                    new_plan._next_id(),
                    f"{op.name}@{branch.name}",
                    rebuilt[branch.op_id],
                    op.fn,
                )
                new_plan._register(branch_filter)
                filtered_inputs.append(branch_filter)
            pushed_union = UnionOperator(new_plan._next_id(), op.name, filtered_inputs)
            new_plan._register(pushed_union)
            rebuilt[op.op_id] = pushed_union
            continue
        rebuilt[op.op_id] = _clone_operator(
            new_plan, op, lambda old: rebuilt[old.op_id]
        )
    return new_plan


def _clone_operator(
    plan: Plan, op: Operator, resolve: Callable[[Operator], Operator]
) -> Operator:
    """Recreate ``op`` inside ``plan`` with remapped inputs."""
    next_id = plan._next_id()
    if isinstance(op, SourceOperator):
        clone: Operator = SourceOperator(next_id, op.name, op.partitioned_by)
    elif isinstance(op, MapOperator):
        clone = MapOperator(next_id, op.name, resolve(op.inputs[0]), op.fn)
    elif isinstance(op, FlatMapOperator):
        clone = FlatMapOperator(
            next_id,
            op.name,
            resolve(op.inputs[0]),
            op.fn,
            preserves_partitioning=op.preserves_partitioning,
        )
    elif isinstance(op, FilterOperator):
        clone = FilterOperator(next_id, op.name, resolve(op.inputs[0]), op.fn)
    elif isinstance(op, ReduceByKeyOperator):
        clone = ReduceByKeyOperator(next_id, op.name, resolve(op.inputs[0]), op.key, op.fn)
    elif isinstance(op, GroupReduceOperator):
        clone = GroupReduceOperator(next_id, op.name, resolve(op.inputs[0]), op.key, op.fn)
    elif isinstance(op, JoinOperator):
        clone = JoinOperator(
            next_id, op.name, resolve(op.inputs[0]), resolve(op.inputs[1]),
            op.left_key, op.right_key, op.fn, preserves=op.preserves,
        )
    elif isinstance(op, CoGroupOperator):
        clone = CoGroupOperator(
            next_id, op.name, resolve(op.inputs[0]), resolve(op.inputs[1]),
            op.left_key, op.right_key, op.fn, preserves=op.preserves,
        )
    elif isinstance(op, CrossOperator):
        clone = CrossOperator(
            next_id, op.name, resolve(op.inputs[0]), resolve(op.inputs[1]), op.fn
        )
    elif isinstance(op, UnionOperator):
        clone = UnionOperator(next_id, op.name, [resolve(inp) for inp in op.inputs])
    else:  # pragma: no cover - exhaustive over the operator set
        raise PlanError(f"cannot clone operator type {type(op).__name__}")
    plan._register(clone)
    return clone


def optimize(plan: Plan) -> Plan:
    """Run all rewrite rules (pushdown first, then fusion — pushdown
    creates new filters that fusion can chain)."""
    return fuse_chains(push_filters_through_unions(plan))
