"""Plan construction: the fluent DataSet API.

A :class:`Plan` owns a DAG of :class:`repro.dataflow.operators.Operator`
nodes. :class:`DataSet` is a lightweight handle on one node exposing the
fluent combinators, so the paper's Figure 1 dataflows read naturally::

    plan = Plan("connected-components-step")
    workset = plan.source("workset", partitioned_by=first_field("vertex"))
    edges = plan.source("graph")
    messages = workset.join(edges, ..., name="label-to-neighbors")
    candidates = messages.reduce_by_key(..., name="candidate-label")
    ...

Plans are templates: sources are symbolic and get bound to concrete
partitioned datasets at execution time (see
:class:`repro.runtime.executor.PlanExecutor`). The same step plan is
executed once per superstep by the iteration drivers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..errors import PlanError
from .datatypes import KeySpec
from .functions import (
    CoGroupFunction,
    CrossFunction,
    FilterFunction,
    FlatMapFunction,
    GroupReduceFunction,
    JoinFunction,
    MapFunction,
    ReduceFunction,
)
from .operators import (
    CoGroupOperator,
    CrossOperator,
    FilterOperator,
    FlatMapOperator,
    GroupReduceOperator,
    JoinOperator,
    MapOperator,
    Operator,
    ReduceByKeyOperator,
    SourceOperator,
    UnionOperator,
)


def _as_map(fn: MapFunction | Callable[[Any], Any]) -> MapFunction:
    return fn if isinstance(fn, MapFunction) else MapFunction(fn)


def _as_flat_map(fn: FlatMapFunction | Callable[[Any], Iterable[Any]]) -> FlatMapFunction:
    return fn if isinstance(fn, FlatMapFunction) else FlatMapFunction(fn)


def _as_filter(fn: FilterFunction | Callable[[Any], bool]) -> FilterFunction:
    return fn if isinstance(fn, FilterFunction) else FilterFunction(fn)


def _as_reduce(fn: ReduceFunction | Callable[[Any, Any], Any]) -> ReduceFunction:
    return fn if isinstance(fn, ReduceFunction) else ReduceFunction(fn)


def _as_group_reduce(
    fn: GroupReduceFunction | Callable[[Any, list[Any]], Iterable[Any]],
) -> GroupReduceFunction:
    return fn if isinstance(fn, GroupReduceFunction) else GroupReduceFunction(fn)


def _as_join(fn: JoinFunction | Callable[[Any, Any], Any]) -> JoinFunction:
    return fn if isinstance(fn, JoinFunction) else JoinFunction(fn)


def _as_co_group(
    fn: CoGroupFunction | Callable[[Any, list[Any], list[Any]], Iterable[Any]],
) -> CoGroupFunction:
    return fn if isinstance(fn, CoGroupFunction) else CoGroupFunction(fn)


def _as_cross(fn: CrossFunction | Callable[[Any, Any], Any]) -> CrossFunction:
    return fn if isinstance(fn, CrossFunction) else CrossFunction(fn)


class Plan:
    """A named DAG of operators."""

    def __init__(self, name: str):
        self.name = name
        self._operators: list[Operator] = []
        self._names: set[str] = set()

    # -- node management ------------------------------------------------------

    def _register(self, op: Operator) -> Operator:
        if op.name in self._names:
            raise PlanError(f"duplicate operator name {op.name!r} in plan {self.name!r}")
        op.validate()
        self._names.add(op.name)
        self._operators.append(op)
        return op

    def _next_id(self) -> int:
        return len(self._operators)

    @property
    def operators(self) -> list[Operator]:
        """All operators in creation order."""
        return list(self._operators)

    def operator_by_name(self, name: str) -> Operator:
        """Look an operator up by its (unique) name."""
        for op in self._operators:
            if op.name == name:
                return op
        raise PlanError(f"no operator named {name!r} in plan {self.name!r}")

    def sources(self) -> list[SourceOperator]:
        """All source operators."""
        return [op for op in self._operators if isinstance(op, SourceOperator)]

    def sinks(self) -> list[Operator]:
        """Operators that feed no other operator (the plan's outputs)."""
        consumed = {inp.op_id for op in self._operators for inp in op.inputs}
        return [op for op in self._operators if op.op_id not in consumed]

    def topological_order(self) -> list[Operator]:
        """Operators in dependency order.

        Creation order already is a topological order (an operator can
        only reference previously created inputs), but this method also
        validates that every referenced input belongs to this plan.
        """
        known = {op.op_id for op in self._operators}
        for op in self._operators:
            for inp in op.inputs:
                if inp.op_id not in known or self._operators[inp.op_id] is not inp:
                    raise PlanError(
                        f"operator {op.name!r} references input {inp.name!r} "
                        f"from a different plan"
                    )
        return list(self._operators)

    def validate(self) -> None:
        """Check the whole plan's structural invariants."""
        if not self._operators:
            raise PlanError(f"plan {self.name!r} is empty")
        self.topological_order()
        if not self.sources():
            raise PlanError(f"plan {self.name!r} has no sources")

    # -- construction entry point ----------------------------------------------

    def source(self, name: str, partitioned_by: KeySpec | None = None) -> "DataSet":
        """Declare a named symbolic input.

        ``partitioned_by`` asserts that the bound dataset will arrive hash
        partitioned by that key (true for iterative state, which the
        drivers keep partitioned by the state key); the executor verifies
        the assertion cheaply and uses it to skip shuffles.
        """
        op = SourceOperator(self._next_id(), name, partitioned_by=partitioned_by)
        return DataSet(self, self._register(op))

    def __repr__(self) -> str:
        return f"Plan({self.name!r}, {len(self._operators)} operators)"


class DataSet:
    """A handle on one operator's output, exposing the combinators."""

    def __init__(self, plan: Plan, op: Operator):
        self.plan = plan
        self.op = op

    @property
    def name(self) -> str:
        """The producing operator's name."""
        return self.op.name

    def _same_plan(self, other: "DataSet") -> None:
        if other.plan is not self.plan:
            raise PlanError(
                f"cannot combine datasets from different plans "
                f"({self.plan.name!r} vs {other.plan.name!r})"
            )

    # -- record-wise ------------------------------------------------------------

    def map(self, fn: MapFunction | Callable[[Any], Any], name: str) -> "DataSet":
        """Apply ``fn`` to every record."""
        op = MapOperator(self.plan._next_id(), name, self.op, _as_map(fn))
        return DataSet(self.plan, self.plan._register(op))

    def flat_map(
        self, fn: FlatMapFunction | Callable[[Any], Iterable[Any]], name: str
    ) -> "DataSet":
        """Apply ``fn`` to every record, emitting zero or more records."""
        op = FlatMapOperator(self.plan._next_id(), name, self.op, _as_flat_map(fn))
        return DataSet(self.plan, self.plan._register(op))

    def filter(self, fn: FilterFunction | Callable[[Any], bool], name: str) -> "DataSet":
        """Keep only records for which ``fn`` is true."""
        op = FilterOperator(self.plan._next_id(), name, self.op, _as_filter(fn))
        return DataSet(self.plan, self.plan._register(op))

    # -- keyed ------------------------------------------------------------------

    def reduce_by_key(
        self,
        key: KeySpec,
        fn: ReduceFunction | Callable[[Any, Any], Any],
        name: str,
    ) -> "DataSet":
        """Fold records sharing a key with an associative combiner."""
        op = ReduceByKeyOperator(self.plan._next_id(), name, self.op, key, _as_reduce(fn))
        return DataSet(self.plan, self.plan._register(op))

    def group_reduce(
        self,
        key: KeySpec,
        fn: GroupReduceFunction | Callable[[Any, list[Any]], Iterable[Any]],
        name: str,
    ) -> "DataSet":
        """Hand each whole key group to ``fn``."""
        op = GroupReduceOperator(self.plan._next_id(), name, self.op, key, _as_group_reduce(fn))
        return DataSet(self.plan, self.plan._register(op))

    # -- binary -----------------------------------------------------------------

    def join(
        self,
        other: "DataSet",
        left_key: KeySpec,
        right_key: KeySpec,
        fn: JoinFunction | Callable[[Any, Any], Any],
        name: str,
        preserves: str | None = None,
    ) -> "DataSet":
        """Inner equi-join with ``other``; ``fn`` runs per matching pair."""
        self._same_plan(other)
        op = JoinOperator(
            self.plan._next_id(), name, self.op, other.op,
            left_key, right_key, _as_join(fn), preserves=preserves,
        )
        return DataSet(self.plan, self.plan._register(op))

    def co_group(
        self,
        other: "DataSet",
        left_key: KeySpec,
        right_key: KeySpec,
        fn: CoGroupFunction | Callable[[Any, list[Any], list[Any]], Iterable[Any]],
        name: str,
        preserves: str | None = None,
    ) -> "DataSet":
        """Full-outer co-group with ``other``."""
        self._same_plan(other)
        op = CoGroupOperator(
            self.plan._next_id(), name, self.op, other.op,
            left_key, right_key, _as_co_group(fn), preserves=preserves,
        )
        return DataSet(self.plan, self.plan._register(op))

    def cross(
        self,
        other: "DataSet",
        fn: CrossFunction | Callable[[Any, Any], Any],
        name: str,
    ) -> "DataSet":
        """Cartesian product with ``other`` (right side broadcast)."""
        self._same_plan(other)
        op = CrossOperator(self.plan._next_id(), name, self.op, other.op, _as_cross(fn))
        return DataSet(self.plan, self.plan._register(op))

    def union(self, *others: "DataSet", name: str) -> "DataSet":
        """Bag union with one or more other datasets."""
        for other in others:
            self._same_plan(other)
        op = UnionOperator(
            self.plan._next_id(), name, [self.op, *(o.op for o in others)]
        )
        return DataSet(self.plan, self.plan._register(op))

    def __repr__(self) -> str:
        return f"DataSet({self.op!r})"
