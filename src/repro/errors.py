"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries. The subtypes mirror the
layers of the system: plan construction, runtime execution, iteration
control and recovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PlanError(ReproError):
    """Raised when a dataflow plan is malformed (bad arity, cycles outside
    an iteration construct, unknown operator references, ...)."""


class ExecutionError(ReproError):
    """Raised when the simulated runtime cannot execute a physical plan."""


class PartitionLostError(ExecutionError):
    """Raised internally when a task touches a partition whose state was
    destroyed by a failure and no recovery strategy intercepted it."""

    def __init__(self, partition_ids, message: str | None = None):
        self.partition_ids = tuple(sorted(partition_ids))
        super().__init__(
            message or f"state lost for partitions {self.partition_ids}"
        )


class IterationError(ReproError):
    """Raised when an iteration is configured inconsistently (e.g. a delta
    iteration without a solution-set key, or a non-positive iteration cap)."""


class TerminationError(IterationError):
    """Raised when an iteration exhausts its superstep budget without
    meeting its termination criterion and ``strict`` mode is enabled."""


class RecoveryError(ReproError):
    """Raised when a recovery strategy cannot restore a consistent state
    (e.g. no checkpoint exists, no spare workers are available, or a
    compensation function returns an inconsistent partition)."""


class CompensationError(RecoveryError):
    """Raised when a compensation function violates its declared
    consistency contract (checked by :mod:`repro.core.guarantees`)."""


class ReplayError(RecoveryError):
    """Raised when confined recovery cannot replay the lost partitions —
    the message log is inconsistent with the failure (e.g. no pre-loss
    capture was taken, or the log predates the active run). Subclasses
    :class:`RecoveryError` so the service supervisor classifies it as a
    retryable infrastructure failure."""


class StorageError(ReproError):
    """Raised by the simulated stable storage on missing keys or attempts
    to read partial/corrupt checkpoints."""


class GraphError(ReproError):
    """Raised by the graph substrate on malformed inputs (self-referential
    parse errors, negative vertex ids, unknown vertices, ...)."""


class ViewError(ReproError):
    """Raised by the dynamic-view layer (:mod:`repro.views`) on catalog
    misuse: unknown or duplicate view names, dependency cycles, reading a
    view that was never materialized, refreshing a derived view before its
    parents, ..."""


class ConfigError(ReproError):
    """Raised when an :class:`repro.config.EngineConfig` is invalid."""


class ServiceError(ReproError):
    """Raised by the job service on lifecycle misuse (submitting to a
    drained service, illegal job-state transitions, reading the result of
    an unfinished job, ...)."""


class AdmissionError(ServiceError):
    """Raised when the job service's admission queue refuses a job — the
    queue is at capacity under the ``reject`` backpressure policy, or a
    ``block`` admission timed out waiting for room."""


class JobCancelledError(ServiceError):
    """Raised when the result of a cancelled job is requested."""


class JobTimeoutError(ServiceError):
    """Raised when a job misses its deadline — while queued, between retry
    attempts, or (cooperatively, at superstep granularity) mid-run."""
