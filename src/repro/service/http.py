"""The HTTP front door: a thin stdlib JSON/REST layer over the service.

Endpoints (all JSON unless noted)::

    POST /api/v1/jobs              submit a JobDescriptor     -> 202 {job_id}
    GET  /api/v1/jobs/<id>         lifecycle state            -> 200 {state}
    GET  /api/v1/jobs/<id>/result  terminal record            -> 200 / 409
    POST /api/v1/jobs/<id>/cancel  request cancellation       -> 200 {cancelled}
    GET  /api/v1/health            service health dict        -> 200
    GET  /metrics                  Prometheus text exposition -> 200 (text)
    POST /api/v1/shutdown          graceful stop              -> 202

Status codes carry the admission semantics: a descriptor the validator
refuses is ``400``, a job the admission controller sheds or rejects is
``429`` (back off and retry), a draining/closed service is ``503``, an
unknown job id is ``404``, and asking for the result of a still-running
job is ``409`` (poll again). The server is the stdlib
:class:`http.server.ThreadingHTTPServer` — no framework, no
dependencies — and the handler speaks to either backend through the same
five-method surface: :class:`LocalBackend` wraps a single-process
:class:`~repro.service.api.JobService`; :class:`ShardBackend` wraps a
:class:`~repro.service.shard.ShardedJobService`, making the front door
the submission path of the whole multi-process fleet.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..errors import AdmissionError, ConfigError, ServiceError
from ..observability.prometheus import render_snapshots
from .api import JobService
from .descriptor import JobDescriptor, result_record
from .shard import ShardedJobService


class ResultNotReady(ServiceError):
    """The job exists but has not reached a terminal state yet (HTTP 409)."""


class UnknownJob(ServiceError):
    """No job with that id was ever submitted here (HTTP 404)."""


class LocalBackend:
    """Front-door backend over one in-process :class:`JobService`."""

    def __init__(self, service: JobService):
        self.service = service
        self._lock = threading.Lock()
        self._descriptors: dict[str, tuple[JobDescriptor, Any]] = {}

    def submit_descriptor(self, descriptor: JobDescriptor) -> str:
        handle = self.service.submit(descriptor.to_spec())
        job_id = f"job-{handle.job_id:08d}"
        with self._lock:
            self._descriptors[job_id] = (descriptor, handle)
        return job_id

    def _entry(self, job_id: str) -> tuple[JobDescriptor, Any]:
        with self._lock:
            entry = self._descriptors.get(job_id)
        if entry is None:
            raise UnknownJob(f"unknown job id {job_id}")
        return entry

    def job_status(self, job_id: str) -> str:
        _, handle = self._entry(job_id)
        return handle.state.value

    def job_result(self, job_id: str) -> dict[str, Any]:
        descriptor, handle = self._entry(job_id)
        if not handle.is_terminal:
            raise ResultNotReady(f"job {job_id} is still {handle.state.value}")
        return result_record(job_id, descriptor, handle)

    def cancel_job(self, job_id: str) -> bool:
        _, handle = self._entry(job_id)
        return handle.request_cancel()

    def health(self) -> dict[str, Any]:
        return self.service.health()

    def metrics_text(self) -> str:
        return render_snapshots([({}, self.service.metrics.snapshot_all())])

    def shutdown(self) -> None:
        self.service.shutdown()


class ShardBackend:
    """Front-door backend over a multi-process :class:`ShardedJobService`."""

    def __init__(self, service: ShardedJobService):
        self.service = service

    def submit_descriptor(self, descriptor: JobDescriptor) -> str:
        return self.service.submit(descriptor)

    def _check_known(self, job_id: str) -> None:
        try:
            self.service.status(job_id)
        except ServiceError:
            raise UnknownJob(f"unknown job id {job_id}") from None

    def job_status(self, job_id: str) -> str:
        self._check_known(job_id)
        return self.service.status(job_id)

    def job_result(self, job_id: str) -> dict[str, Any]:
        self._check_known(job_id)
        record = self.service.spool.read_result(job_id)
        if record is None:
            raise ResultNotReady(f"job {job_id} has no terminal record yet")
        return record

    def cancel_job(self, job_id: str) -> bool:
        self._check_known(job_id)
        return self.service.cancel(job_id)

    def health(self) -> dict[str, Any]:
        return self.service.health()

    def metrics_text(self) -> str:
        # The coordinator holds no MetricsRegistry; expose its health
        # counters as gauges so a scraper still sees the fleet.
        health = self.service.health()
        snapshot = {
            "gauges": {
                "service.shards": health["num_shards"],
                "service.submitted": health["submitted"],
                "service.done": health["done"],
                "service.pending": health["pending"],
            }
        }
        return render_snapshots([({}, snapshot)])

    def shutdown(self) -> None:
        self.service.shutdown()


class FrontDoorHandler(BaseHTTPRequestHandler):
    """Routes the REST surface onto the server's backend."""

    server_version = "repro-frontdoor/1.0"
    protocol_version = "HTTP/1.1"

    # The test servers run quiet; set server.verbose_log = True to debug.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose_log", False):
            super().log_message(format, *args)

    @property
    def backend(self):
        return self.server.backend  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigError("request body must be a JSON object")
        return data

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        try:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["api", "v1", "health"]:
                self._send_json(200, self.backend.health())
            elif parts == ["metrics"]:
                self._send_text(200, self.backend.metrics_text())
            elif len(parts) == 4 and parts[:3] == ["api", "v1", "jobs"]:
                job_id = parts[3]
                self._send_json(
                    200, {"job_id": job_id, "state": self.backend.job_status(job_id)}
                )
            elif len(parts) == 5 and parts[:3] == ["api", "v1", "jobs"] and parts[4] == "result":
                self._send_json(200, self.backend.job_result(parts[3]))
            else:
                self._error(404, f"no such route: GET {self.path}")
        except UnknownJob as exc:
            self._error(404, str(exc))
        except ResultNotReady as exc:
            self._error(409, str(exc))
        except ServiceError as exc:
            self._error(404, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        try:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            if parts == ["api", "v1", "jobs"]:
                descriptor = JobDescriptor.from_dict(self._read_body())
                job_id = self.backend.submit_descriptor(descriptor)
                self._send_json(202, {"job_id": job_id, "state": "queued"})
            elif (
                len(parts) == 5
                and parts[:3] == ["api", "v1", "jobs"]
                and parts[4] == "cancel"
            ):
                cancelled = self.backend.cancel_job(parts[3])
                self._send_json(200, {"job_id": parts[3], "cancelled": cancelled})
            elif parts == ["api", "v1", "shutdown"]:
                self._send_json(202, {"stopping": True})
                # Stop the listener from another thread; shutdown() blocks
                # until serve_forever returns, which cannot happen on the
                # handler thread itself.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._error(404, f"no such route: POST {self.path}")
        except ConfigError as exc:
            self._error(400, str(exc))
        except AdmissionError as exc:
            self._error(429, str(exc))
        except UnknownJob as exc:
            self._error(404, str(exc))
        except ServiceError as exc:
            self._error(503, str(exc))


def make_http_server(
    backend: LocalBackend | ShardBackend,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ThreadingHTTPServer:
    """A ready-to-serve front door; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` (usually on a
    thread), then ``shutdown()``+``server_close()``. The bound port is
    ``server.server_address[1]``.
    """
    server = ThreadingHTTPServer((host, port), FrontDoorHandler)
    server.backend = backend  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
