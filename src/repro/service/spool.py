"""The shared spool directory: file-based multi-process job coordination.

Scheduler shards coordinate through the filesystem alone — no leader
election, no lock server. The primitive is POSIX atomic rename
(``os.replace``): to *claim* a pending job a shard renames its file into
the shard's ``claimed/`` directory; exactly one renamer wins and the
losers observe ``FileNotFoundError``. Everything else (results, cancel
requests, shard health, shutdown) is append-style file publication with
the same write-to-temp-then-rename discipline, so readers never observe
a half-written JSON document.

Layout under the spool root::

    pending/shard-<k>/   jobs placed on shard k, not yet claimed
    claimed/shard-<k>/   jobs shard k has claimed (in flight)
    done/                terminal result records, one file per job
    cancel/              cancel markers, named by job id
    health/shard-<k>.json  per-shard heartbeat + queue stats
    stop                 shutdown sentinel (drain, then exit)

Pending filenames are ``p<99-priority>-s<seq>-<job id>.json`` so a plain
lexical sort yields priority-then-FIFO order — shards claim the highest
priority, oldest job first just by sorting directory listings.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from ..errors import ServiceError

#: sentinel filename that tells every shard to drain and exit.
STOP_SENTINEL = "stop"


def _atomic_write_json(path: Path, payload: dict[str, Any]) -> None:
    """Publish ``payload`` at ``path`` atomically (tmp + rename)."""
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    """Read one published JSON file; ``None`` when it vanished mid-read."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:
        # Unreachable for files published via _atomic_write_json; guards
        # against a torn copy from an external writer.
        return None


class SpoolDir:
    """One process's view of the shared spool (coordinator or shard)."""

    def __init__(self, root: str | os.PathLike[str], num_shards: int):
        if num_shards < 1:
            raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
        self.root = Path(root)
        self.num_shards = num_shards
        self._seq = 0

    def prepare(self) -> None:
        """Create the directory layout (idempotent)."""
        for shard in range(self.num_shards):
            (self.root / "pending" / f"shard-{shard}").mkdir(
                parents=True, exist_ok=True
            )
            (self.root / "claimed" / f"shard-{shard}").mkdir(
                parents=True, exist_ok=True
            )
        (self.root / "done").mkdir(parents=True, exist_ok=True)
        (self.root / "cancel").mkdir(parents=True, exist_ok=True)
        (self.root / "health").mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------------

    def pending_dir(self, shard: int) -> Path:
        return self.root / "pending" / f"shard-{shard}"

    def claimed_dir(self, shard: int) -> Path:
        return self.root / "claimed" / f"shard-{shard}"

    def done_path(self, job_id: str) -> Path:
        return self.root / "done" / f"{job_id}.json"

    def cancel_path(self, job_id: str) -> Path:
        return self.root / "cancel" / job_id

    def health_path(self, shard: int) -> Path:
        return self.root / "health" / f"shard-{shard}.json"

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    # -- submission (coordinator side) -----------------------------------------

    def submit(self, shard: int, job_id: str, priority: int, payload: dict[str, Any]) -> None:
        """Place one job file into ``shard``'s pending directory.

        The filename encodes ``priority`` (inverted, zero-padded) and an
        admission sequence number so a lexical sort is priority-then-FIFO.
        """
        if not 0 <= priority <= 99:
            raise ServiceError(f"spool priorities must be in [0, 99], got {priority}")
        name = f"p{99 - priority:02d}-s{self._seq:08d}-{job_id}.json"
        self._seq += 1
        _atomic_write_json(self.pending_dir(shard) / name, payload)

    def pending_files(self, shard: int) -> list[Path]:
        """Shard ``shard``'s pending job files, claim order first."""
        try:
            names = sorted(
                entry
                for entry in os.listdir(self.pending_dir(shard))
                if entry.endswith(".json")
            )
        except FileNotFoundError:
            return []
        return [self.pending_dir(shard) / name for name in names]

    def pending_depth(self, shard: int) -> int:
        return len(self.pending_files(shard))

    # -- claims (shard side) ---------------------------------------------------

    def try_claim(self, path: Path, shard: int) -> Path | None:
        """Atomically claim a pending job file for ``shard``.

        Returns the claimed path, or ``None`` when another shard won the
        rename race (or the coordinator cancelled the file away).
        """
        target = self.claimed_dir(shard) / path.name
        try:
            os.replace(path, target)
        except FileNotFoundError:
            return None
        return target

    def claim_next(self, shard: int, donate_from: int | None = None) -> Path | None:
        """Claim the best pending job: own queue first, then donation.

        ``donate_from`` names a sibling shard to steal from when the own
        pending directory is empty (work donation).
        """
        for path in self.pending_files(shard):
            claimed = self.try_claim(path, shard)
            if claimed is not None:
                return claimed
        if donate_from is not None and donate_from != shard:
            for path in self.pending_files(donate_from):
                claimed = self.try_claim(path, shard)
                if claimed is not None:
                    return claimed
        return None

    def release(self, claimed_path: Path) -> None:
        """Remove a claimed file after its result was published."""
        try:
            claimed_path.unlink()
        except FileNotFoundError:
            pass

    def claimed_files(self, shard: int) -> list[Path]:
        try:
            names = sorted(
                entry
                for entry in os.listdir(self.claimed_dir(shard))
                if entry.endswith(".json")
            )
        except FileNotFoundError:
            return []
        return [self.claimed_dir(shard) / name for name in names]

    # -- results ---------------------------------------------------------------

    def publish_result(self, job_id: str, record: dict[str, Any]) -> None:
        """Publish a terminal record (first writer wins; rest are no-ops).

        A result may race a coordinator-side cancel; the job's outcome is
        whichever record landed first, and the loser's publication is
        dropped rather than overwriting it.
        """
        path = self.done_path(job_id)
        if path.exists():
            return
        tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, sort_keys=True), encoding="utf-8")
        try:
            # Link-then-unlink would be strictly first-writer-wins; rename
            # keeps it simple and the exists() pre-check makes overwrite
            # races vanishingly rare and harmless (both records terminal).
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)

    def read_result(self, job_id: str) -> dict[str, Any] | None:
        return _read_json(self.done_path(job_id))

    def done_ids(self) -> list[str]:
        try:
            return sorted(
                name[: -len(".json")]
                for name in os.listdir(self.root / "done")
                if name.endswith(".json")
            )
        except FileNotFoundError:
            return []

    # -- cancellation ----------------------------------------------------------

    def request_cancel(self, job_id: str) -> None:
        self.cancel_path(job_id).touch()

    def cancel_requested(self, job_id: str) -> bool:
        return self.cancel_path(job_id).exists()

    # -- health / shutdown -----------------------------------------------------

    def publish_health(self, shard: int, payload: dict[str, Any]) -> None:
        payload = dict(payload)
        payload["time"] = time.time()
        _atomic_write_json(self.health_path(shard), payload)

    def read_health(self, shard: int) -> dict[str, Any] | None:
        return _read_json(self.health_path(shard))

    def signal_stop(self) -> None:
        self.stop_path.touch()

    def stop_requested(self) -> bool:
        return self.stop_path.exists()


def job_id_of(path: Path) -> str:
    """The job id encoded in a pending/claimed spool filename."""
    stem = path.name[: -len(".json")]
    # p<prio>-s<seq>-<job id>; the id itself may contain dashes.
    return stem.split("-", 2)[2]
