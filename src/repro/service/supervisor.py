"""Per-job supervision: attempts, retries, deadlines, cancellation.

The supervisor draws the line the paper's failure model implies:

* **Expected failures** — the partition failures a
  :class:`repro.runtime.failures.FailureSchedule` injects *inside* a run.
  These are the whole point of the reproduction: the in-run recovery
  strategy (optimistic compensation, rollback, restart) absorbs them and
  the run completes normally. The supervisor never sees them and never
  retries them.
* **Infrastructure failures** — the run itself dying in a way no in-run
  strategy can absorb: the spare pool is exhausted
  (:class:`repro.errors.RecoveryError`) or the job missed its wall-clock
  deadline mid-run. Spare exhaustion is retried with exponential backoff
  and seeded jitter, optionally on a boosted spare pool
  (:attr:`repro.service.job.JobSpec.retry_spare_boost` models acquiring
  replacement machines); deadline misses are terminal.
* **Permanent failures** — deterministic errors (bad config, malformed
  plans, strict-mode non-convergence). Retrying a deterministic engine
  reproduces the same error, so these fail the job immediately.

Deadlines are enforced cooperatively mid-run by wrapping the job's
tracer: every superstep span opening checks the wall clock and raises
:class:`repro.errors.JobTimeoutError` once the deadline passed. The
check reads the wall clock only — the simulated clock and the run's
results are untouched for every job that does not time out.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import Any, Callable

from ..config import EngineConfig
from ..errors import JobTimeoutError, RecoveryError, ReproError
from ..observability.convergence import ConvergenceMonitor
from ..observability.span import SpanKind
from ..observability.telemetry import RunTelemetry, TelemetryCollector
from ..observability.telemetry_log import TelemetryLog
from ..observability.tracer import NOOP_TRACER, RecordingTracer, Tracer
from ..runtime.metrics import MetricsRegistry
from ..runtime.parallel import default_parallel_workers
from .job import JobHandle, JobState

#: exception types classified as retryable infrastructure failures.
INFRA_ERRORS = (RecoveryError,)


class DeadlineTracer(Tracer):
    """Tracer wrapper that aborts a run once its wall deadline passes.

    Forwards everything to the inner tracer; the deadline check happens
    only on superstep spans, keeping operator/partition hot paths free
    of extra work.
    """

    def __init__(self, inner: Tracer, deadline_at: float):
        self._inner = inner
        self._deadline_at = deadline_at
        self.enabled = inner.enabled

    def bind(self, clock: Any) -> None:
        self._inner.bind(clock)

    def span(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any):
        if kind is SpanKind.SUPERSTEP and time.monotonic() >= self._deadline_at:
            raise JobTimeoutError(
                f"run aborted at {name}: wall-clock deadline passed"
            )
        return self._inner.span(name, kind, **attributes)

    def point(self, name: str, kind: SpanKind = SpanKind.PHASE, **attributes: Any) -> None:
        self._inner.point(name, kind, **attributes)

    @property
    def roots(self):
        return self._inner.roots

    @property
    def root(self):
        return self._inner.root


class JobSupervisor:
    """Runs one job to a terminal state, attempt by attempt.

    Args:
        metrics: the service-level registry ``service.*`` metrics land in.
        trace_jobs: record a per-attempt span tree on each handle.
        sleep: injectable sleep (tests replace it to skip real backoff).
        max_parallel_workers: per-job intra-job worker grant from the
            service's :class:`repro.runtime.parallel.CoreBudget`;
            ``None`` leaves job configs untouched. Clamping changes
            wall-clock scheduling only — results are backend- and
            worker-count-independent — so clamped jobs remain
            bit-identical to standalone runs.
        collector: optional :class:`TelemetryCollector` each attempt's
            per-run registry is registered with while it executes.
        telemetry_log: optional :class:`TelemetryLog` job lifecycle and
            convergence health events land in, correlated by
            ``job_id``/``attempt``.
        stall_supersteps / divergence_supersteps: thresholds of the
            per-attempt :class:`ConvergenceMonitor` (see
            :class:`repro.config.TelemetryConfig`).
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace_jobs: bool = False,
        sleep: Callable[[JobHandle, float], None] | None = None,
        max_parallel_workers: int | None = None,
        collector: TelemetryCollector | None = None,
        telemetry_log: TelemetryLog | None = None,
        stall_supersteps: int = 5,
        divergence_supersteps: int = 3,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_jobs = trace_jobs
        self.max_parallel_workers = max_parallel_workers
        self.collector = collector
        self.telemetry_log = telemetry_log
        self.stall_supersteps = stall_supersteps
        self.divergence_supersteps = divergence_supersteps
        self._monitors_lock = threading.Lock()
        self._monitors: dict[int, ConvergenceMonitor] = {}
        self._sleep = sleep if sleep is not None else self._interruptible_sleep

    # -- telemetry ----------------------------------------------------------------

    @property
    def telemetry_enabled(self) -> bool:
        return self.collector is not None or self.telemetry_log is not None

    def live_monitors(self) -> list[ConvergenceMonitor]:
        """Convergence monitors of the attempts executing right now."""
        with self._monitors_lock:
            return list(self._monitors.values())

    def _make_telemetry(
        self, handle: JobHandle, attempt: int
    ) -> RunTelemetry | None:
        if not self.telemetry_enabled:
            return None
        monitor = ConvergenceMonitor(
            handle.spec.name,
            job_id=handle.job_id,
            attempt=attempt,
            log=self.telemetry_log,
            stall_after=self.stall_supersteps,
            divergence_after=self.divergence_supersteps,
        )
        with self._monitors_lock:
            self._monitors[handle.job_id] = monitor
        return RunTelemetry(
            collector=self.collector,
            monitor=monitor,
            log=self.telemetry_log,
            job_id=handle.job_id,
            attempt=attempt,
        )

    def _drop_monitor(self, job_id: int) -> None:
        with self._monitors_lock:
            self._monitors.pop(job_id, None)

    def _emit(
        self, kind: str, level: str, handle: JobHandle, **details: Any
    ) -> None:
        if self.telemetry_log is not None:
            self.telemetry_log.emit(
                kind,
                level,
                job_id=handle.job_id,
                attempt=max(0, handle.attempts - 1),
                job=handle.spec.name,
                **details,
            )

    def _clamp_parallel(self, config: EngineConfig) -> EngineConfig:
        """Clamp a job's intra-job workers to the core-budget grant."""
        limit = self.max_parallel_workers
        if limit is None or config.parallel_backend == "serial":
            return config
        requested = (
            config.parallel_workers
            if config.parallel_workers is not None
            else default_parallel_workers()
        )
        granted = min(requested, limit)
        if granted == config.parallel_workers:
            return config
        if requested > granted:
            self.metrics.increment(
                "service.parallel_workers_clamped", requested - granted
            )
        return replace(config, parallel_workers=granted)

    @staticmethod
    def _interruptible_sleep(handle: JobHandle, delay: float) -> None:
        """Backoff sleep that cancel/shutdown can cut short."""
        handle._wake.wait(delay)

    def _attempt_tracer(self, handle: JobHandle, attempt: int) -> tuple[Tracer, Any]:
        """The tracer for one attempt plus the open job root span."""
        if not self.trace_jobs:
            inner: Tracer = NOOP_TRACER
        else:
            inner = RecordingTracer()
        root_ctx = inner.span(
            f"job:{handle.job_id}",
            kind=SpanKind.PHASE,
            job_id=handle.job_id,
            job_name=handle.spec.name,
            attempt=attempt,
            priority=handle.spec.priority,
        )
        tracer: Tracer = inner
        if handle.deadline_at is not None:
            tracer = DeadlineTracer(inner, handle.deadline_at)
        return tracer, (inner, root_ctx)

    def run_job(self, handle: JobHandle) -> None:
        """Drive ``handle`` from QUEUED/RETRYING to a terminal state."""
        try:
            self._run_job(handle)
        finally:
            self._drop_monitor(handle.job_id)
            if handle.is_terminal:
                self._emit(
                    "job_finished",
                    "info" if handle.state is JobState.SUCCEEDED else "warning",
                    handle,
                    state=handle.state.value,
                    attempts=handle.attempts,
                    retries=handle.retries,
                    total_seconds=handle.total_seconds,
                )

    def _run_job(self, handle: JobHandle) -> None:
        spec = handle.spec
        while True:
            if handle.is_terminal:
                return
            if handle.cancel_requested:
                handle.try_transition(JobState.CANCELLED)
                self.metrics.increment("service.cancelled")
                return
            if handle.deadline_expired:
                handle.try_transition(JobState.TIMED_OUT)
                self.metrics.increment("service.timed_out")
                return

            handle.transition(JobState.RUNNING)
            attempt = handle.attempts
            handle.attempts += 1
            self.metrics.increment("service.attempts")
            self._emit("attempt_started", "info", handle, queued_seconds=handle.time_in_queue)
            telemetry = self._make_telemetry(handle, attempt)
            tracer, (inner, root_ctx) = self._attempt_tracer(handle, attempt)
            attempt_started = time.monotonic()
            error: BaseException | None = None
            result = None
            with root_ctx as root_span:
                try:
                    result = spec.run_standalone(
                        attempt=attempt,
                        tracer=tracer,
                        config=self._clamp_parallel(spec.config_for_attempt(attempt)),
                        telemetry=telemetry,
                    )
                    root_span.set_attribute("outcome", "completed")
                except BaseException as exc:  # noqa: BLE001 — workers must survive
                    error = exc
                    root_span.set_attribute("outcome", type(exc).__name__)
            self.metrics.observe(
                "service.attempt_seconds", time.monotonic() - attempt_started
            )
            if inner.enabled:
                handle.trace_roots.extend(inner.roots)

            if error is None:
                if handle.cancel_requested:
                    # Cooperative cancel: the attempt completed but the
                    # caller no longer wants the result.
                    handle.try_transition(JobState.CANCELLED)
                    self.metrics.increment("service.cancelled")
                elif handle.deadline_expired:
                    handle.try_transition(JobState.TIMED_OUT)
                    self.metrics.increment("service.timed_out")
                else:
                    handle.set_result(result)
                    handle.transition(JobState.SUCCEEDED)
                    self.metrics.increment("service.succeeded")
                return

            if isinstance(error, JobTimeoutError):
                handle.set_error(error)
                handle.try_transition(JobState.TIMED_OUT)
                self.metrics.increment("service.timed_out")
                return

            retryable = isinstance(error, INFRA_ERRORS)
            retries_left = spec.retry.max_retries - handle.retries
            if retryable and retries_left > 0 and not handle.cancel_requested:
                handle.set_error(error)
                handle.transition(JobState.RETRYING)
                handle.retries += 1
                self.metrics.increment("service.retries")
                self._emit(
                    "attempt_retrying",
                    "warning",
                    handle,
                    error=type(error).__name__,
                    retries=handle.retries,
                )
                delay = spec.retry.delay(handle.retries - 1, handle.rng)
                if handle.deadline_at is not None:
                    delay = min(delay, max(0.0, handle.deadline_at - time.monotonic()))
                if delay > 0:
                    self._sleep(handle, delay)
                continue

            if handle.cancel_requested:
                handle.set_error(error)
                handle.try_transition(JobState.CANCELLED)
                self.metrics.increment("service.cancelled")
                return

            handle.set_error(error)
            handle.try_transition(JobState.FAILED)
            self.metrics.increment("service.failed")
            if not isinstance(error, ReproError):
                # Engine bugs are recorded on the handle like any failure,
                # but counted separately so they stand out in reports.
                self.metrics.increment("service.internal_errors")
            return
