"""Declarative job descriptions: the unit that crosses process boundaries.

:class:`repro.service.job.JobSpec` carries a ``make_job`` closure — fine
inside one process, unshippable across one (closures over graphs do not
pickle, and an HTTP client cannot send one at all). The sharded service
and the HTTP front door therefore speak :class:`JobDescriptor`: a pure
JSON-serializable value (algorithm kind, graph-generator seeds and
sizes, engine knobs, failure schedule, tenancy, deadline) from which any
process can *deterministically* rebuild the identical
:class:`~repro.service.job.JobSpec` via :meth:`JobDescriptor.to_spec`.
The engine is deterministic per job, so a descriptor executed on shard 3
of 4 produces bit-identical results to the same descriptor run
standalone in the submitting process — the S11 benchmark asserts exactly
that.

Terminal results travel the reverse direction as plain dicts
(:func:`result_record` / :func:`records_equal`): final records, superstep
count, simulated-time, converged flag and error text. JSON round-trips
Python floats exactly (``repr`` shortest-representation), so record
equality across the wire is genuine bit-identity, not approximation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

from ..algorithms.connected_components import connected_components
from ..algorithms.pagerank import pagerank
from ..config import RECOVERY_STRATEGIES, EngineConfig
from ..errors import ConfigError
from ..graph.generators import multi_component_graph, twitter_like_graph
from ..iteration.result import IterationResult
from ..runtime.failures import FailureSchedule
from .job import JobHandle, JobSpec, JobState, RetryPolicy

#: algorithm kinds a descriptor can name.
DESCRIPTOR_KINDS = ("cc", "pagerank")


@dataclass(frozen=True)
class JobDescriptor:
    """A JSON-serializable, deterministically-buildable job description.

    Attributes:
        name: human-readable job name.
        kind: ``"cc"`` (Connected Components over a
            :func:`~repro.graph.generators.multi_component_graph`) or
            ``"pagerank"`` (over a
            :func:`~repro.graph.generators.twitter_like_graph`).
        tenant: owning tenant (fair scheduling / quotas / shedding).
        priority: admission priority (higher runs earlier).
        deadline: wall-clock seconds from submission, or ``None``.
        recovery: recovery strategy name, one of
            :data:`repro.config.RECOVERY_STRATEGIES`.
        graph_seed: generator seed — with the size fields this pins the
            input graph exactly.
        num_components / component_size: CC graph shape.
        num_vertices: PageRank graph size.
        epsilon: PageRank convergence threshold.
        parallelism: partitions / workers of the run.
        spare_workers: spares held for in-run recovery.
        failures: injected failure schedule as
            ``[[superstep, [worker_id, ...]], ...]`` (JSON shape).
        max_retries / backoff_base: infra retry policy.
        retry_spare_boost: extra spares granted to a retry attempt.
        seed: engine seed stamped onto the spec.
    """

    name: str
    kind: str
    tenant: str = "default"
    priority: int = 0
    deadline: float | None = None
    recovery: str = "optimistic"
    graph_seed: int = 7
    num_components: int = 3
    component_size: int = 8
    num_vertices: int = 40
    epsilon: float = 1e-3
    parallelism: int = 4
    spare_workers: int = 4
    failures: tuple[tuple[int, tuple[int, ...]], ...] = ()
    max_retries: int = 2
    backoff_base: float = 0.01
    retry_spare_boost: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a job descriptor needs a non-empty name")
        if self.kind not in DESCRIPTOR_KINDS:
            raise ConfigError(
                f"kind must be one of {DESCRIPTOR_KINDS}, got {self.kind!r}"
            )
        if not self.tenant:
            raise ConfigError("a job descriptor needs a non-empty tenant")
        if self.recovery not in RECOVERY_STRATEGIES:
            raise ConfigError(
                f"recovery must be one of {RECOVERY_STRATEGIES}, "
                f"got {self.recovery!r}"
            )
        if self.parallelism < 1:
            raise ConfigError(f"parallelism must be >= 1, got {self.parallelism}")
        # Normalize the failure schedule to hashable tuples so descriptors
        # parsed from JSON (lists) compare equal to constructed ones.
        object.__setattr__(
            self,
            "failures",
            tuple(
                (int(superstep), tuple(int(w) for w in workers))
                for superstep, workers in self.failures
            ),
        )

    # -- building --------------------------------------------------------------

    def build_graph(self):
        """The (deterministic) input graph this descriptor names."""
        if self.kind == "cc":
            return multi_component_graph(
                self.num_components, self.component_size, seed=self.graph_seed
            )
        return twitter_like_graph(self.num_vertices, seed=self.graph_seed)

    def to_spec(self) -> JobSpec:
        """The equivalent :class:`JobSpec`, rebuilt deterministically."""
        graph = self.build_graph()
        if self.kind == "cc":
            make_job = lambda: connected_components(graph)  # noqa: E731
        else:
            epsilon = self.epsilon
            make_job = lambda: pagerank(graph, epsilon=epsilon)  # noqa: E731
        failures = None
        if self.failures:
            failures = FailureSchedule.at(
                *((superstep, list(workers)) for superstep, workers in self.failures)
            )
        return JobSpec(
            name=self.name,
            make_job=make_job,
            config=EngineConfig(
                parallelism=self.parallelism, spare_workers=self.spare_workers
            ),
            recovery=self.recovery,
            failures=failures,
            priority=self.priority,
            tenant=self.tenant,
            deadline=self.deadline,
            retry=RetryPolicy(
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                jitter=0.5,
            ),
            retry_spare_boost=self.retry_spare_boost,
            seed=self.seed,
        )

    # -- wire format -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobDescriptor":
        if not isinstance(data, dict):
            raise ConfigError(f"a job descriptor must be an object, got {type(data)}")
        known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown descriptor fields: {sorted(unknown)}")
        if "name" not in data or "kind" not in data:
            raise ConfigError("a job descriptor needs at least 'name' and 'kind'")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "JobDescriptor":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid descriptor JSON: {exc}") from None
        return cls.from_dict(data)


# -- terminal result records ----------------------------------------------------


def result_record(
    job_id: str | int, descriptor: JobDescriptor, handle: JobHandle
) -> dict[str, Any]:
    """The JSON-shaped terminal record of one executed descriptor.

    The handle must be terminal. Succeeded jobs carry the full result
    payload (final records, supersteps, simulated time, converged);
    failed/cancelled/timed-out jobs carry the error text instead.
    """
    record: dict[str, Any] = {
        "job_id": job_id,
        "name": descriptor.name,
        "tenant": descriptor.tenant,
        "state": handle.state.value,
        "shed": handle.shed,
        "attempts": handle.attempts,
        "error": None,
        "result": None,
    }
    if handle.state is JobState.SUCCEEDED:
        result = handle.result(timeout=0)
        record["result"] = serialize_result(result)
    elif handle.error is not None:
        record["error"] = f"{type(handle.error).__name__}: {handle.error}"
    else:
        record["error"] = f"job ended {handle.state.value} without a stored error"
    return record


def serialize_result(result: IterationResult) -> dict[str, Any]:
    """The bit-exact JSON shape of an :class:`IterationResult` payload."""
    return {
        "final_records": [[key, value] for key, value in result.final_records],
        "supersteps": result.supersteps,
        "sim_time": result.sim_time,
        "converged": result.converged,
    }


def records_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Bit-identity of two serialized results (wire-canonical compare).

    Both sides pass through one JSON round-trip so a freshly-serialized
    local result compares against one read back from a spool file or an
    HTTP body: tuples become lists, ints stay ints, floats stay
    bit-exact (JSON uses ``repr`` shortest representation).
    """
    return json.loads(json.dumps(a, sort_keys=True)) == json.loads(
        json.dumps(b, sort_keys=True)
    )


# -- workload generation ---------------------------------------------------------


def generate_descriptor_workload(
    num_jobs: int = 50,
    seed: int = 7,
    tenants: tuple[str, ...] = (),
    cc_fraction: float = 0.5,
    failure_density: float = 0.2,
    graph_scale: float = 1.0,
    parallelism: int = 4,
    priorities: tuple[int, ...] = (0, 1, 2),
    recovery: str = "optimistic",
    deadline: float | None = None,
) -> list[JobDescriptor]:
    """A seeded list of descriptors mirroring the loadgen's CC/PageRank mix.

    Same seed, same descriptors — and because descriptors rebuild their
    inputs from seeds, the same per-job results on any shard or host.
    ``graph_scale`` scales graph sizes down (for 500-job benchmark runs)
    or up.
    """
    import random

    if num_jobs < 1:
        raise ConfigError(f"num_jobs must be >= 1, got {num_jobs}")
    rng = random.Random(seed)
    descriptors: list[JobDescriptor] = []
    for index in range(num_jobs):
        is_cc = rng.random() < cc_fraction
        graph_seed = rng.randint(0, 2**31)
        failures: tuple[tuple[int, tuple[int, ...]], ...] = ()
        if rng.random() < failure_density:
            failures = ((rng.randint(1, 2), (rng.randrange(parallelism),)),)
        tenant = tenants[index % len(tenants)] if tenants else "default"
        if is_cc:
            descriptors.append(
                JobDescriptor(
                    name=f"cc-{index}",
                    kind="cc",
                    tenant=tenant,
                    priority=rng.choice(priorities),
                    deadline=deadline,
                    recovery=recovery,
                    graph_seed=graph_seed,
                    num_components=rng.randint(2, 4),
                    component_size=max(2, int(8 * graph_scale)),
                    parallelism=parallelism,
                    spare_workers=parallelism,
                    failures=failures,
                    seed=seed,
                )
            )
        else:
            descriptors.append(
                JobDescriptor(
                    name=f"pagerank-{index}",
                    kind="pagerank",
                    tenant=tenant,
                    priority=rng.choice(priorities),
                    deadline=deadline,
                    recovery=recovery,
                    graph_seed=graph_seed,
                    num_vertices=max(8, int(32 * graph_scale)),
                    epsilon=1e-3,
                    parallelism=parallelism,
                    spare_workers=parallelism,
                    failures=failures,
                    seed=seed,
                )
            )
    return descriptors
