"""Sharded multi-process job service: scale-out scheduling over a spool.

:class:`ShardedJobService` runs N independent scheduler shards, each a
full single-process :class:`repro.service.api.JobService` in its own OS
process, coordinated purely through a shared spool directory
(:class:`repro.service.spool.SpoolDir`): the coordinator places job
descriptors into per-shard pending directories, shards claim them by
atomic rename (exactly-once, no leader election), execute them through
their local admission queue + worker pool, and publish terminal records
into ``done/``.

Placement is a **consistent-hash ring** over tenants with virtual nodes:
a tenant's jobs land on a stable shard (warm caches, per-tenant ordering
pressure on one queue), and resizing the fleet moves only ~1/N of the
tenants. When a shard's own pending directory runs dry it **donates
work to itself** from the most-backlogged sibling — claims stay atomic,
so a donated job still executes exactly once.

The engine is deterministic per job and descriptors rebuild their inputs
from seeds, so a job's result is bit-identical whichever shard claims it
— and identical to the same descriptor run standalone in the submitting
process (benchmark S11 asserts this end to end).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import multiprocessing
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from ..config import (
    DEFAULT_SERVICE_CONFIG,
    DEFAULT_SHARD_CONFIG,
    ServiceConfig,
    ShardConfig,
)
from ..errors import AdmissionError, ServiceError
from .descriptor import JobDescriptor, result_record
from .spool import SpoolDir, job_id_of


class ConsistentHashRing:
    """Deterministic tenant → shard placement with virtual nodes.

    Uses SHA-1 (stable across processes and interpreter runs, unlike
    ``hash()``) and ``vnodes`` points per shard so placement stays
    balanced for small fleets.
    """

    def __init__(self, num_shards: int, vnodes: int = 64):
        if num_shards < 1:
            raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                digest = hashlib.sha1(
                    f"shard-{shard}-vnode-{vnode}".encode()
                ).digest()
                self._points.append((int.from_bytes(digest[:8], "big"), shard))
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    def place(self, tenant: str) -> int:
        """The shard owning ``tenant`` (clockwise successor on the ring)."""
        digest = hashlib.sha1(tenant.encode()).digest()
        key = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._keys, key)
        if index == len(self._points):
            index = 0
        return self._points[index][1]


def shard_worker_main(
    spool_root: str,
    shard_index: int,
    service_config: ServiceConfig,
    shard_config: ShardConfig,
) -> None:
    """One scheduler shard: claim → execute → publish, until stop + drained.

    Module-level so it works under both ``fork`` and ``spawn`` start
    methods. Runs a complete local :class:`JobService` and keeps at most
    ``max_inflight`` jobs admitted at once — the rest stay in the spool,
    which is what makes work donation between shards possible.
    """
    from .api import JobService  # deferred: avoid a cycle at import time

    spool = SpoolDir(spool_root, shard_config.num_shards)
    max_inflight = (
        shard_config.max_inflight
        if shard_config.max_inflight is not None
        else 2 * service_config.pool_size + 2
    )
    service = JobService(service_config)
    inflight: dict[str, tuple[Path, JobDescriptor, Any]] = {}
    claimed_total = donated_total = completed_total = 0
    last_health = 0.0
    try:
        while True:
            progressed = False
            # Reap terminal in-flight jobs into done/ and relay cancels.
            for job_id in list(inflight):
                claimed_path, descriptor, handle = inflight[job_id]
                if handle.is_terminal:
                    spool.publish_result(
                        job_id, result_record(job_id, descriptor, handle)
                    )
                    spool.release(claimed_path)
                    del inflight[job_id]
                    completed_total += 1
                    progressed = True
                elif spool.cancel_requested(job_id):
                    handle.request_cancel()
            # Claim up to the in-flight cap: own queue first, then donate
            # from the most-backlogged sibling.
            while len(inflight) < max_inflight:
                donate_from = None
                if (
                    shard_config.work_donation
                    and spool.pending_depth(shard_index) == 0
                ):
                    backlogs = [
                        (spool.pending_depth(sibling), sibling)
                        for sibling in range(shard_config.num_shards)
                        if sibling != shard_index
                    ]
                    if backlogs:
                        depth, donor = max(backlogs)
                        if depth > 0:
                            donate_from = donor
                claimed = spool.claim_next(shard_index, donate_from)
                if claimed is None:
                    break
                progressed = True
                job_id = job_id_of(claimed)
                try:
                    data = json.loads(claimed.read_text(encoding="utf-8"))
                    descriptor = JobDescriptor.from_dict(data)
                except Exception as exc:  # noqa: BLE001 — publish, don't die
                    spool.publish_result(
                        job_id,
                        {
                            "job_id": job_id,
                            "name": None,
                            "tenant": None,
                            "state": "failed",
                            "shed": False,
                            "attempts": 0,
                            "error": f"{type(exc).__name__}: {exc}",
                            "result": None,
                        },
                    )
                    spool.release(claimed)
                    continue
                if donate_from is not None:
                    donated_total += 1
                claimed_total += 1
                if spool.cancel_requested(job_id):
                    spool.publish_result(
                        job_id,
                        {
                            "job_id": job_id,
                            "name": descriptor.name,
                            "tenant": descriptor.tenant,
                            "state": "cancelled",
                            "shed": False,
                            "attempts": 0,
                            "error": "JobCancelledError: cancelled before claim",
                            "result": None,
                        },
                    )
                    spool.release(claimed)
                    continue
                try:
                    handle = service.submit(descriptor.to_spec())
                except AdmissionError as exc:
                    spool.publish_result(
                        job_id,
                        {
                            "job_id": job_id,
                            "name": descriptor.name,
                            "tenant": descriptor.tenant,
                            "state": "failed",
                            "shed": True,
                            "attempts": 0,
                            "error": f"AdmissionError: {exc}",
                            "result": None,
                        },
                    )
                    spool.release(claimed)
                    continue
                inflight[job_id] = (claimed, descriptor, handle)
            now = time.monotonic()
            if now - last_health >= shard_config.health_interval:
                spool.publish_health(
                    shard_index,
                    {
                        "state": "running",
                        "pid": os.getpid(),
                        "in_flight": len(inflight),
                        "pending": spool.pending_depth(shard_index),
                        "claimed": claimed_total,
                        "donated": donated_total,
                        "completed": completed_total,
                    },
                )
                last_health = now
            if (
                spool.stop_requested()
                and not inflight
                and spool.pending_depth(shard_index) == 0
            ):
                break
            if not progressed:
                time.sleep(shard_config.claim_interval)
    finally:
        service.shutdown(cancel_pending=True)
        spool.publish_health(
            shard_index,
            {
                "state": "stopped",
                "pid": os.getpid(),
                "in_flight": 0,
                "pending": spool.pending_depth(shard_index),
                "claimed": claimed_total,
                "donated": donated_total,
                "completed": completed_total,
            },
        )


class ShardedJobService:
    """The coordinator: places descriptors, tracks results, owns shards.

    Usage::

        from repro.config import ServiceConfig, ShardConfig
        from repro.service import JobDescriptor, ShardedJobService

        with ShardedJobService(ServiceConfig(pool_size=2),
                               ShardConfig(num_shards=4)) as svc:
            job_id = svc.submit(JobDescriptor(name="cc", kind="cc"))
            record = svc.result(job_id, timeout=60)

    Thread-safe: the HTTP front door submits from handler threads.
    """

    def __init__(
        self,
        service_config: ServiceConfig = DEFAULT_SERVICE_CONFIG,
        shard_config: ShardConfig = DEFAULT_SHARD_CONFIG,
        start: bool = True,
    ):
        self.service_config = service_config
        self.shard_config = shard_config
        if shard_config.spool_dir is None:
            self._spool_root = tempfile.mkdtemp(prefix="repro-spool-")
            self._owns_spool = True
        else:
            self._spool_root = shard_config.spool_dir
            self._owns_spool = False
        self.spool = SpoolDir(self._spool_root, shard_config.num_shards)
        self.spool.prepare()
        self.ring = ConsistentHashRing(shard_config.num_shards)
        self._lock = threading.Lock()
        self._next_job_id = 0
        self._jobs: dict[str, dict[str, Any]] = {}
        self._accepting = True
        self._closed = False
        self._started_at = time.monotonic()
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._reaped_shards: set[int] = set()
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the shard processes (idempotent)."""
        if self._procs:
            return
        # fork is cheapest and available on the platforms we target;
        # shard_worker_main is module-level and the configs pickle, so
        # spawn works too where fork does not exist.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        for shard in range(self.shard_config.num_shards):
            proc = ctx.Process(
                target=shard_worker_main,
                args=(
                    self._spool_root,
                    shard,
                    self.service_config,
                    self.shard_config,
                ),
                name=f"repro-shard-{shard}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    @property
    def spool_root(self) -> str:
        return self._spool_root

    # -- submission ------------------------------------------------------------

    def submit(self, descriptor: JobDescriptor) -> str:
        """Place one descriptor; returns its job id.

        Placement is by tenant through the consistent-hash ring; the
        spool filename preserves priority-then-FIFO claim order within
        the shard.
        """
        with self._lock:
            if not self._accepting:
                raise ServiceError(
                    "sharded service is draining or shut down; not accepting jobs"
                )
            job_id = f"job-{self._next_job_id:08d}"
            self._next_job_id += 1
            shard = self.ring.place(descriptor.tenant)
            priority = min(max(descriptor.priority, 0), 99)
            self.spool.submit(shard, job_id, priority, descriptor.to_dict())
            self._jobs[job_id] = {"descriptor": descriptor, "shard": shard}
        return job_id

    def submit_all(self, descriptors: list[JobDescriptor]) -> list[str]:
        return [self.submit(descriptor) for descriptor in descriptors]

    # -- observation -----------------------------------------------------------

    def job_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._jobs)

    def status(self, job_id: str) -> str:
        """``"queued"``, or the terminal state recorded in done/."""
        with self._lock:
            if job_id not in self._jobs:
                raise ServiceError(f"unknown job id {job_id}")
        record = self.spool.read_result(job_id)
        if record is None:
            return "queued"
        return record["state"]

    def result(self, job_id: str, timeout: float | None = None) -> dict[str, Any]:
        """Block for and return a job's terminal record.

        Raises :class:`repro.errors.ServiceError` when ``timeout``
        expires first. The record's ``state`` field says how the job
        ended; a succeeded record carries the full result payload.
        """
        with self._lock:
            if job_id not in self._jobs:
                raise ServiceError(f"unknown job id {job_id}")
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.spool.read_result(job_id)
            if record is not None:
                return record
            self._reap_dead_shards()
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still has no terminal record after {timeout}s"
                )
            time.sleep(self.shard_config.claim_interval)

    def wait_all(self, timeout: float | None = None) -> dict[str, dict[str, Any]]:
        """Block until every submitted job has a terminal record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        records: dict[str, dict[str, Any]] = {}
        while True:
            missing = False
            for job_id in self.job_ids():
                if job_id in records:
                    continue
                record = self.spool.read_result(job_id)
                if record is None:
                    missing = True
                else:
                    records[job_id] = record
            if not missing:
                return records
            self._reap_dead_shards()
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"{sum(1 for j in self.job_ids() if j not in records)} jobs "
                    f"still unterminated after {timeout}s"
                )
            time.sleep(self.shard_config.claim_interval)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; False when the job is already terminal.

        An unclaimed pending job is cancelled by the coordinator itself
        (its file is atomically stolen from the shard); a claimed one
        gets a cancel marker the owning shard relays to the running
        handle.
        """
        with self._lock:
            info = self._jobs.get(job_id)
            if info is None:
                raise ServiceError(f"unknown job id {job_id}")
        if self.spool.read_result(job_id) is not None:
            return False
        # Steal the pending file if no shard claimed it yet: rename is
        # atomic, so either we win (and publish the cancelled record) or
        # the claiming shard does (and honours the marker below).
        self.spool.request_cancel(job_id)
        for path in self.spool.pending_files(info["shard"]):
            if job_id_of(path) == job_id:
                # Move the stolen file out of the claimable namespace
                # (cancel/ holds the marker under the bare job id, so the
                # ".json"-suffixed stolen copy cannot collide with it).
                stolen = self.spool.root / "cancel" / f"stolen-{path.name}"
                try:
                    os.replace(path, stolen)
                except FileNotFoundError:
                    break
                descriptor = info["descriptor"]
                self.spool.publish_result(
                    job_id,
                    {
                        "job_id": job_id,
                        "name": descriptor.name,
                        "tenant": descriptor.tenant,
                        "state": "cancelled",
                        "shed": False,
                        "attempts": 0,
                        "error": "JobCancelledError: cancelled while pending",
                        "result": None,
                    },
                )
                break
        return True

    # -- health ----------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Coordinator + per-shard health (merged from the health files)."""
        shards = []
        for shard in range(self.shard_config.num_shards):
            payload = self.spool.read_health(shard) or {"state": "starting"}
            payload["shard"] = shard
            payload["alive"] = (
                self._procs[shard].is_alive() if shard < len(self._procs) else False
            )
            payload.setdefault("pending", self.spool.pending_depth(shard))
            shards.append(payload)
        done = len(self.spool.done_ids())
        with self._lock:
            submitted = self._next_job_id
            accepting = self._accepting
        return {
            "wall_seconds": time.monotonic() - self._started_at,
            "accepting": accepting,
            "num_shards": self.shard_config.num_shards,
            "submitted": submitted,
            "done": done,
            "pending": sum(
                self.spool.pending_depth(s)
                for s in range(self.shard_config.num_shards)
            ),
            "shards": shards,
        }

    # -- failure handling ------------------------------------------------------

    def _reap_dead_shards(self) -> None:
        """Publish failed records for jobs a dead shard had claimed.

        Pending (unclaimed) files of a dead shard are re-placed onto a
        live sibling so they still execute; claimed files were in flight
        inside the dead process and are failed explicitly — never a
        silent drop.
        """
        for shard, proc in enumerate(self._procs):
            if proc.is_alive() or shard in self._reaped_shards:
                continue
            if proc.exitcode == 0:
                continue
            self._reaped_shards.add(shard)
            for path in self.spool.claimed_files(shard):
                job_id = job_id_of(path)
                data: dict[str, Any] | None
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    data = None
                self.spool.publish_result(
                    job_id,
                    {
                        "job_id": job_id,
                        "name": (data or {}).get("name"),
                        "tenant": (data or {}).get("tenant"),
                        "state": "failed",
                        "shed": False,
                        "attempts": 0,
                        "error": f"ServiceError: shard {shard} died "
                        f"(exit code {proc.exitcode}) with this job claimed",
                        "result": None,
                    },
                )
                self.spool.release(path)
            live = [
                s
                for s, p in enumerate(self._procs)
                if p.is_alive() and s != shard
            ]
            if live:
                for path in self.spool.pending_files(shard):
                    target = self.spool.pending_dir(live[0]) / path.name
                    try:
                        os.replace(path, target)
                    except FileNotFoundError:
                        pass

    # -- shutdown --------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admissions and wait for every submitted job to terminate."""
        with self._lock:
            self._accepting = False
        try:
            self.wait_all(timeout)
            return True
        except ServiceError:
            return False

    def shutdown(self) -> None:
        """Signal stop, join the shards, terminate stragglers."""
        with self._lock:
            if self._closed:
                return
            self._accepting = False
            self._closed = True
        self.spool.signal_stop()
        deadline = time.monotonic() + self.shard_config.shutdown_timeout
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)

    def __enter__(self) -> "ShardedJobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
        self.shutdown()
