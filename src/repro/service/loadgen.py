"""Seeded load generation: mixed CC / PageRank workloads.

The generator turns one seed into a reproducible list of
:class:`repro.service.job.JobSpec`: algorithm mix, graph sizes, priority
mix, injected-failure density and the two forced scenarios the
acceptance experiment needs — a spare-pool exhaustion that the
supervisor retries on a boosted pool, and a zero-deadline job that times
out. Same seed, same workload; the service's per-job results are then
bit-identical run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algorithms.connected_components import connected_components
from ..algorithms.pagerank import pagerank
from ..config import PARALLEL_BACKENDS, RECOVERY_STRATEGIES, EngineConfig
from ..errors import ConfigError
from ..graph.generators import multi_component_graph, twitter_like_graph
from ..runtime.failures import FailureSchedule
from .job import JobSpec, RetryPolicy


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a generated workload.

    Attributes:
        num_jobs: total jobs generated.
        seed: master seed; every per-job choice derives from it.
        cc_fraction: fraction of Connected Components jobs (the rest is
            PageRank).
        failure_density: probability that a job gets an injected
            partition-failure schedule (handled in-run by the workload's
            recovery strategy).
        view_refresh_fraction: fraction of jobs that are **view
            refreshes** (:mod:`repro.views`): each one warm-refreshes a
            Connected Components view over a seeded mutated graph,
            seeded from the view's previous fixpoint — so sustained
            traffic exercises the refresh path (warm seeding, affected
            keys, compensation under injected failures) through the
            service. Carved out of the job mix before the CC/PageRank
            split; 0 (the default) generates none.
        recovery: recovery strategy name stamped onto every generated
            spec (one of :data:`repro.config.RECOVERY_STRATEGIES`); the
            ``serve`` CLI's ``--strategy`` flag lands here.
        parallelism: per-job worker / partition count.
        priorities: the priority levels jobs are drawn from (uniformly).
        graph_vertices: vertex-count range ``(lo, hi)`` of the per-job
            random graphs.
        epsilon: PageRank convergence threshold (loose by default so a
            load of jobs stays fast).
        infra_failures: how many jobs are engineered to exhaust the spare
            pool on their first attempt (``spare_workers=0`` plus an
            injected failure); their retry runs on a boosted pool and
            succeeds — the forced infrastructure-retry scenario.
        deadline_timeouts: how many jobs get a zero deadline and
            deterministically time out.
        backoff_base: retry backoff base of the generated specs (small,
            so workloads drain quickly in tests).
        parallel_backend: intra-job execution backend stamped onto every
            generated spec's :class:`repro.config.EngineConfig`;
            ``None`` keeps the engine default. Results are
            backend-independent, so the workload's per-job outputs stay
            bit-identical either way.
        parallel_workers: intra-job worker count for a parallel backend
            (the service's core budget may clamp it further).
        columnar: pack every generated job's partition payloads into
            typed columnar blocks; ``None`` keeps the engine default
            (the ``REPRO_COLUMNAR`` environment variable). Like the
            backend choice, it never changes per-job outputs.
        tenants: tenant names jobs are assigned to round-robin (for the
            multi-tenant fairness experiments); empty (the default)
            leaves every spec on the ``"default"`` tenant.
    """

    num_jobs: int = 50
    seed: int = 7
    cc_fraction: float = 0.5
    failure_density: float = 0.4
    view_refresh_fraction: float = 0.0
    parallelism: int = 4
    recovery: str = "optimistic"
    priorities: tuple[int, ...] = (0, 1, 2)
    graph_vertices: tuple[int, int] = (24, 60)
    epsilon: float = 1e-3
    infra_failures: int = 1
    deadline_timeouts: int = 1
    backoff_base: float = 0.01
    parallel_backend: str | None = None
    parallel_workers: int | None = None
    columnar: bool | None = None
    tenants: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if not 0.0 <= self.cc_fraction <= 1.0:
            raise ConfigError(
                f"cc_fraction must be in [0, 1], got {self.cc_fraction}"
            )
        if not 0.0 <= self.failure_density <= 1.0:
            raise ConfigError(
                f"failure_density must be in [0, 1], got {self.failure_density}"
            )
        if not 0.0 <= self.view_refresh_fraction <= 1.0:
            raise ConfigError(
                f"view_refresh_fraction must be in [0, 1], "
                f"got {self.view_refresh_fraction}"
            )
        if self.recovery not in RECOVERY_STRATEGIES:
            raise ConfigError(
                f"recovery must be one of {RECOVERY_STRATEGIES}, "
                f"got {self.recovery!r}"
            )
        if self.infra_failures + self.deadline_timeouts > self.num_jobs:
            raise ConfigError(
                "infra_failures + deadline_timeouts cannot exceed num_jobs"
            )
        if not self.priorities:
            raise ConfigError("priorities must name at least one level")
        if self.graph_vertices[0] < 2 or self.graph_vertices[1] < self.graph_vertices[0]:
            raise ConfigError(
                f"graph_vertices must be a (lo, hi) range with 2 <= lo <= hi, "
                f"got {self.graph_vertices}"
            )
        if (
            self.parallel_backend is not None
            and self.parallel_backend not in PARALLEL_BACKENDS
        ):
            raise ConfigError(
                f"parallel_backend must be one of {PARALLEL_BACKENDS}, "
                f"got {self.parallel_backend!r}"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ConfigError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )
        if any(not tenant for tenant in self.tenants):
            raise ConfigError("tenants must be non-empty names")

    def engine_overrides(self) -> dict[str, object]:
        """Per-job :class:`EngineConfig` kwargs for the parallel fields."""
        overrides: dict[str, object] = {}
        if self.parallel_backend is not None:
            overrides["parallel_backend"] = self.parallel_backend
        if self.parallel_workers is not None:
            overrides["parallel_workers"] = self.parallel_workers
        if self.columnar is not None:
            overrides["columnar"] = self.columnar
        return overrides


def _make_cc(graph):
    return lambda: connected_components(graph)


def _make_view_refresh(base_graph, mutation_seed: int):
    """A job factory producing one warm view refresh, reproducible per seed.

    Builds the whole refresh input deterministically: the view's previous
    fixpoint (a cold CC run over ``base_graph``), a seeded mutation epoch,
    and the warm job seeded from the previous labels with the workset
    shrunk to the affected keys. The import is deferred because
    :mod:`repro.views` itself builds on :mod:`repro.service`.
    """

    def make():
        from ..views import ConnectedComponentsView, MutableGraph, ScenarioConfig
        from ..views.algorithms import PreviousState, RefreshInputs
        from ..views.scenario import mutate_epoch

        algorithm = ConnectedComponentsView()
        mutable = MutableGraph(base_graph)
        previous = PreviousState(
            0,
            algorithm.canonicalize(
                algorithm.cold_job(RefreshInputs(0, base_graph)).run().final_records
            ),
        )
        scenario = ScenarioConfig(seed=mutation_seed, mutations_per_epoch=3)
        epoch = mutate_epoch(mutable, random.Random(mutation_seed), scenario)
        snap = mutable.snapshot()
        return algorithm.warm_job(RefreshInputs(snap.epoch, snap.graph), previous, [epoch])

    return make


def _make_pagerank(graph, epsilon):
    return lambda: pagerank(graph, epsilon=epsilon)


def generate_workload(config: WorkloadConfig = WorkloadConfig()) -> list[JobSpec]:
    """Generate the workload: a list of job specs, reproducible per seed."""
    rng = random.Random(config.seed)
    specs: list[JobSpec] = []
    retry = RetryPolicy(max_retries=2, backoff_base=config.backoff_base, jitter=0.5)
    overrides = config.engine_overrides()
    for index in range(config.num_jobs):
        is_view = rng.random() < config.view_refresh_fraction
        is_cc = rng.random() < config.cc_fraction
        num_vertices = rng.randint(*config.graph_vertices)
        graph_seed = rng.randint(0, 2**31)
        if is_view:
            graph = multi_component_graph(
                rng.randint(2, 4), max(2, num_vertices // 3), seed=graph_seed
            )
            make_job = _make_view_refresh(graph, graph_seed)
            kind = "view-refresh"
        elif is_cc:
            graph = multi_component_graph(
                rng.randint(2, 4), max(2, num_vertices // 3), seed=graph_seed
            )
            make_job = _make_cc(graph)
            kind = "cc"
        else:
            graph = twitter_like_graph(num_vertices, seed=graph_seed)
            make_job = _make_pagerank(graph, config.epsilon)
            kind = "pagerank"
        failures = None
        if rng.random() < config.failure_density:
            # One single-worker failure in the early supersteps — always
            # before CC's fastest convergence, so the event actually fires.
            failures = FailureSchedule.single(
                rng.randint(1, 2), [rng.randrange(config.parallelism)]
            )
        specs.append(
            JobSpec(
                name=f"{kind}-{index}",
                make_job=make_job,
                config=EngineConfig(
                    parallelism=config.parallelism,
                    spare_workers=config.parallelism,
                    **overrides,
                ),
                recovery=config.recovery,
                failures=failures,
                priority=rng.choice(config.priorities),
                tenant=config.tenants[index % len(config.tenants)]
                if config.tenants
                else "default",
                retry=retry,
                seed=config.seed,
            )
        )

    # Forced infrastructure failures: no spares on the first attempt, so
    # the injected failure exhausts the pool and raises RecoveryError;
    # the retry runs with a boosted spare pool and succeeds.
    rng_forced = random.Random(config.seed + 1)
    for index in range(config.infra_failures):
        target = rng_forced.randrange(len(specs))
        spec = specs[target]
        specs[target] = JobSpec(
            name=f"{spec.name}-infra",
            make_job=spec.make_job,
            config=EngineConfig(
                parallelism=config.parallelism, spare_workers=0, **overrides
            ),
            recovery=spec.recovery,
            failures=spec.failures
            or FailureSchedule.single(1, [rng_forced.randrange(config.parallelism)]),
            priority=spec.priority,
            tenant=spec.tenant,
            retry=retry,
            retry_spare_boost=config.parallelism,
            seed=config.seed,
        )

    # Forced deadline timeouts: a zero deadline expires while queued.
    taken = set()
    for index in range(config.deadline_timeouts):
        target = rng_forced.randrange(len(specs))
        while specs[target].name.endswith("-infra") or target in taken:
            target = rng_forced.randrange(len(specs))
        taken.add(target)
        spec = specs[target]
        specs[target] = JobSpec(
            name=f"{spec.name}-deadline",
            make_job=spec.make_job,
            config=spec.config,
            recovery=spec.recovery,
            failures=spec.failures,
            priority=spec.priority,
            tenant=spec.tenant,
            deadline=0.0,
            retry=retry,
            seed=config.seed,
        )
    return specs
