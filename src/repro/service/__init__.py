"""repro.service — a concurrent job service above the single-run engine.

The engine executes one deterministic iterative job; this package is the
layer a deployment puts on top: admission (bounded priority queue with
explicit backpressure), scheduling (a worker pool running N independent
engine runs concurrently), and supervision (deadlines, cancellation, and
retries that distinguish in-run injected failures — absorbed by the
recovery strategies — from infrastructure failures like spare-pool
exhaustion).

Quickstart::

    from repro.config import ServiceConfig
    from repro.service import JobService, WorkloadConfig, generate_workload

    with JobService(ServiceConfig(pool_size=4)) as service:
        handles = service.run_all(generate_workload(WorkloadConfig(num_jobs=10)))
        print(service.report().format())
"""

from .api import JobService, ServiceReport
from .job import (
    JOB_RECOVERIES,
    TERMINAL_STATES,
    JobHandle,
    JobSpec,
    JobState,
    RetryPolicy,
)
from .loadgen import WorkloadConfig, generate_workload
from .queue import AdmissionQueue
from .scheduler import WorkerPool
from .supervisor import DeadlineTracer, JobSupervisor

__all__ = [
    "AdmissionQueue",
    "DeadlineTracer",
    "JOB_RECOVERIES",
    "JobHandle",
    "JobService",
    "JobSpec",
    "JobState",
    "JobSupervisor",
    "RetryPolicy",
    "ServiceReport",
    "TERMINAL_STATES",
    "WorkerPool",
    "WorkloadConfig",
    "generate_workload",
]
