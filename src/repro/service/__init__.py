"""repro.service — a concurrent job service above the single-run engine.

The engine executes one deterministic iterative job; this package is the
layer a deployment puts on top: admission (bounded priority queue with
explicit backpressure), scheduling (a worker pool running N independent
engine runs concurrently), and supervision (deadlines, cancellation, and
retries that distinguish in-run injected failures — absorbed by the
recovery strategies — from infrastructure failures like spare-pool
exhaustion).

Scale-out adds three more layers (all stdlib, all deterministic per
job): :mod:`repro.service.fair` — tenant-fair admission (weighted
deficit round-robin, quotas, deadline-aware admission, load shedding);
:mod:`repro.service.shard` — N scheduler *processes* coordinated through
a shared spool directory with atomic-rename job claims, consistent-hash
tenant placement and work donation; :mod:`repro.service.http` — a thin
JSON/REST front door (``repro serve --http``).

Quickstart::

    from repro.config import ServiceConfig
    from repro.service import JobService, WorkloadConfig, generate_workload

    with JobService(ServiceConfig(pool_size=4)) as service:
        handles = service.run_all(generate_workload(WorkloadConfig(num_jobs=10)))
        print(service.report().format())

Sharded::

    from repro.config import ServiceConfig, ShardConfig
    from repro.service import JobDescriptor, ShardedJobService

    with ShardedJobService(ServiceConfig(pool_size=2),
                           ShardConfig(num_shards=4)) as service:
        job_id = service.submit(JobDescriptor(name="cc", kind="cc"))
        record = service.result(job_id, timeout=60)
"""

from .api import JobService, ServiceReport
from .descriptor import (
    JobDescriptor,
    generate_descriptor_workload,
    records_equal,
    result_record,
    serialize_result,
)
from .fair import FairAdmissionQueue
from .http import LocalBackend, ShardBackend, make_http_server
from .job import (
    JOB_RECOVERIES,
    TERMINAL_STATES,
    JobHandle,
    JobSpec,
    JobState,
    RetryPolicy,
)
from .loadgen import WorkloadConfig, generate_workload
from .queue import AdmissionQueue
from .scheduler import WorkerPool
from .shard import ConsistentHashRing, ShardedJobService
from .spool import SpoolDir
from .supervisor import DeadlineTracer, JobSupervisor

__all__ = [
    "AdmissionQueue",
    "ConsistentHashRing",
    "DeadlineTracer",
    "FairAdmissionQueue",
    "JOB_RECOVERIES",
    "JobDescriptor",
    "JobHandle",
    "JobService",
    "JobSpec",
    "JobState",
    "JobSupervisor",
    "LocalBackend",
    "RetryPolicy",
    "ServiceReport",
    "ShardBackend",
    "ShardedJobService",
    "SpoolDir",
    "TERMINAL_STATES",
    "WorkerPool",
    "WorkloadConfig",
    "generate_descriptor_workload",
    "generate_workload",
    "make_http_server",
    "records_equal",
    "result_record",
    "serialize_result",
]
