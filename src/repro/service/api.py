"""The public facade: :class:`JobService`.

Usage::

    from repro.config import ServiceConfig
    from repro.service import JobService, JobSpec

    with JobService(ServiceConfig(pool_size=4)) as service:
        handle = service.submit(JobSpec(name="cc", make_job=lambda: job))
        result = handle.result(timeout=30)

``submit`` admits a job (or raises :class:`repro.errors.AdmissionError`
under backpressure), ``status``/``result``/``cancel`` observe and steer
it, ``drain`` stops admissions and waits for the in-flight work, and
``run_all`` is the synchronous convenience the CLI and benchmarks use.

Everything observable lands on one :class:`repro.runtime.metrics.MetricsRegistry`:

==============================  ===========================================
``service.submitted``           submit calls (before admission control)
``service.admitted``            jobs accepted into the queue
``service.admission_rejects``   jobs refused by backpressure
``service.attempts``            engine runs started
``service.retries``             infrastructure retries performed
``service.succeeded`` /         terminal-state counters
``service.failed`` /
``service.cancelled`` /
``service.timed_out``
``service.queue_discarded``     terminal corpses dropped from the queue
``service.shed_jobs``           jobs evicted/refused by load shedding
``service.deadline_rejects``    jobs refused as provably unmeetable
``service.tenant.<t>.*``        per-tenant submitted/admitted/dequeued/shed
``service.queue_depth``         gauge: live queue depth
``service.jobs_in_flight``      gauge: jobs currently executing
``service.core_budget``         gauge: cores shared across job slots
``service.parallel_workers_per_job``  gauge: intra-job worker grant
``service.parallel_workers_clamped``  workers trimmed by the core budget
``service.queue_depth_sampled`` histogram: depth observed at each admission
``service.time_in_queue_seconds``  histogram: submit → first dequeue
``service.attempt_seconds``     histogram: wall seconds per engine run
``service.job_seconds``         histogram: submit → terminal state
``service.worker_busy_seconds`` histogram: seconds per worker dispatch
==============================  ===========================================

With :attr:`repro.config.ServiceConfig.telemetry` enabled the service
additionally runs a :class:`repro.observability.telemetry.TelemetryCollector`
(periodic time-series sampling of this registry plus every running
attempt's per-run registry), a bounded
:class:`repro.observability.telemetry_log.TelemetryLog` with per-job
correlation ids, and per-attempt convergence monitors — all surfaced
through :meth:`JobService.health` and the Prometheus renderer.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any

from ..config import DEFAULT_SERVICE_CONFIG, ServiceConfig
from ..errors import AdmissionError, ServiceError
from ..iteration.result import IterationResult
from ..observability.telemetry import TelemetryCollector
from ..observability.telemetry_log import TelemetryLog
from ..runtime.metrics import MetricsRegistry
from ..runtime.parallel import CoreBudget, iter_shared_backends
from .fair import FairAdmissionQueue, tenant_metric
from .job import JobHandle, JobSpec, JobState
from .queue import AdmissionQueue
from .scheduler import WorkerPool
from .supervisor import JobSupervisor


class JobService:
    """Admits, queues, schedules and supervises many concurrent runs."""

    def __init__(
        self,
        config: ServiceConfig = DEFAULT_SERVICE_CONFIG,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if config.fairness.enabled:
            self._queue: AdmissionQueue | FairAdmissionQueue = FairAdmissionQueue(
                capacity=config.queue_capacity,
                policy=config.backpressure,
                block_timeout=config.admission_timeout,
                fairness=config.fairness,
                metrics=self.metrics,
            )
        else:
            self._queue = AdmissionQueue(
                capacity=config.queue_capacity,
                policy=config.backpressure,
                block_timeout=config.admission_timeout,
                metrics=self.metrics,
            )
        # Split the machine's cores between the pool's job slots and each
        # job's intra-job parallel workers (wall-clock only; results are
        # backend-independent).
        self._core_budget = CoreBudget(config.core_budget)
        workers_per_job = self._core_budget.workers_per_slot(config.pool_size)
        # The telemetry layer is purely observational: the collector
        # samples registries on the wall clock and the log records
        # health/lifecycle events. Job results are bit-identical with it
        # on or off.
        telemetry_cfg = config.telemetry
        self.telemetry_log: TelemetryLog | None = None
        self.collector: TelemetryCollector | None = None
        if telemetry_cfg.enabled:
            self.telemetry_log = TelemetryLog(
                capacity=telemetry_cfg.event_capacity,
                path=telemetry_cfg.jsonl_path,
            )
            self.collector = TelemetryCollector(
                interval=telemetry_cfg.sample_interval,
                series_capacity=telemetry_cfg.series_capacity,
                log=self.telemetry_log,
            )
            self.collector.register(self.metrics, scope="service")
            self.collector.start()
        self._supervisor = JobSupervisor(
            metrics=self.metrics,
            trace_jobs=config.trace_jobs,
            max_parallel_workers=workers_per_job,
            collector=self.collector,
            telemetry_log=self.telemetry_log,
            stall_supersteps=telemetry_cfg.stall_supersteps,
            divergence_supersteps=telemetry_cfg.divergence_supersteps,
        )
        self._pool = WorkerPool(
            self._queue,
            self._run_one,
            pool_size=config.pool_size,
            poll_interval=config.poll_interval,
            on_timeout=self._on_queue_timeout,
            metrics=self.metrics,
        )
        self._lock = threading.Lock()
        self._handles: dict[int, JobHandle] = {}
        self._next_job_id = 0
        self._accepting = True
        self._closed = False
        self._started_at = time.monotonic()
        self.metrics.set_gauge("service.pool_size", config.pool_size)
        self.metrics.set_gauge("service.jobs_in_flight", 0)
        self.metrics.set_gauge("service.queue_depth", 0)
        self.metrics.set_gauge("service.core_budget", self._core_budget.total)
        self.metrics.set_gauge("service.parallel_workers_per_job", workers_per_job)

    # -- internal --------------------------------------------------------------

    def _run_one(self, handle: JobHandle) -> None:
        if handle.started_at is None:
            handle.started_at = time.monotonic()
            wait = handle.time_in_queue or 0.0
            self.metrics.observe("service.time_in_queue_seconds", wait)
            # Feed the fair queue's deadline-admission estimator (a no-op
            # on the base AdmissionQueue).
            self._queue.note_wait(wait)
        self.metrics.set_gauge("service.queue_depth", self._queue.depth)
        self.metrics.set_gauge("service.jobs_in_flight", self._pool.in_flight)
        try:
            self._supervisor.run_job(handle)
        finally:
            self.metrics.set_gauge("service.jobs_in_flight", self._pool.in_flight - 1)
            total = handle.total_seconds
            if total is not None:
                self.metrics.observe("service.job_seconds", total)

    def _on_queue_timeout(self, handle: JobHandle) -> None:
        # Deadline missed while queued: the pool never handed the job to
        # the supervisor, so account for the terminal state here.
        self.metrics.increment("service.timed_out")
        total = handle.total_seconds
        if total is not None:
            self.metrics.observe("service.job_seconds", total)

    # -- submission ------------------------------------------------------------

    def submit(self, spec: JobSpec, timeout: float | None = None) -> JobHandle:
        """Admit one job; returns its handle.

        Raises :class:`repro.errors.AdmissionError` when backpressure
        refuses the job, and :class:`repro.errors.ServiceError` when the
        service is draining or shut down.

        Specs that did not pick a recovery strategy (``recovery=None``)
        inherit :attr:`repro.config.ServiceConfig.default_recovery` when
        the service defines one; explicit per-job choices always win.
        """
        self.metrics.increment("service.submitted")
        if self.config.fairness.enabled:
            self.metrics.increment(tenant_metric(spec.tenant, "submitted"))
        if spec.recovery is None and self.config.default_recovery is not None:
            spec = replace(spec, recovery=self.config.default_recovery)
        with self._lock:
            if not self._accepting:
                raise ServiceError(
                    "service is draining or shut down; not accepting jobs"
                )
            job_id = self._next_job_id
            self._next_job_id += 1
        handle = JobHandle(job_id, spec)
        try:
            self._queue.put(handle, timeout=timeout)
        except AdmissionError:
            self.metrics.increment("service.admission_rejects")
            raise
        with self._lock:
            self._handles[job_id] = handle
        self.metrics.increment("service.admitted")
        if self.config.fairness.enabled:
            self.metrics.increment(tenant_metric(spec.tenant, "admitted"))
        depth = self._queue.depth
        self.metrics.set_gauge("service.queue_depth", depth)
        self.metrics.observe("service.queue_depth_sampled", depth)
        return handle

    # -- observation and steering ----------------------------------------------

    def handle(self, job_id: int) -> JobHandle:
        """The handle of a submitted job."""
        with self._lock:
            if job_id not in self._handles:
                raise ServiceError(f"unknown job id {job_id}")
            return self._handles[job_id]

    def handles(self) -> list[JobHandle]:
        """All handles, in submission order."""
        with self._lock:
            return [self._handles[jid] for jid in sorted(self._handles)]

    def status(self, job_id: int) -> JobState:
        """Current lifecycle state of a job."""
        return self.handle(job_id).state

    def result(self, job_id: int, timeout: float | None = None) -> IterationResult:
        """Block for and return a job's result (see :meth:`JobHandle.result`)."""
        return self.handle(job_id).result(timeout)

    def cancel(self, job_id: int) -> bool:
        """Cancel a job; False when it already reached a terminal state."""
        return self.handle(job_id).request_cancel()

    # -- drain / shutdown -------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admissions and wait until every admitted job is terminal.

        Returns False when ``timeout`` expired first (the service keeps
        working on the remainder; call again or :meth:`shutdown`).
        """
        with self._lock:
            self._accepting = False
        return self._pool.wait_idle(timeout)

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Drain admissions, stop the workers, cancel queued jobs."""
        with self._lock:
            if self._closed:
                return
            self._accepting = False
            self._closed = True
        for handle in self._pool.shutdown(cancel_pending=cancel_pending):
            self.metrics.increment("service.cancelled")
        self.metrics.set_gauge("service.queue_depth", self._queue.depth)
        self.metrics.set_gauge("service.jobs_in_flight", 0)
        if self.collector is not None:
            self.collector.stop()
        if self.telemetry_log is not None:
            self.telemetry_log.emit("service_shutdown", "info")
            self.telemetry_log.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
        self.shutdown()

    # -- conveniences ------------------------------------------------------------

    def run_all(
        self, specs: list[JobSpec], timeout: float | None = None
    ) -> list[JobHandle]:
        """Submit every spec, wait for all of them, return the handles.

        Admission uses the service's backpressure policy; a rejected spec
        surfaces as :class:`repro.errors.AdmissionError` immediately.
        Handles come back in submission order regardless of completion
        order; inspect each handle's state/result individually.
        """
        handles = [self.submit(spec, timeout=timeout) for spec in specs]
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in handles:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            handle.wait(remaining)
        return handles

    def report(self) -> "ServiceReport":
        """A snapshot report of the service's counters and latencies."""
        return ServiceReport.from_service(self)

    def health(self) -> dict[str, Any]:
        """A machine-readable live SLO/health report.

        One dict with queue depth and overload state, worker-pool
        utilization, job counters, p50/p95/p99 latency summaries,
        shared parallel-backend utilization/steal counters, a per-running-
        job convergence snapshot (rate, ETA, stall/divergence flags) and
        the most recent warning-level telemetry alerts. Works with
        telemetry disabled (jobs/alerts sections are then empty);
        :func:`repro.observability.health.render_status` renders the same
        dict as a ``repro status`` terminal frame.
        """
        metrics = self.metrics
        summaries = metrics.histogram_summaries()

        def _latency(name: str) -> dict[str, Any] | None:
            stats = summaries.get(name)
            if stats is None:
                return None
            return {
                "p50": stats.p50,
                "p95": stats.p95,
                "p99": stats.p99,
                "mean": stats.mean,
                "count": stats.count,
            }

        with self._lock:
            accepting = self._accepting
        depth = self._queue.depth
        capacity = self.config.queue_capacity
        jobs = []
        for monitor in self._supervisor.live_monitors():
            snap = monitor.snapshot()
            jobs.append(
                {
                    "job_id": snap["job_id"],
                    "name": snap["job"],
                    "state": "running",
                    "attempt": snap["attempt"],
                    "convergence": snap,
                }
            )
        jobs.sort(key=lambda j: j["job_id"] if j["job_id"] is not None else -1)
        backends = []
        for name, workers, registry in iter_shared_backends():
            snapshot = registry.snapshot_all(include_histograms=False)
            counters = snapshot["counters"]
            utilization = registry.histogram("parallel.worker_utilization")
            backends.append(
                {
                    "name": name,
                    "workers": workers,
                    "chunks_dispatched": counters.get("parallel.chunks.dispatched", 0),
                    "chunks_completed": counters.get("parallel.chunks.completed", 0),
                    "chunks_stolen": counters.get("parallel.chunks.stolen", 0),
                    "inline_fallbacks": counters.get("parallel.inline_fallbacks", 0),
                    "worker_respawns": counters.get("parallel.worker_respawns", 0),
                    "utilization": utilization.mean if utilization else None,
                }
            )
        alerts: list[dict[str, Any]] = []
        if self.telemetry_log is not None:
            alerts = [
                event.to_dict()
                for event in self.telemetry_log.events(min_level="warning")[-20:]
            ]
        return {
            "wall_seconds": time.monotonic() - self._started_at,
            "accepting": accepting,
            "queue": {
                "depth": depth,
                "capacity": capacity,
                "overloaded": capacity is not None and depth >= capacity,
                "backpressure": self.config.backpressure,
                "discarded": self._queue.discarded,
            },
            "fairness": {
                "enabled": self.config.fairness.enabled,
                "shed_jobs": getattr(self._queue, "shed_jobs", 0),
                "deadline_rejects": getattr(self._queue, "deadline_rejects", 0),
                "tenants": self._queue.tenant_stats()
                if isinstance(self._queue, FairAdmissionQueue)
                else {},
            },
            "pool": {
                "size": self.config.pool_size,
                "in_flight": self._pool.in_flight,
                "utilization": self._pool.utilization(),
                "busy_seconds": self._pool.busy_seconds,
            },
            "counters": {
                "submitted": metrics.get("service.submitted"),
                "admitted": metrics.get("service.admitted"),
                "rejected": metrics.get("service.admission_rejects"),
                "attempts": metrics.get("service.attempts"),
                "retries": metrics.get("service.retries"),
                "succeeded": metrics.get("service.succeeded"),
                "failed": metrics.get("service.failed"),
                "cancelled": metrics.get("service.cancelled"),
                "timed_out": metrics.get("service.timed_out"),
            },
            "latency": {
                "queue_wait": _latency("service.time_in_queue_seconds"),
                "attempt": _latency("service.attempt_seconds"),
                "job": _latency("service.job_seconds"),
            },
            "backends": backends,
            "jobs": jobs,
            "alerts": alerts,
            "telemetry": {
                "enabled": self.collector is not None,
                "samples": self.collector.samples if self.collector else 0,
                "series": len(self.collector.series_keys()) if self.collector else 0,
                "events": self.telemetry_log.emitted if self.telemetry_log else 0,
                "events_dropped": self.telemetry_log.dropped
                if self.telemetry_log
                else 0,
            },
        }


@dataclass
class ServiceReport:
    """A printable summary of one service's activity."""

    submitted: int
    admitted: int
    rejected: int
    attempts: int
    retries: int
    by_state: dict[str, int]
    wall_seconds: float
    queue_depth_p50: float | None
    queue_depth_max: float | None
    time_in_queue_p50: float | None
    time_in_queue_p95: float | None
    attempt_seconds_p50: float | None
    attempt_seconds_p95: float | None
    job_seconds_p95: float | None

    @classmethod
    def from_service(cls, service: JobService) -> "ServiceReport":
        metrics = service.metrics
        terminal = {
            state.value: sum(
                1 for h in service.handles() if h.state is state
            )
            for state in (
                JobState.SUCCEEDED,
                JobState.FAILED,
                JobState.CANCELLED,
                JobState.TIMED_OUT,
            )
        }

        def _stats(name: str):
            return metrics.histogram(name)

        depth = _stats("service.queue_depth_sampled")
        queue_time = _stats("service.time_in_queue_seconds")
        attempt = _stats("service.attempt_seconds")
        job = _stats("service.job_seconds")
        return cls(
            submitted=metrics.get("service.submitted"),
            admitted=metrics.get("service.admitted"),
            rejected=metrics.get("service.admission_rejects"),
            attempts=metrics.get("service.attempts"),
            retries=metrics.get("service.retries"),
            by_state=terminal,
            wall_seconds=time.monotonic() - service._started_at,
            queue_depth_p50=depth.p50 if depth else None,
            queue_depth_max=depth.maximum if depth else None,
            time_in_queue_p50=queue_time.p50 if queue_time else None,
            time_in_queue_p95=queue_time.p95 if queue_time else None,
            attempt_seconds_p50=attempt.p50 if attempt else None,
            attempt_seconds_p95=attempt.p95 if attempt else None,
            job_seconds_p95=job.p95 if job else None,
        )

    @property
    def completed(self) -> int:
        """Jobs that reached any terminal state."""
        return sum(self.by_state.values())

    @property
    def throughput(self) -> float:
        """Terminal jobs per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def format(self, title: str = "job service report") -> str:
        """Human-readable report block (the ``serve`` CLI prints this)."""

        def _sec(value: float | None) -> str:
            return "-" if value is None else f"{value * 1000:.1f}ms"

        lines = [
            f"=== {title} ===",
            f"submitted={self.submitted} admitted={self.admitted} "
            f"rejected={self.rejected}",
            "terminal: "
            + " ".join(f"{state}={count}" for state, count in self.by_state.items()),
            f"attempts={self.attempts} retries={self.retries}",
            f"throughput: {self.completed} jobs in {self.wall_seconds:.3f}s "
            f"({self.throughput:.1f} jobs/s)",
            f"queue depth: p50={self.queue_depth_p50 if self.queue_depth_p50 is not None else '-'} "
            f"max={self.queue_depth_max if self.queue_depth_max is not None else '-'}",
            f"time in queue: p50={_sec(self.time_in_queue_p50)} "
            f"p95={_sec(self.time_in_queue_p95)}",
            f"attempt time:  p50={_sec(self.attempt_seconds_p50)} "
            f"p95={_sec(self.attempt_seconds_p95)}",
            f"job time:      p95={_sec(self.job_seconds_p95)}",
        ]
        return "\n".join(lines)
