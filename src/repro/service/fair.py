"""Tenant-fair admission: weighted deficit round-robin, quotas, shedding.

:class:`FairAdmissionQueue` is a drop-in replacement for
:class:`repro.service.queue.AdmissionQueue` (same ``put`` / ``get`` /
``depth`` / ``drain_pending`` surface, so the worker pool is oblivious)
that splits the backlog into per-tenant sub-queues and serves them with
**deficit round-robin**: each round a tenant's deficit grows by its
weight and every dequeue costs one credit, so backlogged tenants receive
service in proportion to their weights — a weight-4 tenant completes
~4x the jobs of a weight-1 tenant under saturation, and a single heavy
tenant can no longer starve the rest of the fleet. Within a tenant the
ordering is the classic priority + FIFO heap.

Overload handling is layered on top:

* **per-tenant quotas** — a tenant at its live-queued cap is refused even
  when the queue has global room;
* **deadline-aware admission** — a job whose remaining deadline budget is
  below the observed queue-wait p95 is provably going to time out in the
  queue, so it is rejected at the door instead of wasting a slot;
* **load shedding** — when the queue is full, the newest lowest-priority
  job of the *lowest-weight* backlogged tenant is evicted to make room
  for a strictly higher-weight tenant's job. A shed job is never a
  silent drop: its handle transitions to FAILED with the
  :class:`repro.errors.AdmissionError` stored, so ``result()`` raises and
  the ``service.shed_jobs`` / per-tenant ``service.tenant.*`` counters
  account for it.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque

from ..config import DEFAULT_FAIRNESS_CONFIG, FairnessConfig
from ..errors import AdmissionError
from ..observability.metrics import percentile
from ..runtime.metrics import MetricsRegistry
from .job import JobHandle, JobState
from .queue import DISCARDED_METRIC, POLICIES

#: metric names of the shedding/fairness surface.
SHED_METRIC = "service.shed_jobs"
DEADLINE_REJECT_METRIC = "service.deadline_rejects"


def tenant_metric(tenant: str, suffix: str) -> str:
    """The ``service.tenant.<tenant>.<suffix>`` metric name."""
    return f"service.tenant.{tenant}.{suffix}"


class _TenantLane:
    """One tenant's sub-queue plus its DRR accounting."""

    __slots__ = ("tenant", "weight", "heap", "deficit", "dequeued", "shed")

    def __init__(self, tenant: str, weight: int):
        self.tenant = tenant
        self.weight = weight
        self.heap: list[tuple[int, int, JobHandle]] = []
        self.deficit = 0.0
        self.dequeued = 0
        self.shed = 0

    def live(self) -> int:
        return sum(1 for _, _, h in self.heap if not h.is_terminal)


class FairAdmissionQueue:
    """A bounded multi-tenant queue with weighted fair dequeue order.

    Args:
        capacity: global bound on live queued jobs (``None`` = unbounded).
        policy: ``"reject"`` or ``"block"`` — what a full queue (after
            compaction and shedding) does to ``put``.
        block_timeout: wait budget of a ``block`` admission.
        fairness: weights, quotas and shedding knobs
            (:class:`repro.config.FairnessConfig`).
        metrics: registry the shed/discard/tenant counters land in.
        wait_window: queue-wait observations kept for the deadline
            estimator (ring buffer).
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "reject",
        block_timeout: float = 10.0,
        fairness: FairnessConfig = DEFAULT_FAIRNESS_CONFIG,
        metrics: MetricsRegistry | None = None,
        wait_window: int = 256,
    ):
        if capacity is not None and capacity < 1:
            raise AdmissionError(f"queue capacity must be >= 1 or None, got {capacity}")
        if policy not in POLICIES:
            raise AdmissionError(f"policy must be one of {POLICIES}, got {policy!r}")
        self._capacity = capacity
        self._policy = policy
        self._block_timeout = block_timeout
        self._fairness = fairness
        self._metrics = metrics
        self._seq = 0
        self._discarded = 0
        self._shed = 0
        self._deadline_rejects = 0
        self._lanes: dict[str, _TenantLane] = {}
        #: round-robin service order over backlogged tenants.
        self._active: deque[str] = deque()
        self._waits: deque[float] = deque(maxlen=wait_window)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    # -- introspection ---------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def depth(self) -> int:
        """Live queued entries across all tenants."""
        with self._lock:
            return self._live_total()

    @property
    def discarded(self) -> int:
        with self._lock:
            return self._discarded

    @property
    def shed_jobs(self) -> int:
        """Jobs evicted or refused by load shedding so far."""
        with self._lock:
            return self._shed

    @property
    def deadline_rejects(self) -> int:
        """Jobs refused because their deadline was provably unmeetable."""
        with self._lock:
            return self._deadline_rejects

    def tenant_stats(self) -> dict[str, dict[str, float]]:
        """Per-tenant snapshot: weight, live queued, dequeued, shed."""
        with self._lock:
            return {
                lane.tenant: {
                    "weight": lane.weight,
                    "queued": lane.live(),
                    "dequeued": lane.dequeued,
                    "shed": lane.shed,
                }
                for lane in self._lanes.values()
            }

    # -- queue-wait estimator --------------------------------------------------

    def note_wait(self, seconds: float) -> None:
        """Feed one observed queue wait into the deadline estimator."""
        with self._lock:
            self._waits.append(seconds)

    def estimated_wait_p95(self) -> float | None:
        """The p95 of recent queue waits, or ``None`` before warm-up."""
        with self._lock:
            if len(self._waits) < self._fairness.min_wait_samples:
                return None
            return percentile(list(self._waits), 0.95)

    # -- internals (caller holds the lock) -------------------------------------

    def _live_total(self) -> int:
        return sum(lane.live() for lane in self._lanes.values())

    def _count_discards(self, dropped: int) -> None:
        if dropped <= 0:
            return
        self._discarded += dropped
        if self._metrics is not None:
            self._metrics.increment(DISCARDED_METRIC, dropped)

    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(tenant, self._fairness.weight_of(tenant))
            self._lanes[tenant] = lane
        return lane

    def _compact(self) -> None:
        for lane in self._lanes.values():
            live = [entry for entry in lane.heap if not entry[2].is_terminal]
            dropped = len(lane.heap) - len(live)
            if dropped:
                heapq.heapify(live)
                lane.heap = live
                self._count_discards(dropped)
        self._not_full.notify_all()

    def _full(self) -> bool:
        if self._capacity is None:
            return False
        if self._live_total() < self._capacity:
            return False
        self._compact()
        return self._live_total() >= self._capacity

    def _shed_record(self, lane: _TenantLane, handle: JobHandle, reason: str) -> None:
        """Mark ``handle`` shed: FAILED with the AdmissionError stored."""
        error = AdmissionError(reason)
        handle.shed = True
        handle.set_error(error)
        handle.try_transition(JobState.FAILED)
        lane.shed += 1
        self._shed += 1
        if self._metrics is not None:
            self._metrics.increment(SHED_METRIC)
            self._metrics.increment(tenant_metric(lane.tenant, "shed"))

    def _try_evict_for(self, incoming: JobHandle) -> bool:
        """Shed the worst job of the lowest-weight tenant, if strictly
        lighter than ``incoming``'s tenant. Returns True when room was made."""
        if not self._fairness.shed_lowest_first:
            return False
        incoming_weight = self._fairness.weight_of(incoming.spec.tenant)
        victim_lane = None
        for lane in self._lanes.values():
            if lane.weight >= incoming_weight:
                continue
            if lane.live() == 0:
                continue
            if victim_lane is None or lane.weight < victim_lane.weight:
                victim_lane = lane
        if victim_lane is None:
            return False
        # The victim is the entry that would be served last: lowest
        # priority, newest within that priority.
        index = max(
            range(len(victim_lane.heap)),
            key=lambda i: victim_lane.heap[i][:2],
        )
        _, _, victim = victim_lane.heap.pop(index)
        heapq.heapify(victim_lane.heap)
        if victim.is_terminal:
            # Raced with a cancel; the slot is free either way.
            self._count_discards(1)
            return True
        self._shed_record(
            victim_lane,
            victim,
            f"job {victim.job_id} ({victim.spec.name!r}) shed under overload: "
            f"tenant {victim_lane.tenant!r} (weight {victim_lane.weight}) "
            f"preempted by tenant {incoming.spec.tenant!r} "
            f"(weight {incoming_weight})",
        )
        return True

    # -- admission -------------------------------------------------------------

    def put(self, handle: JobHandle, timeout: float | None = None) -> None:
        """Admit ``handle``, or raise :class:`repro.errors.AdmissionError`.

        The checks run in order: deadline-aware admission, per-tenant
        quota, then global capacity (compaction → shedding → the
        backpressure policy).
        """
        tenant = handle.spec.tenant
        with self._lock:
            lane = self._lane(tenant)
            if (
                self._fairness.deadline_admission
                and handle.deadline_at is not None
                and len(self._waits) >= self._fairness.min_wait_samples
            ):
                remaining = handle.deadline_at - time.monotonic()
                p95 = percentile(list(self._waits), 0.95)
                if remaining < p95:
                    self._deadline_rejects += 1
                    self._shed += 1
                    lane.shed += 1
                    if self._metrics is not None:
                        self._metrics.increment(DEADLINE_REJECT_METRIC)
                        self._metrics.increment(SHED_METRIC)
                        self._metrics.increment(tenant_metric(tenant, "shed"))
                    raise AdmissionError(
                        f"job {handle.job_id} ({handle.spec.name!r}) rejected: "
                        f"deadline budget {max(0.0, remaining):.3f}s is below the "
                        f"queue-wait p95 of {p95:.3f}s — provably unmeetable"
                    )
            quota = self._fairness.tenant_quota
            if quota is not None and lane.live() >= quota:
                self._compact()
                if lane.live() >= quota:
                    raise AdmissionError(
                        f"tenant {tenant!r} is at its quota of {quota} queued "
                        f"jobs; job {handle.job_id} ({handle.spec.name!r}) rejected"
                    )
            if self._full() and not self._try_evict_for(handle):
                if self._policy == "reject":
                    self._shed += 1
                    lane.shed += 1
                    if self._metrics is not None:
                        self._metrics.increment(SHED_METRIC)
                        self._metrics.increment(tenant_metric(tenant, "shed"))
                    raise AdmissionError(
                        f"admission queue full ({self._capacity} live jobs) and "
                        f"no lower-weight tenant to shed; job {handle.job_id} "
                        f"({handle.spec.name!r}, tenant {tenant!r}) rejected"
                    )
                budget = self._block_timeout if timeout is None else timeout
                deadline = time.monotonic() + budget
                while self._full():
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        if self._full():
                            raise AdmissionError(
                                f"admission blocked for {budget:.3f}s waiting "
                                f"for queue room; job {handle.job_id} "
                                f"({handle.spec.name!r}) rejected"
                            )
            heapq.heappush(lane.heap, (-handle.spec.priority, self._seq, handle))
            self._seq += 1
            if tenant not in self._active:
                self._active.append(tenant)
            self._not_empty.notify()

    # -- dequeue ---------------------------------------------------------------

    def _pop_next(self) -> JobHandle | None:
        """One DRR step (caller holds the lock): the next live handle."""
        rounds_without_service = 0
        while self._active and rounds_without_service <= len(self._active):
            tenant = self._active[0]
            lane = self._lanes[tenant]
            # Drop corpses before charging anyone's deficit.
            while lane.heap and lane.heap[0][2].is_terminal:
                heapq.heappop(lane.heap)
                self._count_discards(1)
                self._not_full.notify()
            if not lane.heap:
                lane.deficit = 0.0
                self._active.popleft()
                rounds_without_service = 0
                continue
            if lane.deficit < 1.0:
                lane.deficit += lane.weight
                if lane.deficit < 1.0:
                    self._active.rotate(-1)
                    rounds_without_service += 1
                    continue
            _, _, handle = heapq.heappop(lane.heap)
            lane.deficit -= 1.0
            lane.dequeued += 1
            if self._metrics is not None:
                self._metrics.increment(tenant_metric(tenant, "dequeued"))
            self._not_full.notify()
            if not lane.heap:
                lane.deficit = 0.0
                self._active.popleft()
            elif lane.deficit < 1.0:
                self._active.rotate(-1)
            return handle
        return None

    def get(self, timeout: float | None = None) -> JobHandle | None:
        """The next handle in weighted-fair order, or ``None`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                handle = self._pop_next()
                if handle is not None:
                    return handle
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        # One final attempt covers a put that raced the
                        # timeout; None otherwise.
                        return self._pop_next()

    # -- drain -----------------------------------------------------------------

    def drain_pending(self) -> list[JobHandle]:
        """Remove and return every still-live queued handle (shutdown)."""
        with self._lock:
            pending: list[tuple[int, int, JobHandle]] = []
            dropped = 0
            for lane in self._lanes.values():
                for entry in lane.heap:
                    if entry[2].is_terminal:
                        dropped += 1
                    else:
                        pending.append(entry)
                lane.heap = []
                lane.deficit = 0.0
            self._active.clear()
            self._count_discards(dropped)
            self._not_full.notify_all()
            # Preserve global priority+FIFO order for the drain report.
            pending.sort(key=lambda entry: entry[:2])
            return [handle for _, _, handle in pending]
