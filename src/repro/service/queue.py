"""The admission queue: priority + FIFO, bounded, with backpressure.

Jobs wait here between ``submit`` and a free worker. Ordering is by
descending :attr:`repro.service.job.JobSpec.priority`, FIFO within a
priority level (a monotonic admission sequence number breaks ties, so
equal-priority jobs run in submission order).

The queue is bounded; what happens when it is full is the *backpressure
policy*:

* ``reject`` — ``put`` raises :class:`repro.errors.AdmissionError`
  immediately (load shedding: the caller learns right away);
* ``block`` — ``put`` waits up to a timeout for room, then raises the
  same typed error (admission control: the caller is slowed down).

Jobs cancelled while queued are discarded lazily at dequeue time — they
keep their slot until a worker pops them, which keeps ``put``/``cancel``
O(log n) instead of O(n). Laziness never costs capacity, though: a
``put`` that finds the queue full first compacts the not-yet-discarded
terminal entries ("corpses") out of the heap, so a queue can never
spuriously reject a live job because it is full of cancelled ones, and
``depth`` reports live entries only. Every corpse dropped — at dequeue
or during compaction — lands in the :attr:`AdmissionQueue.discarded`
counter (and the ``service.queue_discarded`` metric when the queue was
given a registry), so shed/cancelled churn is visible in ``health()``
instead of silently inflating queue-wait statistics.
"""

from __future__ import annotations

import heapq
import threading
import time

from ..errors import AdmissionError
from ..runtime.metrics import MetricsRegistry
from .job import JobHandle

#: backpressure policy names (mirrors repro.config.BACKPRESSURE_POLICIES).
POLICIES = ("reject", "block")

#: metric name corpse discards are counted under (when a registry is given).
DISCARDED_METRIC = "service.queue_discarded"


class AdmissionQueue:
    """A thread-safe bounded priority + FIFO queue of job handles.

    Args:
        capacity: maximum queued jobs (``None`` = unbounded).
        policy: ``"reject"`` or ``"block"`` (see module docstring).
        block_timeout: how long a ``block`` admission waits for room
            before raising :class:`repro.errors.AdmissionError`.
        metrics: optional registry corpse discards are counted into
            (``service.queue_discarded``).
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "reject",
        block_timeout: float = 10.0,
        metrics: MetricsRegistry | None = None,
    ):
        if capacity is not None and capacity < 1:
            raise AdmissionError(f"queue capacity must be >= 1 or None, got {capacity}")
        if policy not in POLICIES:
            raise AdmissionError(f"policy must be one of {POLICIES}, got {policy!r}")
        self._capacity = capacity
        self._policy = policy
        self._block_timeout = block_timeout
        self._metrics = metrics
        self._heap: list[tuple[int, int, JobHandle]] = []
        self._seq = 0
        #: terminal entries dropped at dequeue or compaction (monotonic).
        self._discarded = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def depth(self) -> int:
        """Live queued entries (terminal corpses are not counted)."""
        with self._lock:
            return sum(1 for _, _, h in self._heap if not h.is_terminal)

    @property
    def discarded(self) -> int:
        """Terminal entries dropped so far (dequeue-time or compaction)."""
        with self._lock:
            return self._discarded

    def note_wait(self, seconds: float) -> None:
        """Queue-wait feedback hook; the base queue does not use it.

        :class:`repro.service.fair.FairAdmissionQueue` overrides this to
        feed its deadline-aware admission estimator; the service calls it
        on every dequeue without caring which queue kind it has.
        """

    def _count_discards(self, dropped: int) -> None:
        """Record ``dropped`` corpses (caller holds the lock)."""
        if dropped <= 0:
            return
        self._discarded += dropped
        if self._metrics is not None:
            self._metrics.increment(DISCARDED_METRIC, dropped)

    def _compact(self) -> int:
        """Drop terminal entries from the heap (caller holds the lock).

        Returns the number of corpses removed. Cancelled/timed-out jobs
        are normally discarded lazily at dequeue; compaction runs when a
        ``put`` finds the queue full so corpses never occupy capacity.
        """
        live = [entry for entry in self._heap if not entry[2].is_terminal]
        dropped = len(self._heap) - len(live)
        if dropped:
            heapq.heapify(live)
            self._heap = live
            self._count_discards(dropped)
            self._not_full.notify_all()
        return dropped

    def _full(self) -> bool:
        if self._capacity is None or len(self._heap) < self._capacity:
            return False
        # The heap is at capacity, but some entries may be corpses:
        # compact before declaring the queue full so terminal handles
        # never cause a spurious rejection of a live job.
        self._compact()
        return len(self._heap) >= self._capacity

    def put(self, handle: JobHandle, timeout: float | None = None) -> None:
        """Admit ``handle``, or raise :class:`repro.errors.AdmissionError`.

        Under the ``block`` policy, waits up to ``timeout`` (default: the
        queue's ``block_timeout``) for room.
        """
        with self._lock:
            if self._full():
                if self._policy == "reject":
                    raise AdmissionError(
                        f"admission queue full ({self._capacity} jobs queued); "
                        f"job {handle.job_id} ({handle.spec.name!r}) rejected"
                    )
                budget = self._block_timeout if timeout is None else timeout
                deadline = time.monotonic() + budget
                while self._full():
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        if self._full():
                            raise AdmissionError(
                                f"admission blocked for {budget:.3f}s waiting "
                                f"for queue room; job {handle.job_id} "
                                f"({handle.spec.name!r}) rejected"
                            )
            heapq.heappush(self._heap, (-handle.spec.priority, self._seq, handle))
            self._seq += 1
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> JobHandle | None:
        """Pop the highest-priority live handle, or ``None`` on timeout.

        Handles that went terminal while queued (cancelled, or timed out
        by the caller) are discarded and counted
        (:attr:`discarded` / ``service.queue_discarded``).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, handle = heapq.heappop(self._heap)
                    self._not_full.notify()
                    if not handle.is_terminal:
                        return handle
                    self._count_discards(1)
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        if not self._heap:
                            return None

    def drain_pending(self) -> list[JobHandle]:
        """Remove and return every still-live queued handle (shutdown)."""
        with self._lock:
            pending = [h for _, _, h in self._heap if not h.is_terminal]
            self._count_discards(len(self._heap) - len(pending))
            self._heap.clear()
            self._not_full.notify_all()
            return pending
