"""The admission queue: priority + FIFO, bounded, with backpressure.

Jobs wait here between ``submit`` and a free worker. Ordering is by
descending :attr:`repro.service.job.JobSpec.priority`, FIFO within a
priority level (a monotonic admission sequence number breaks ties, so
equal-priority jobs run in submission order).

The queue is bounded; what happens when it is full is the *backpressure
policy*:

* ``reject`` — ``put`` raises :class:`repro.errors.AdmissionError`
  immediately (load shedding: the caller learns right away);
* ``block`` — ``put`` waits up to a timeout for room, then raises the
  same typed error (admission control: the caller is slowed down).

Jobs cancelled while queued are discarded lazily at dequeue time — they
keep their slot until a worker pops them, which keeps ``put``/``cancel``
O(log n) instead of O(n).
"""

from __future__ import annotations

import heapq
import threading
import time

from ..errors import AdmissionError
from .job import JobHandle

#: backpressure policy names (mirrors repro.config.BACKPRESSURE_POLICIES).
POLICIES = ("reject", "block")


class AdmissionQueue:
    """A thread-safe bounded priority + FIFO queue of job handles.

    Args:
        capacity: maximum queued jobs (``None`` = unbounded).
        policy: ``"reject"`` or ``"block"`` (see module docstring).
        block_timeout: how long a ``block`` admission waits for room
            before raising :class:`repro.errors.AdmissionError`.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "reject",
        block_timeout: float = 10.0,
    ):
        if capacity is not None and capacity < 1:
            raise AdmissionError(f"queue capacity must be >= 1 or None, got {capacity}")
        if policy not in POLICIES:
            raise AdmissionError(f"policy must be one of {POLICIES}, got {policy!r}")
        self._capacity = capacity
        self._policy = policy
        self._block_timeout = block_timeout
        self._heap: list[tuple[int, int, JobHandle]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def depth(self) -> int:
        """Queued entries (including not-yet-discarded cancelled ones)."""
        with self._lock:
            return len(self._heap)

    def _full(self) -> bool:
        return self._capacity is not None and len(self._heap) >= self._capacity

    def put(self, handle: JobHandle, timeout: float | None = None) -> None:
        """Admit ``handle``, or raise :class:`repro.errors.AdmissionError`.

        Under the ``block`` policy, waits up to ``timeout`` (default: the
        queue's ``block_timeout``) for room.
        """
        with self._lock:
            if self._full():
                if self._policy == "reject":
                    raise AdmissionError(
                        f"admission queue full ({self._capacity} jobs queued); "
                        f"job {handle.job_id} ({handle.spec.name!r}) rejected"
                    )
                budget = self._block_timeout if timeout is None else timeout
                deadline = time.monotonic() + budget
                while self._full():
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        if self._full():
                            raise AdmissionError(
                                f"admission blocked for {budget:.3f}s waiting "
                                f"for queue room; job {handle.job_id} "
                                f"({handle.spec.name!r}) rejected"
                            )
            heapq.heappush(self._heap, (-handle.spec.priority, self._seq, handle))
            self._seq += 1
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> JobHandle | None:
        """Pop the highest-priority live handle, or ``None`` on timeout.

        Handles that went terminal while queued (cancelled, or timed out
        by the caller) are discarded silently.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                while self._heap:
                    _, _, handle = heapq.heappop(self._heap)
                    self._not_full.notify()
                    if not handle.is_terminal:
                        return handle
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        if not self._heap:
                            return None

    def drain_pending(self) -> list[JobHandle]:
        """Remove and return every still-live queued handle (shutdown)."""
        with self._lock:
            pending = [h for _, _, h in self._heap if not h.is_terminal]
            self._heap.clear()
            self._not_full.notify_all()
            return pending
