"""Job specifications, lifecycle state machine, and handles.

A :class:`JobSpec` is everything needed to run one iterative job exactly
the way a standalone call to ``job.run(...)`` would: a factory producing
the algorithm job, an :class:`repro.config.EngineConfig`, a recovery
strategy name, a :class:`repro.runtime.failures.FailureSchedule`, plus
the service-level attributes — priority, deadline, and retry policy.
Because the engine is deterministic, :meth:`JobSpec.run_standalone` is
both the execution path the service's workers use *and* the oracle the
benchmarks compare against: a job run through the service is bit-identical
to the same spec run alone.

A :class:`JobHandle` is the caller's view of one submitted job: a
thread-safe lifecycle state machine

.. code-block:: text

    QUEUED ──▶ RUNNING ──▶ SUCCEEDED
       │  │     │  ▲  └──▶ FAILED
       │  │     ▼  │
       │  │   RETRYING ──▶ FAILED
       │  │     │
       │  └─────┼────────▶ FAILED (load shedding: rejected, never run)
       └────────┴────────▶ CANCELLED | TIMED_OUT

plus the result/error slot, attempt counters, and wall-clock timestamps
the service's metrics are computed from.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..config import DEFAULT_CONFIG, RECOVERY_STRATEGIES, EngineConfig
from ..core.adaptive import AdaptiveRecovery
from ..core.checkpointing import CheckpointRecovery
from ..core.confined import ConfinedRecovery
from ..core.incremental import IncrementalCheckpointRecovery
from ..core.recovery import RecoveryStrategy
from ..core.restart import LineageRecovery, RestartRecovery
from ..errors import (
    ConfigError,
    JobCancelledError,
    JobTimeoutError,
    ServiceError,
)
from ..iteration.result import IterationResult
from ..iteration.snapshots import SnapshotStore
from ..observability.tracer import Tracer
from ..runtime.failures import FailureSchedule

#: recovery strategy names a :class:`JobSpec` accepts (``None`` keeps the
#: driver default, which is restart — no fault tolerance). Tracks the
#: engine-wide registry so the service accepts exactly what the drivers do.
JOB_RECOVERIES = RECOVERY_STRATEGIES


class JobState(enum.Enum):
    """Lifecycle state of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    RETRYING = "retrying"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: states a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

#: the legal transitions of the lifecycle state machine.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    # QUEUED -> FAILED is the load-shedding edge: a fair queue evicting a
    # queued victim under overload marks it FAILED with an AdmissionError
    # so the rejection is always observable, never a silent drop.
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
    ),
    JobState.RUNNING: frozenset(
        {
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.RETRYING,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
        }
    ),
    JobState.RETRYING: frozenset(
        {JobState.RUNNING, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
    ),
    JobState.SUCCEEDED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMED_OUT: frozenset(),
}


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for infrastructure retries.

    The delay before retry attempt ``k`` (0-based) is::

        min(backoff_cap, backoff_base * backoff_factor ** k) * (1 + jitter * u)

    with ``u`` drawn uniformly from ``[0, 1)`` out of the job's seeded
    RNG, so a workload's retry timing is reproducible per seed.

    Attributes:
        max_retries: how many times an infrastructure failure is retried
            before the job is marked FAILED (0 = never retry).
        backoff_base: first delay, in wall-clock seconds.
        backoff_factor: multiplier per further retry.
        backoff_cap: upper bound on the un-jittered delay.
        jitter: fraction of random spread added on top (0 = none).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap < 0:
            raise ConfigError(f"backoff_cap must be >= 0, got {self.backoff_cap}")
        if self.jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Backoff delay (seconds) before 0-based retry ``retry_index``."""
        base = min(self.backoff_cap, self.backoff_base * self.backoff_factor**retry_index)
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class JobSpec:
    """One iterative-recovery job, as submitted to the service.

    Attributes:
        name: human-readable job name (used in reports and span tags).
        make_job: zero-argument factory returning a fresh runnable job
            (:class:`repro.algorithms.base.BulkJob` or
            :class:`~repro.algorithms.base.DeltaJob`). A factory rather
            than an instance so every retry attempt starts from pristine
            plan/state objects.
        config: engine configuration of the run.
        recovery: recovery strategy name (one of :data:`JOB_RECOVERIES`)
            or ``None`` for the driver default (restart).
        checkpoint_interval: interval for ``recovery="checkpoint"``.
        failures: partition failures injected *inside* the run; these are
            expected failures, handled by the in-run recovery strategy
            and never retried at the job level.
        snapshots: record per-superstep snapshots during the run.
        priority: admission priority; higher runs sooner. Ties are FIFO.
        tenant: the tenant this job is billed to. Tenant-fair scheduling
            (:class:`repro.service.fair.FairAdmissionQueue`) runs a
            deficit round-robin across tenants so one heavy tenant cannot
            starve the rest; the plain queue ignores the field.
        deadline: wall-clock budget in seconds from submission; ``None``
            = unbounded. Enforced when the job is dequeued, between retry
            attempts, and cooperatively at superstep granularity mid-run.
        retry: the infrastructure-failure retry policy.
        retry_spare_boost: extra spare workers granted per retry attempt
            (models acquiring replacement machines after a spare-pool
            exhaustion); attempt ``k`` runs with
            ``spare_workers + k * retry_spare_boost``.
        seed: seed of the per-job RNG that draws backoff jitter.
    """

    name: str
    make_job: Callable[[], Any]
    config: EngineConfig = DEFAULT_CONFIG
    recovery: str | None = "optimistic"
    checkpoint_interval: int = 2
    failures: FailureSchedule | None = None
    snapshots: bool = False
    priority: int = 0
    tenant: str = "default"
    deadline: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    retry_spare_boost: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a job spec needs a non-empty name")
        if not callable(self.make_job):
            raise ConfigError("make_job must be a zero-argument job factory")
        if not self.tenant:
            raise ConfigError("a job spec needs a non-empty tenant")
        if self.recovery is not None and self.recovery not in JOB_RECOVERIES:
            raise ConfigError(
                f"recovery must be one of {JOB_RECOVERIES} or None, "
                f"got {self.recovery!r}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.deadline is not None and self.deadline < 0:
            raise ConfigError(f"deadline must be >= 0, got {self.deadline}")
        if self.retry_spare_boost < 0:
            raise ConfigError(
                f"retry_spare_boost must be >= 0, got {self.retry_spare_boost}"
            )

    def config_for_attempt(self, attempt: int) -> EngineConfig:
        """The engine config of 0-based attempt ``attempt``.

        Retries may run with a boosted spare pool (see
        :attr:`retry_spare_boost`); everything else is unchanged, so a
        retried run is the same deterministic simulation on a slightly
        larger cluster.
        """
        if attempt == 0 or self.retry_spare_boost == 0:
            return self.config
        return replace(
            self.config,
            spare_workers=self.config.spare_workers + attempt * self.retry_spare_boost,
        )

    def build_recovery(self, job: Any) -> RecoveryStrategy | None:
        """Construct a fresh recovery strategy for one attempt."""
        if self.recovery is None:
            return None
        if self.recovery == "optimistic":
            return job.optimistic()
        if self.recovery == "checkpoint":
            return CheckpointRecovery(interval=self.checkpoint_interval)
        if self.recovery == "incremental":
            return IncrementalCheckpointRecovery()
        if self.recovery == "restart":
            return RestartRecovery()
        if self.recovery == "confined":
            return ConfinedRecovery()
        if self.recovery == "adaptive":
            return AdaptiveRecovery(
                getattr(job, "compensation", None),
                getattr(job, "invariants", None),
                checkpoint_interval=self.checkpoint_interval,
            )
        return LineageRecovery()

    def run_standalone(
        self,
        attempt: int = 0,
        *,
        tracer: Tracer | None = None,
        config: EngineConfig | None = None,
        telemetry: Any | None = None,
    ) -> IterationResult:
        """Run this spec exactly as a service worker would.

        This is the single execution path shared by the service and by
        standalone callers, which is what makes the service's results
        provably bit-identical to single-run execution. ``config``
        overrides the attempt's engine config; the supervisor uses it to
        clamp ``parallel_workers`` to the service's core budget (a
        wall-clock-only knob, so results stay identical). ``telemetry``
        is a :class:`repro.observability.telemetry.RunTelemetry` bundle —
        observational only, so telemetry on/off changes nothing either.
        """
        job = self.make_job()
        return job.run(
            config=config if config is not None else self.config_for_attempt(attempt),
            recovery=self.build_recovery(job),
            failures=self.failures,
            snapshots=SnapshotStore() if self.snapshots else None,
            tracer=tracer,
            telemetry=telemetry,
        )


class JobHandle:
    """The caller's thread-safe view of one submitted job."""

    def __init__(self, job_id: int, spec: JobSpec):
        self.job_id = job_id
        self.spec = spec
        self._lock = threading.RLock()
        self._state = JobState.QUEUED
        self._done = threading.Event()
        #: set to interrupt a retry backoff sleep (cancel / shutdown).
        self._wake = threading.Event()
        self._cancel_requested = False
        self._result: IterationResult | None = None
        self._error: BaseException | None = None
        #: attempts started (1 after the first run begins).
        self.attempts = 0
        #: retries performed (attempts - 1 for a retried job).
        self.retries = 0
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: True when load shedding evicted/refused this job (the handle is
        #: then FAILED with the AdmissionError stored as its error).
        self.shed = False
        #: span trees recorded for this job's attempts (when tracing).
        self.trace_roots: list[Any] = []
        #: jitter RNG; seeded per job so retry timing reproduces per seed.
        self.rng = random.Random(f"{spec.seed}:{job_id}")

    # -- state machine ---------------------------------------------------------

    @property
    def state(self) -> JobState:
        with self._lock:
            return self._state

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cancel_requested(self) -> bool:
        with self._lock:
            return self._cancel_requested

    def transition(self, new_state: JobState) -> None:
        """Move the state machine; raises ServiceError on illegal moves."""
        with self._lock:
            if new_state not in _TRANSITIONS[self._state]:
                raise ServiceError(
                    f"job {self.job_id} ({self.spec.name!r}): illegal transition "
                    f"{self._state.value} -> {new_state.value}"
                )
            self._state = new_state
            if new_state in TERMINAL_STATES:
                self.finished_at = time.monotonic()
                self._done.set()
                self._wake.set()

    def try_transition(self, new_state: JobState) -> bool:
        """Like :meth:`transition` but returns False instead of raising."""
        with self._lock:
            if new_state not in _TRANSITIONS[self._state]:
                return False
            self.transition(new_state)
            return True

    # -- deadline --------------------------------------------------------------

    @property
    def deadline_at(self) -> float | None:
        """Monotonic timestamp the deadline expires at (``None`` = never)."""
        if self.spec.deadline is None:
            return None
        return self.submitted_at + self.spec.deadline

    @property
    def deadline_expired(self) -> bool:
        deadline_at = self.deadline_at
        return deadline_at is not None and time.monotonic() >= deadline_at

    # -- cancellation ----------------------------------------------------------

    def request_cancel(self) -> bool:
        """Ask for cancellation; returns False when already terminal.

        A QUEUED job is cancelled immediately (the queue discards it on
        dequeue). A RUNNING or RETRYING job is cancelled cooperatively at
        its next attempt boundary; its in-flight attempt's result is
        discarded.
        """
        with self._lock:
            if self._state in TERMINAL_STATES:
                return False
            self._cancel_requested = True
            if self._state is JobState.QUEUED:
                self.transition(JobState.CANCELLED)
            else:
                self._wake.set()
            return True

    # -- completion ------------------------------------------------------------

    def set_result(self, result: IterationResult) -> None:
        with self._lock:
            self._result = result

    def set_error(self, error: BaseException) -> None:
        with self._lock:
            self._error = error

    @property
    def error(self) -> BaseException | None:
        with self._lock:
            return self._error

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; True when it finished."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> IterationResult:
        """The job's :class:`repro.iteration.result.IterationResult`.

        Blocks up to ``timeout`` seconds. Raises the job's stored error
        for FAILED jobs, :class:`repro.errors.JobCancelledError` /
        :class:`repro.errors.JobTimeoutError` for cancelled / timed-out
        ones, and :class:`repro.errors.ServiceError` when the job is
        still not terminal after the wait.
        """
        self.wait(timeout)
        with self._lock:
            if self._state is JobState.SUCCEEDED:
                assert self._result is not None
                return self._result
            if self._state is JobState.FAILED:
                assert self._error is not None
                raise self._error
            if self._state is JobState.CANCELLED:
                raise JobCancelledError(
                    f"job {self.job_id} ({self.spec.name!r}) was cancelled"
                )
            if self._state is JobState.TIMED_OUT:
                raise JobTimeoutError(
                    f"job {self.job_id} ({self.spec.name!r}) missed its "
                    f"deadline of {self.spec.deadline}s"
                )
            raise ServiceError(
                f"job {self.job_id} ({self.spec.name!r}) is still "
                f"{self._state.value}; no result yet"
            )

    # -- timings ---------------------------------------------------------------

    @property
    def time_in_queue(self) -> float | None:
        """Wall seconds between submission and first dequeue."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def total_seconds(self) -> float | None:
        """Wall seconds between submission and the terminal state."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"JobHandle({self.job_id}, {self.spec.name!r}, "
            f"{self.state.value}, attempts={self.attempts})"
        )
