"""The worker pool: N concurrent jobs, drain and shutdown.

Each job's engine run is self-contained — its own simulated cluster,
clock, executor, storage and metrics — and fully deterministic, so
running many jobs side by side on a :class:`ThreadPoolExecutor` changes
wall-clock behavior only, never per-job results.

The pool runs ``pool_size`` long-lived worker loops. Each loop pulls the
next live handle from the :class:`repro.service.queue.AdmissionQueue`
(waking every ``poll_interval`` seconds to check the stop flag, so a
quiet pool can always be shut down), enforces the job's deadline at
dequeue time, and hands the job to the runner — in the service, the
:class:`repro.service.supervisor.JobSupervisor`.

Shutdown protocol:

* :meth:`WorkerPool.wait_idle` — block until no job is queued or in
  flight (the "drain" half; the service stops admissions first);
* :meth:`WorkerPool.shutdown` — stop the loops after their current job,
  cancel whatever is still queued, and join the threads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..errors import ServiceError
from ..runtime.metrics import MetricsRegistry
from .job import JobHandle, JobState
from .queue import AdmissionQueue


class WorkerPool:
    """``pool_size`` worker loops draining one admission queue.

    When given a ``metrics`` registry the pool keeps per-worker busy-time
    accounting: ``service.worker_busy_seconds`` accumulates seconds spent
    executing jobs, which together with :meth:`utilization` feeds the
    service's SLO health report.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        runner: Callable[[JobHandle], None],
        pool_size: int = 4,
        poll_interval: float = 0.02,
        thread_name_prefix: str = "repro-service",
        on_timeout: Callable[[JobHandle], None] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if pool_size < 1:
            raise ServiceError(f"pool_size must be >= 1, got {pool_size}")
        self._queue = queue
        self._runner = runner
        self._on_timeout = on_timeout
        self.pool_size = pool_size
        self._poll_interval = poll_interval
        self._metrics = metrics
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        self._busy_seconds = 0.0
        self._dispatch_started: dict[int, float] = {}
        self._started_at = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix=thread_name_prefix
        )
        self._loops = [
            self._executor.submit(self._worker_loop) for _ in range(pool_size)
        ]

    # -- introspection --------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Jobs currently being executed by a worker."""
        with self._lock:
            return self._in_flight

    @property
    def busy_seconds(self) -> float:
        """Cumulative worker-seconds spent executing jobs (completed
        dispatches only; in-flight time is counted when it finishes)."""
        with self._lock:
            return self._busy_seconds

    def utilization(self) -> float:
        """Fraction of the pool's lifetime worker capacity spent busy.

        Counts both banked busy time and the elapsed time of currently
        in-flight dispatches, so a saturated pool reads ~1.0 while its
        jobs are still running.
        """
        now = time.monotonic()
        elapsed = now - self._started_at
        if elapsed <= 0:
            return 0.0
        with self._lock:
            busy = self._busy_seconds + sum(
                now - started for started in self._dispatch_started.values()
            )
        return min(1.0, busy / (elapsed * self.pool_size))

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    # -- the worker loop ------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            handle = self._queue.get(timeout=self._poll_interval)
            if handle is None:
                continue
            started = time.monotonic()
            with self._lock:
                self._in_flight += 1
                self._dispatch_started[handle.job_id] = started
            try:
                if handle.deadline_expired:
                    # Missed the deadline while waiting in the queue.
                    if handle.try_transition(JobState.TIMED_OUT) and self._on_timeout:
                        self._on_timeout(handle)
                else:
                    self._runner(handle)
            finally:
                busy = time.monotonic() - started
                with self._lock:
                    self._in_flight -= 1
                    self._busy_seconds += busy
                    self._dispatch_started.pop(handle.job_id, None)
                    self._idle.notify_all()
                if self._metrics is not None:
                    self._metrics.observe("service.worker_busy_seconds", busy)

    # -- drain / shutdown -----------------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no job is in flight.

        The caller must have stopped admissions first, otherwise new jobs
        can keep the pool busy forever. Returns False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._in_flight > 0 or self._queue.depth > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                # Wake periodically: queue depth changes on another lock.
                wait = self._poll_interval if remaining is None else min(
                    self._poll_interval, remaining
                )
                self._idle.wait(wait)
        return True

    def shutdown(self, cancel_pending: bool = True) -> list[JobHandle]:
        """Stop the loops, cancel queued jobs, join the threads.

        Running jobs finish their current attempt. Returns the handles
        that were cancelled while still queued.
        """
        self._stop.set()
        cancelled: list[JobHandle] = []
        if cancel_pending:
            for handle in self._queue.drain_pending():
                if handle.request_cancel():
                    cancelled.append(handle)
        self._executor.shutdown(wait=True)
        return cancelled
