"""Matrix factorization with ALS as a bulk iteration (extension scope).

The CIKM-13 paper behind this demo evaluates optimistic recovery on three
algorithm families: link analysis (PageRank), path problems (Connected
Components) and **low-rank matrix factorization for recommender
systems** — Alternating Least Squares. This module reproduces the third
family.

Model: given sparse ratings ``r_ui``, find rank-``k`` factors ``u_u`` and
``v_i`` minimizing::

    sum (r_ui - u_u . v_i)^2  +  lam * (sum ||u_u||^2 + sum ||v_i||^2)

ALS alternates: fix the item factors and solve a small regularized k x k
least-squares system per user, then fix the users and solve per item. One
superstep of the bulk iteration performs a full alternation (users, then
items, using the freshly updated users — exactly classic ALS).

State records are ``((kind, id), vector)`` with ``kind`` in
``{"u", "i"}``; the ratings are a loop-invariant input.

Compensation ``fix-factors``: re-initialize lost factor vectors to their
(seeded, per-entity deterministic) random initial values. This is
consistent for ALS: *any* factor assignment is a legal model state, and
each subsequent half-step exactly minimizes the objective over its block,
so the loss is non-increasing from the compensated state onward — the
same argument Schelter et al. make for the factorization family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..iteration.bulk import BulkIterationSpec
from ..iteration.termination import FixedSupersteps
from .base import BulkJob

#: the (kind, id) key the factor state is partitioned by.
FACTOR_KEY: KeySpec = KeySpec("factor", lambda record: record[0])

#: key specs used by the rating joins (names differ on purpose: ratings
#: are re-partitioned between the user and item half-steps).
_RATING_BY_ITEM = KeySpec("rating-item", lambda record: record[1])
_RATING_BY_USER = KeySpec("rating-user", lambda record: record[0])
_FACTOR_ID = KeySpec("factor-id", lambda record: record[0][1])

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.update-user-factors"


def initial_factor(kind: str, entity_id: int, rank: int, seed: int) -> tuple[float, ...]:
    """The deterministic random initial factor of one entity.

    Seeded per ``(kind, id)`` so the dataflow job, the reference
    implementation and the compensation function all regenerate the exact
    same vector independently.
    """
    # string seeds go through SHA-512 in CPython, which is stable across
    # processes (unlike hash() of tuples under PYTHONHASHSEED)
    rng = random.Random(f"{seed}/{kind}/{entity_id}")
    return tuple(rng.uniform(0.0, 1.0) for _ in range(rank))


def _solve_block(
    pairs: Sequence[tuple[float, Sequence[float]]], rank: int, lam: float
) -> tuple[float, ...]:
    """Solve one regularized least-squares block: given ``(rating,
    other-side vector)`` pairs, return the minimizing factor."""
    gram = np.zeros((rank, rank))
    rhs = np.zeros(rank)
    for rating, vector in pairs:
        v = np.asarray(vector)
        gram += np.outer(v, v)
        rhs += rating * v
    gram += lam * len(pairs) * np.eye(rank)
    solution = np.linalg.solve(gram, rhs)
    return tuple(float(x) for x in solution)


def als_plan(rank: int, lam: float) -> Plan:
    """Build the ALS step dataflow.

    Sources: ``factors`` (state) and ``ratings`` (static
    ``(user, item, rating)`` records). Sink: ``next-factors``. One
    superstep recomputes all user factors against the current item
    factors, then all item factors against the *new* user factors.
    """
    plan = Plan("als-step")
    factors = plan.source("factors", partitioned_by=FACTOR_KEY)
    ratings = plan.source("ratings")

    item_factors = factors.filter(lambda r: r[0][0] == "i", name="select-item-factors")
    user_factors = factors.filter(lambda r: r[0][0] == "u", name="select-user-factors")

    # -- user half-step: gather item vectors per rating, solve per user
    rated_items = ratings.join(
        item_factors,
        left_key=_RATING_BY_ITEM,
        right_key=_FACTOR_ID,
        fn=lambda rating, factor: (rating[0], rating[2], factor[1]),
        name="gather-item-vectors",
    )
    new_users = rated_items.group_reduce(
        KeySpec("user", lambda record: record[0]),
        fn=lambda user, group: [
            (("u", user), _solve_block([(g[1], g[2]) for g in group], rank, lam))
        ],
        name="update-user-factors",
    )

    # -- item half-step against the fresh user factors
    rated_users = ratings.join(
        new_users,
        left_key=_RATING_BY_USER,
        right_key=_FACTOR_ID,
        fn=lambda rating, factor: (rating[1], rating[2], factor[1]),
        name="gather-user-vectors",
    )
    new_items = rated_users.group_reduce(
        KeySpec("item", lambda record: record[0]),
        fn=lambda item, group: [
            (("i", item), _solve_block([(g[1], g[2]) for g in group], rank, lam))
        ],
        name="update-item-factors",
    )

    new_users.union(new_items, name="next-factors")
    return plan


class AlsCompensation(CompensationFunction):
    """``fix-factors``: re-initialize lost factors to their seeded
    random initial vectors."""

    name = "fix-factors"

    def __init__(self, rank: int, seed: int):
        self.rank = rank
        self.seed = seed

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        rebuilt = []
        for record in ctx.initial_partition(partition_id):
            kind, entity_id = record[0]
            rebuilt.append(
                (record[0], initial_factor(kind, entity_id, self.rank, self.seed))
            )
        return rebuilt


@dataclass(frozen=True)
class RatingsDataset:
    """A sparse rating matrix as ``(user, item, rating)`` triples."""

    ratings: tuple[tuple[int, int, float], ...]

    @property
    def users(self) -> list[int]:
        return sorted({r[0] for r in self.ratings})

    @property
    def items(self) -> list[int]:
        return sorted({r[1] for r in self.ratings})

    def __len__(self) -> int:
        return len(self.ratings)


def synthetic_ratings(
    num_users: int,
    num_items: int,
    rank: int = 3,
    density: float = 0.3,
    noise: float = 0.05,
    seed: int = 42,
) -> RatingsDataset:
    """Generate ratings from planted latent factors plus Gaussian noise.

    Every user and item is guaranteed at least one rating (ALS cannot
    update an entity with no observations).
    """
    if not 0.0 < density <= 1.0:
        raise GraphError(f"density must be in (0, 1], got {density}")
    rng = random.Random(seed)
    user_latent = [[rng.uniform(0, 1) for _ in range(rank)] for _ in range(num_users)]
    item_latent = [[rng.uniform(0, 1) for _ in range(rank)] for _ in range(num_items)]

    def rating_of(user: int, item: int) -> float:
        clean = sum(a * b for a, b in zip(user_latent[user], item_latent[item]))
        return clean + rng.gauss(0.0, noise)

    triples: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    for user in range(num_users):
        item = rng.randrange(num_items)
        triples.append((user, item, rating_of(user, item)))
        seen.add((user, item))
    for item in range(num_items):
        user = rng.randrange(num_users)
        if (user, item) not in seen:
            triples.append((user, item, rating_of(user, item)))
            seen.add((user, item))
    for user in range(num_users):
        for item in range(num_items):
            if (user, item) not in seen and rng.random() < density:
                triples.append((user, item, rating_of(user, item)))
                seen.add((user, item))
    return RatingsDataset(tuple(triples))


def als_rmse(
    factors: dict[tuple[str, int], Sequence[float]],
    ratings: Iterable[tuple[int, int, float]],
) -> float:
    """Root-mean-square reconstruction error of a factor state."""
    squared = 0.0
    count = 0
    for user, item, rating in ratings:
        prediction = sum(
            a * b for a, b in zip(factors[("u", user)], factors[("i", item)])
        )
        squared += (rating - prediction) ** 2
        count += 1
    return (squared / count) ** 0.5 if count else 0.0


def exact_als(
    dataset: RatingsDataset,
    rank: int,
    iterations: int,
    lam: float = 0.05,
    seed: int = 42,
) -> dict[tuple[str, int], tuple[float, ...]]:
    """Reference ALS: same initialization, same alternation order,
    implemented directly (no dataflow engine)."""
    factors: dict[tuple[str, int], tuple[float, ...]] = {}
    for user in dataset.users:
        factors[("u", user)] = initial_factor("u", user, rank, seed)
    for item in dataset.items:
        factors[("i", item)] = initial_factor("i", item, rank, seed)
    by_user: dict[int, list[tuple[float, int]]] = {}
    by_item: dict[int, list[tuple[float, int]]] = {}
    for user, item, rating in dataset.ratings:
        by_user.setdefault(user, []).append((rating, item))
        by_item.setdefault(item, []).append((rating, user))
    for _ in range(iterations):
        for user, observations in by_user.items():
            pairs = [(rating, factors[("i", item)]) for rating, item in observations]
            factors[("u", user)] = _solve_block(pairs, rank, lam)
        for item, observations in by_item.items():
            pairs = [(rating, factors[("u", user)]) for rating, user in observations]
            factors[("i", item)] = _solve_block(pairs, rank, lam)
    return factors


def als(
    dataset: RatingsDataset,
    rank: int = 3,
    iterations: int = 10,
    lam: float = 0.05,
    seed: int = 42,
) -> BulkJob:
    """Build a runnable ALS job over ``dataset``.

    The state holds one factor vector per user and item; the job runs
    exactly ``iterations`` full alternations.
    """
    if rank < 1:
        raise GraphError(f"rank must be >= 1, got {rank}")
    if not dataset.ratings:
        raise GraphError("cannot factorize an empty rating matrix")
    initial = [
        (("u", user), initial_factor("u", user, rank, seed)) for user in dataset.users
    ] + [
        (("i", item), initial_factor("i", item, rank, seed)) for item in dataset.items
    ]
    spec = BulkIterationSpec(
        name="als",
        step_plan=als_plan(rank, lam),
        state_source="factors",
        next_state_output="next-factors",
        state_key=FACTOR_KEY,
        termination=FixedSupersteps(iterations),
        # failure-hit supersteps do not count toward FixedSupersteps
        max_supersteps=iterations * 2 + 10,
        message_counter=MESSAGE_COUNTER,
    )
    return BulkJob(
        spec=spec,
        initial_records=initial,
        statics={"ratings": list(dataset.ratings)},
        compensation=AlsCompensation(rank, seed),
        invariants=[KeySetPreserved()],
    )
