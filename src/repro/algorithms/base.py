"""Job wrappers: a spec bundled with its inputs and compensation.

The algorithm factories (:func:`repro.algorithms.pagerank`, ...) return
one of these. A job knows everything needed to run — the step plan, the
initial state, the static inputs, the ground truth — plus the algorithm's
compensation function and consistency invariants, so callers can switch
recovery strategies with one argument::

    job = pagerank(graph)
    baseline = job.run()                                   # no failures
    optimistic = job.run(recovery=job.optimistic(),
                         failures=FailureSchedule.single(5, [0]))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..config import DEFAULT_CONFIG, EngineConfig
from ..core.compensation import CompensationFunction
from ..core.guarantees import StateInvariant
from ..core.optimistic import OptimisticRecovery
from ..core.recovery import RecoveryStrategy
from ..iteration.bulk import BulkIterationSpec, run_bulk_iteration
from ..iteration.delta import DeltaIterationSpec, run_delta_iteration
from ..iteration.result import IterationResult
from ..iteration.snapshots import SnapshotStore
from ..observability.telemetry import RunTelemetry
from ..observability.tracer import Tracer
from ..runtime.failures import FailureSchedule


@dataclass
class BulkJob:
    """A runnable bulk-iterative job (PageRank, K-Means)."""

    spec: BulkIterationSpec
    initial_records: list[Any]
    statics: dict[str, list[Any]] = field(default_factory=dict)
    compensation: CompensationFunction | None = None
    invariants: list[StateInvariant] = field(default_factory=list)

    def run(
        self,
        *,
        config: EngineConfig = DEFAULT_CONFIG,
        recovery: RecoveryStrategy | None = None,
        failures: FailureSchedule | None = None,
        snapshots: SnapshotStore | None = None,
        tracer: Tracer | None = None,
        telemetry: RunTelemetry | None = None,
    ) -> IterationResult:
        """Execute the job; see :func:`repro.iteration.run_bulk_iteration`."""
        return run_bulk_iteration(
            self.spec,
            self.initial_records,
            self.statics,
            config=config,
            recovery=recovery,
            failures=failures,
            snapshots=snapshots,
            tracer=tracer,
            telemetry=telemetry,
        )

    def optimistic(self) -> OptimisticRecovery:
        """An :class:`OptimisticRecovery` wired with this algorithm's
        compensation function and invariants."""
        if self.compensation is None:
            raise ValueError(f"job {self.spec.name!r} defines no compensation function")
        return OptimisticRecovery(self.compensation, self.invariants)

    @property
    def truth(self) -> dict[Any, Any] | None:
        """The precomputed correct final state, if the factory provided one."""
        return self.spec.truth


@dataclass
class DeltaJob:
    """A runnable delta-iterative job (Connected Components, SSSP)."""

    spec: DeltaIterationSpec
    initial_solution: list[Any]
    initial_workset: list[Any] | None = None
    statics: dict[str, list[Any]] = field(default_factory=dict)
    compensation: CompensationFunction | None = None
    invariants: list[StateInvariant] = field(default_factory=list)

    def run(
        self,
        *,
        config: EngineConfig = DEFAULT_CONFIG,
        recovery: RecoveryStrategy | None = None,
        failures: FailureSchedule | None = None,
        snapshots: SnapshotStore | None = None,
        tracer: Tracer | None = None,
        telemetry: RunTelemetry | None = None,
    ) -> IterationResult:
        """Execute the job; see :func:`repro.iteration.run_delta_iteration`."""
        return run_delta_iteration(
            self.spec,
            self.initial_solution,
            self.initial_workset,
            self.statics,
            config=config,
            recovery=recovery,
            failures=failures,
            snapshots=snapshots,
            tracer=tracer,
            telemetry=telemetry,
        )

    def optimistic(self) -> OptimisticRecovery:
        """An :class:`OptimisticRecovery` wired with this algorithm's
        compensation function and invariants."""
        if self.compensation is None:
            raise ValueError(f"job {self.spec.name!r} defines no compensation function")
        return OptimisticRecovery(self.compensation, self.invariants)

    @property
    def truth(self) -> dict[Any, Any] | None:
        """The precomputed correct final state, if the factory provided one."""
        return self.spec.truth
