"""Connected Components as a delta iteration — Figure 1(a) of the paper.

The diffusion algorithm of Kang et al. [PEGASUS]: every vertex starts
labeled with its own id; each superstep, vertices that changed labels send
their label to their neighbors, every vertex adopts the minimum candidate
label it received if it improves on its current label, and the iteration
terminates when no label changes. At convergence each vertex carries the
minimum vertex id of its component.

Dataflow (operator names exactly as in the paper's figure):

* ``label-to-neighbors`` (join): the workset — vertices that updated last
  superstep — joined with the ``graph`` edge dataset, emitting one
  ``(neighbor, label)`` candidate message per neighbor;
* ``candidate-label`` (reduce): minimum candidate per vertex — its input
  cardinality is the demo's "messages per iteration" plot;
* ``label-update`` (join): candidates joined with the solution set,
  keeping only strict improvements. Its output is both the delta applied
  to the solution set and the next workset.

Compensation ``fix-components`` (invoked only after failures): reset lost
vertices to their initial labels — "simply re-initializing lost vertices
to their initial labels guarantees convergence to the correct solution"
(§2.2.1). The rebuilt workset contains the reset vertices *and their
neighbors*, because both "have to propagate their labels again" (§3.2) —
this is what produces the demo's post-failure message spike.
"""

from __future__ import annotations

from typing import Any

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved, ValuesFromInitial
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..graph.graph import Graph
from ..iteration.delta import DeltaIterationSpec
from ..iteration.termination import EmptyWorkset
from ..runtime import vectorized
from ..runtime.executor import PartitionedDataset
from .base import DeltaJob
from .reference import exact_connected_components

#: the vertex-id key every CC dataset is partitioned by.
VERTEX_KEY: KeySpec = first_field("vertex")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.candidate-label"


# Operator UDFs live at module level so they pickle by reference and the
# process execution backend can dispatch step-plan kernels to workers.


def _label_to_neighbor(labeled: Any, edge: Any) -> Any:
    return (edge[1], labeled[1])


def _min_label(left: Any, right: Any) -> Any:
    return left if left[1] <= right[1] else right


# Records folded by _min_label are (vertex, label) pairs with equal keys
# within a group, so keeping the left record on ties is
# indistinguishable from emitting (vertex, min(labels)) — which is what
# the vectorized min fold produces.
vectorized.mark_fold(_min_label, "min")


def _improved_label(candidate: Any, current: Any) -> Any:
    return candidate if candidate[1] < current[1] else None


def connected_components_plan() -> Plan:
    """Build the Figure 1(a) step dataflow.

    Sources: ``labels`` (solution set), ``workset``, ``graph`` (static,
    symmetric ``(vertex, neighbor)`` records). Sink: ``label-update``.
    """
    plan = Plan("connected-components-step")
    solution = plan.source("labels", partitioned_by=VERTEX_KEY)
    workset = plan.source("workset", partitioned_by=VERTEX_KEY)
    graph = plan.source("graph", partitioned_by=VERTEX_KEY)

    messages = workset.join(
        graph,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=_label_to_neighbor,
        name="label-to-neighbors",
    )
    candidates = messages.reduce_by_key(
        VERTEX_KEY,
        fn=_min_label,
        name="candidate-label",
    )
    candidates.join(
        solution,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=_improved_label,
        name="label-update",
        preserves="left",
    )
    return plan


class ComponentsCompensation(CompensationFunction):
    """``fix-components``: reset lost vertices to their initial labels."""

    name = "fix-components"

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return ctx.initial_partition(partition_id)

    def rebuild_workset(
        self,
        solution: PartitionedDataset,
        workset: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> PartitionedDataset:
        """Re-activate the surviving pending updates, the reset vertices
        and the reset vertices' neighbors.

        Keeping the surviving workset entries is essential for
        correctness: an update computed on a surviving partition during
        the failed superstep has been applied to the solution set but not
        yet propagated — dropping it would freeze a stale label into the
        neighborhood. The reset vertices and their neighbors additionally
        re-propagate so the re-initialized labels get repaired (§3.2).
        """
        reset_vertices = {
            record[0]
            for pid in lost_partitions
            for record in ctx.initial_partition(pid)
        }
        neighbor_vertices = {
            edge[1]
            for edge in ctx.static_records("graph")
            if edge[0] in reset_vertices
        }
        active = reset_vertices | neighbor_vertices | self.surviving_workset_keys(workset)
        records = [
            record for record in solution.all_records() if record[0] in active
        ]
        return PartitionedDataset.from_records(
            records, ctx.parallelism, key=ctx.state_key
        )


class NeighborInformedCompensation(ComponentsCompensation):
    """``fix-components-informed``: rebuild lost labels from survivors.

    Instead of resetting a lost vertex all the way to its initial label,
    take the minimum over its own initial label and the current labels of
    its *surviving* neighbors. This is still consistent — every candidate
    is the minimum of some subset of the component's initial ids, so it
    can never undershoot the true component minimum — but it starts the
    repair much closer to the fixpoint, cutting recovery supersteps and
    messages. The idea mirrors confined-recovery designs (e.g. CoRAL)
    that exploit surviving replicas of neighboring state; the A5 ablation
    quantifies the gap against the paper's plain reset.
    """

    name = "fix-components-informed"

    def prepare(
        self,
        state: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> dict[int, int]:
        """Compute, per lost vertex, the best label visible from the
        surviving solution-set partitions."""
        surviving_labels = {
            record[0]: record[1]
            for partition in state.partitions
            if partition is not None
            for record in partition
        }
        lost_vertices = {
            record[0]
            for pid in lost_partitions
            for record in ctx.initial_partition(pid)
        }
        best: dict[int, int] = {}
        for source, target in ctx.static_records("graph"):
            if target in lost_vertices and source in surviving_labels:
                label = surviving_labels[source]
                if target not in best or label < best[target]:
                    best[target] = label
        return best

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: dict[int, int],
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        rebuilt = []
        for vertex, initial_label in ctx.initial_partition(partition_id):
            rebuilt.append((vertex, min(initial_label, aggregate.get(vertex, initial_label))))
        return rebuilt


def connected_components(
    graph: Graph,
    max_supersteps: int = 200,
) -> DeltaJob:
    """Build a runnable Connected Components job for ``graph``.

    The initial solution set labels every vertex with its own id, the
    initial workset equals the solution set, and the job's ground truth
    is computed by union-find so the demo can plot converged-vertex
    counts.
    """
    labels = [(v, v) for v in graph.vertices]
    spec = DeltaIterationSpec(
        name="connected-components",
        step_plan=connected_components_plan(),
        solution_source="labels",
        workset_source="workset",
        delta_output="label-update",
        workset_output="label-update",
        state_key=VERTEX_KEY,
        termination=EmptyWorkset(),
        max_supersteps=max_supersteps,
        message_counter=MESSAGE_COUNTER,
        truth=exact_connected_components(graph),
    )
    return DeltaJob(
        spec=spec,
        initial_solution=labels,
        initial_workset=list(labels),
        statics={"graph": graph.symmetric_edge_records()},
        compensation=ComponentsCompensation(),
        invariants=[KeySetPreserved(), ValuesFromInitial()],
    )
