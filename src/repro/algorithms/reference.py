"""Exact reference implementations (ground truth).

The demo "precomputes the true values for presentation reasons" (§3.2) to
plot how many vertices have converged. These functions are that
precomputation — deliberately implemented *without* the dataflow engine
(union-find, numpy power iteration, BFS, plain Lloyd's algorithm) so that
agreement with the engine is a real correctness signal, not a tautology.
"""

from __future__ import annotations

import collections
import math
from typing import Sequence

import numpy as np

from ..errors import GraphError
from ..graph.graph import Graph
from ..graph.properties import connected_component_labels


def exact_connected_components(graph: Graph) -> dict[int, int]:
    """``{vertex: minimum vertex id in its component}`` via union-find."""
    return connected_component_labels(graph)


def exact_pagerank(
    graph: Graph,
    damping: float = 0.85,
    epsilon: float = 1e-12,
    max_iterations: int = 10_000,
) -> dict[int, float]:
    """PageRank by dense power iteration (numpy).

    Uses the same update rule as the dataflow job: uniform teleport,
    dangling mass redistributed uniformly over all vertices::

        r' = (1 - d)/n + d * (P^T r + dangling_mass / n)

    so the two converge to the same vector up to ``epsilon``.
    """
    if not 0.0 < damping < 1.0:
        raise GraphError(f"damping must be in (0, 1), got {damping}")
    vertices = graph.vertices
    n = len(vertices)
    if n == 0:
        return {}
    index = {v: i for i, v in enumerate(vertices)}
    out_degree = graph.out_degrees()
    transition = np.zeros((n, n))
    for source, target, probability in graph.transition_records():
        transition[index[target], index[source]] = probability
    dangling = np.array([1.0 if out_degree[v] == 0 else 0.0 for v in vertices])
    ranks = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        dangling_mass = float(dangling @ ranks)
        new_ranks = (1.0 - damping) / n + damping * (
            transition @ ranks + dangling_mass / n
        )
        if float(np.abs(new_ranks - ranks).sum()) < epsilon:
            ranks = new_ranks
            break
        ranks = new_ranks
    return {v: float(ranks[index[v]]) for v in vertices}


def exact_sssp(graph: Graph, source: int) -> dict[int, float]:
    """Unweighted shortest-path (hop) distances via BFS.

    Unreachable vertices map to ``math.inf``. Directed graphs follow edge
    direction.
    """
    if source not in graph:
        raise GraphError(f"source vertex {source} is not in the graph")
    distances = {v: math.inf for v in graph.vertices}
    distances[source] = 0.0
    queue = collections.deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if distances[neighbor] == math.inf:
                distances[neighbor] = distances[vertex] + 1.0
                queue.append(neighbor)
    return distances


def exact_kmeans(
    points: Sequence[tuple[float, ...]],
    initial_centroids: Sequence[tuple[float, ...]],
    iterations: int,
) -> list[tuple[float, ...]]:
    """Plain Lloyd's algorithm for exactly ``iterations`` steps.

    Centroids with no assigned points keep their position (matching the
    dataflow job). Returns the final centroids in input order.
    """
    if iterations < 0:
        raise GraphError(f"iterations must be >= 0, got {iterations}")
    data = np.asarray(points, dtype=float)
    centroids = np.asarray(initial_centroids, dtype=float)
    if data.ndim != 2 or centroids.ndim != 2 or data.shape[1] != centroids.shape[1]:
        raise GraphError("points and centroids must share a dimensionality")
    for _ in range(iterations):
        distances = np.linalg.norm(data[:, None, :] - centroids[None, :, :], axis=2)
        assignment = distances.argmin(axis=1)
        for cid in range(len(centroids)):
            members = data[assignment == cid]
            if len(members):
                centroids[cid] = members.mean(axis=0)
    return [tuple(float(x) for x in row) for row in centroids]


def kmeans_inertia(
    points: Sequence[tuple[float, ...]],
    centroids: Sequence[tuple[float, ...]],
) -> float:
    """Sum of squared distances of each point to its nearest centroid —
    the objective Lloyd's algorithm monotonically decreases, used by the
    tests as a convergence oracle."""
    data = np.asarray(points, dtype=float)
    centers = np.asarray(centroids, dtype=float)
    distances = np.linalg.norm(data[:, None, :] - centers[None, :, :], axis=2)
    return float((distances.min(axis=1) ** 2).sum())
