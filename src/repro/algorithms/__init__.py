"""The paper's algorithms as dataflow jobs.

Each module builds the algorithm's step dataflow exactly as Figure 1 of
the paper draws it (same operators, same names), pairs it with the
algorithm's compensation function, and returns a job object ready to run
under any recovery strategy:

* :mod:`repro.algorithms.connected_components` — delta iteration,
  Figure 1(a), compensation ``fix-components`` (reset lost vertices to
  their initial labels);
* :mod:`repro.algorithms.pagerank` — bulk iteration, Figure 1(b),
  compensation ``fix-ranks`` (uniformly redistribute the lost probability
  mass over the lost vertices);
* :mod:`repro.algorithms.sssp` — single-source shortest paths as a delta
  iteration (the CIKM-13 extension scope);
* :mod:`repro.algorithms.kmeans` — Lloyd's algorithm as a bulk iteration
  with reset-to-initial centroid compensation (extension scope);
* :mod:`repro.algorithms.reference` — independent exact implementations
  used as ground truth ("we precompute the true values", §3.2).
"""

from .als import (
    AlsCompensation,
    RatingsDataset,
    als,
    als_plan,
    als_rmse,
    exact_als,
    synthetic_ratings,
)
from .base import BulkJob, DeltaJob
from .connected_components import (
    ComponentsCompensation,
    NeighborInformedCompensation,
    connected_components,
    connected_components_plan,
)
from .hits import HitsCompensation, exact_hits, hits, hits_plan
from .kmeans import KMeansCompensation, kmeans, kmeans_plan
from .pagerank import (
    InformedPageRankCompensation,
    PageRankCompensation,
    pagerank,
    pagerank_plan,
)
from .reference import (
    exact_connected_components,
    exact_kmeans,
    exact_pagerank,
    exact_sssp,
)
from .sssp import SsspCompensation, exact_weighted_sssp, sssp, sssp_plan

__all__ = [
    "AlsCompensation",
    "BulkJob",
    "ComponentsCompensation",
    "DeltaJob",
    "HitsCompensation",
    "InformedPageRankCompensation",
    "KMeansCompensation",
    "NeighborInformedCompensation",
    "PageRankCompensation",
    "RatingsDataset",
    "SsspCompensation",
    "als",
    "als_plan",
    "als_rmse",
    "connected_components",
    "connected_components_plan",
    "exact_als",
    "exact_connected_components",
    "exact_hits",
    "exact_kmeans",
    "exact_pagerank",
    "exact_sssp",
    "exact_weighted_sssp",
    "hits",
    "hits_plan",
    "kmeans",
    "kmeans_plan",
    "pagerank",
    "pagerank_plan",
    "sssp",
    "sssp_plan",
    "synthetic_ratings",
]
