"""PageRank as a bulk iteration — Figure 1(b) of the paper.

The algorithm computes the steady-state probabilities of a random walk
with uniform teleportation (damping factor ``d``), redistributing the
mass of dangling vertices uniformly::

    rank'(v) = (1 - d)/n + d * (sum of contributions to v + dangling/n)

Dataflow (operator names as in the paper's figure, plus the explicit
plumbing a real dataflow engine needs for the global dangling aggregate):

* ``find-neighbors`` (join): ranks joined with the ``links`` transition
  dataset, emitting one ``(target, rank * probability)`` contribution per
  out-link;
* ``init-contributions`` / ``collect-dangling`` / ``sum-dangling``:
  zero-contribution seeding (so rank-less vertices keep their key) and
  the dangling-mass aggregate, computed as a single-key reduce and
  broadcast via a cross — how aggregates-plus-broadcast work on a real
  dataflow engine;
* ``recompute-ranks`` (reduce): sums contributions per vertex — its input
  cardinality is the "messages" statistic for PageRank;
* ``apply-damping`` (cross): applies teleport, damping and dangling mass;
* ``compare-to-old-rank`` (join): pairs new with old ranks (the
  convergence check of the figure); its output is the next state, and the
  driver computes the L1 delta the demo plots.

Compensation ``fix-ranks`` (invoked only after failures): "uniformly
redistribute the lost probability mass to the vertices in the failed
partitions" (§2.2.2) — the surviving partitions keep their ranks, the
lost partitions' vertices share ``1 - surviving mass`` equally, so the
full vector sums to one again (the consistency condition for
convergence).
"""

from __future__ import annotations

from typing import Any

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved, MassConservation
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..graph.graph import Graph
from ..iteration.bulk import BulkIterationSpec
from ..iteration.termination import EpsilonL1
from ..runtime import blocks, vectorized
from ..runtime.executor import PartitionedDataset
from .base import BulkJob
from .reference import exact_pagerank

#: the vertex-id key every PageRank dataset is partitioned by.
VERTEX_KEY: KeySpec = first_field("vertex")

#: single-partition key used for the global dangling-mass aggregate.
_MASS_KEY: KeySpec = first_field("mass")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.recompute-ranks"


# Operator UDFs live at module level (not as lambdas inside
# pagerank_plan) so they pickle by reference: the process execution
# backend can then ship step-plan kernels to its workers instead of
# falling back to inline execution.


def _contribution(rank: Any, link: Any) -> Any:
    return (link[1], rank[1] * link[2])


def _zero_contribution(rank: Any) -> Any:
    return (rank[0], 0.0)


def _zero_contribution_block(block: Any) -> Any:
    """Block form of :func:`_zero_contribution`: keep the key column,
    replace the value column with float64 zeros."""
    if block.layout != blocks.COLS or block.width != 2:
        return None
    key_col = block.column(0)
    if key_col is None:
        return None
    return blocks.ColumnarBlock.from_columns(
        (key_col, blocks.float64_zeros(len(block))), len(block)
    )


vectorized.mark_columnar_map(_zero_contribution, _zero_contribution_block)


def _sum_ranks(left: Any, right: Any) -> Any:
    return (left[0], left[1] + right[1])


vectorized.mark_fold(_sum_ranks, "sum")


def _dangling_mass(rank: Any, marker: Any) -> Any:
    return ("mass", rank[1])


def _sum_mass(left: Any, right: Any) -> Any:
    return ("mass", left[1] + right[1])


# ``"mass"`` keys are strings, so the int64-gated fast path always
# declines at runtime — the mark simply records that the combine is a
# plain sum should the partition ever be typed.
vectorized.mark_fold(_sum_mass, "sum")


class _ApplyDamping:
    """``apply-damping`` closure over the damping factor and vertex count."""

    __slots__ = ("damping", "n")

    def __init__(self, damping: float, n: float):
        self.damping = damping
        self.n = n

    def __call__(self, contribution: Any, mass: Any) -> Any:
        return (
            contribution[0],
            (1.0 - self.damping) / self.n
            + self.damping * (contribution[1] + mass[1] / self.n),
        )


def _keep_new_rank(new: Any, old: Any) -> Any:
    return (new[0], new[1])


def _rank_value(record: Any) -> float:
    return record[1]


def pagerank_plan(damping: float, num_vertices: int) -> Plan:
    """Build the Figure 1(b) step dataflow.

    Sources: ``ranks`` (state), ``links`` (static transition records
    ``(source, target, probability)``), ``dangling`` (static ``(vertex,)``
    markers for out-degree-0 vertices) and ``mass-seed`` (a single zero
    record keeping the aggregate well-defined when nothing dangles).
    Sink: ``compare-to-old-rank``.
    """
    if num_vertices < 1:
        raise GraphError("PageRank needs at least one vertex")
    plan = Plan("pagerank-step")
    ranks = plan.source("ranks", partitioned_by=VERTEX_KEY)
    links = plan.source("links", partitioned_by=VERTEX_KEY)
    dangling = plan.source("dangling", partitioned_by=VERTEX_KEY)
    mass_seed = plan.source("mass-seed")

    contributions = ranks.join(
        links,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=_contribution,
        name="find-neighbors",
    )
    zeros = ranks.map(_zero_contribution, name="init-contributions")
    summed = zeros.union(contributions, name="gather-contributions").reduce_by_key(
        VERTEX_KEY,
        fn=_sum_ranks,
        name="recompute-ranks",
    )

    dangling_mass = (
        ranks.join(
            dangling,
            left_key=VERTEX_KEY,
            right_key=VERTEX_KEY,
            fn=_dangling_mass,
            name="collect-dangling",
        )
        .union(mass_seed, name="seed-mass")
        .reduce_by_key(
            _MASS_KEY,
            fn=_sum_mass,
            name="sum-dangling",
        )
    )

    new_ranks = summed.cross(
        dangling_mass,
        fn=_ApplyDamping(damping, float(num_vertices)),
        name="apply-damping",
    )
    new_ranks.join(
        ranks,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=_keep_new_rank,
        name="compare-to-old-rank",
        preserves="left",
    )
    return plan


class PageRankCompensation(CompensationFunction):
    """``fix-ranks``: uniform redistribution of the lost mass."""

    name = "fix-ranks"

    def prepare(
        self,
        state: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> tuple[float, int]:
        """Return ``(surviving mass, number of lost vertices)``."""
        surviving_mass = sum(
            record[1]
            for partition in state.partitions
            if partition is not None
            for record in partition
        )
        lost_vertices = sum(
            len(ctx.initial_partition(pid)) for pid in lost_partitions
        )
        return surviving_mass, lost_vertices

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: tuple[float, int],
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        surviving_mass, lost_vertices = aggregate
        if lost_vertices == 0:
            return []
        share = (1.0 - surviving_mass) / lost_vertices
        return [(record[0], share) for record in ctx.initial_partition(partition_id)]


class InformedPageRankCompensation(PageRankCompensation):
    """``fix-ranks-informed``: estimate lost ranks from in-neighbors.

    Instead of spreading the lost mass uniformly, estimate each lost
    vertex's rank by one local PageRank update over the *surviving*
    ranks — ``(1-d)/n + d * sum of surviving in-neighbor contributions``
    — and then rescale the estimates so they sum to exactly the lost
    mass. The result is still a probability vector (the consistency
    condition), but starts much closer to the fixpoint, shortening the
    wash-out the C2 benchmark measures for the uniform variant. The A6
    ablation quantifies the difference.

    Requires the job's ``links`` static input and the damping factor.
    """

    name = "fix-ranks-informed"

    def __init__(self, damping: float, num_vertices: int):
        self.damping = damping
        self.num_vertices = num_vertices

    def prepare(
        self,
        state: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> dict[Any, float]:
        """Compute the rescaled per-vertex estimates for lost vertices."""
        surviving = {
            record[0]: record[1]
            for partition in state.partitions
            if partition is not None
            for record in partition
        }
        lost_vertices = [
            record[0]
            for pid in lost_partitions
            for record in ctx.initial_partition(pid)
        ]
        if not lost_vertices:
            return {}
        lost_set = set(lost_vertices)
        n = float(self.num_vertices)
        estimates = {v: (1.0 - self.damping) / n for v in lost_vertices}
        for source, target, probability in ctx.static_records("links"):
            if target in lost_set and source in surviving:
                estimates[target] += self.damping * surviving[source] * probability
        lost_mass = 1.0 - sum(surviving.values())
        estimate_total = sum(estimates.values())
        if estimate_total > 0 and lost_mass > 0:
            scale = lost_mass / estimate_total
            return {v: r * scale for v, r in estimates.items()}
        # degenerate fallback: uniform share (e.g. zero lost mass)
        share = lost_mass / len(lost_vertices)
        return {v: share for v in lost_vertices}

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: dict[Any, float],
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return [
            (record[0], aggregate[record[0]])
            for record in ctx.initial_partition(partition_id)
        ]


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    epsilon: float = 1e-9,
    max_supersteps: int = 200,
    truth_tolerance: float = 1e-6,
) -> BulkJob:
    """Build a runnable PageRank job for ``graph``.

    The initial ranks are uniform (``1/n`` each — "PageRank starts from a
    uniform rank distribution", §3.3); the iteration stops when the L1
    distance between consecutive rank vectors drops below ``epsilon``.
    The job's ground truth is the numpy power-iteration fixpoint, used
    for the converged-vertex plot with ``truth_tolerance``.
    """
    if graph.num_vertices == 0:
        raise GraphError("PageRank needs a non-empty graph")
    n = graph.num_vertices
    initial_ranks = [(v, 1.0 / n) for v in graph.vertices]
    spec = BulkIterationSpec(
        name="pagerank",
        step_plan=pagerank_plan(damping, n),
        state_source="ranks",
        next_state_output="compare-to-old-rank",
        state_key=VERTEX_KEY,
        termination=EpsilonL1(epsilon),
        max_supersteps=max_supersteps,
        message_counter=MESSAGE_COUNTER,
        value_fn=_rank_value,
        truth=exact_pagerank(graph, damping=damping),
        truth_tolerance=truth_tolerance,
    )
    return BulkJob(
        spec=spec,
        initial_records=initial_ranks,
        statics={
            "links": graph.transition_records(),
            "dangling": [(v,) for v in graph.dangling_vertices()],
            "mass-seed": [("mass", 0.0)],
        },
        compensation=PageRankCompensation(),
        invariants=[KeySetPreserved(), MassConservation(total=1.0, tolerance=1e-6)],
    )
