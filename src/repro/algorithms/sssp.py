"""Single-source shortest paths as a delta iteration (extension scope).

SSSP belongs to the same family of robust fixpoint algorithms as
Connected Components (Schelter et al. treat both as instances of
min-aggregation propagation): every vertex keeps its best known distance
from the source, changed vertices relax their out-edges, and the workset
empties at the fixpoint. By default distances are hop counts (every edge
has weight one, matching :func:`repro.algorithms.reference.exact_sssp`);
passing ``weights`` runs the weighted Bellman-Ford-style relaxation,
verified against :func:`exact_weighted_sssp` (Dijkstra).

Compensation ``fix-distances``: reset lost vertices to their initial
distances (``inf``, or ``0`` for the source). Like the Connected
Components compensation this is consistent — a distance may only
*increase* through compensation, and min-propagation monotonically pulls
it back down to the true value — provided the reset vertices' neighbors
re-propagate, which :meth:`SsspCompensation.rebuild_workset` arranges.
"""

from __future__ import annotations

import math
from typing import Any

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..graph.graph import Graph
from ..iteration.delta import DeltaIterationSpec
from ..iteration.termination import EmptyWorkset
from ..runtime.executor import PartitionedDataset
from .base import DeltaJob
from .reference import exact_sssp

#: the vertex-id key every SSSP dataset is partitioned by.
VERTEX_KEY: KeySpec = first_field("vertex")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.min-distance"


def sssp_plan() -> Plan:
    """Build the SSSP step dataflow.

    Sources: ``distances`` (solution set), ``workset``, ``edges`` (static
    ``(vertex, neighbor, weight)`` records, symmetric for undirected
    graphs). Sink: ``distance-update``.
    """
    plan = Plan("sssp-step")
    solution = plan.source("distances", partitioned_by=VERTEX_KEY)
    workset = plan.source("workset", partitioned_by=VERTEX_KEY)
    edges = plan.source("edges", partitioned_by=VERTEX_KEY)

    relaxed = workset.join(
        edges,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda entry, edge: (
            None if math.isinf(entry[1]) else (edge[1], entry[1] + edge[2])
        ),
        name="relax-edges",
    )
    candidates = relaxed.reduce_by_key(
        VERTEX_KEY,
        fn=lambda left, right: left if left[1] <= right[1] else right,
        name="min-distance",
    )
    candidates.join(
        solution,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda candidate, current: candidate if candidate[1] < current[1] else None,
        name="distance-update",
        preserves="left",
    )
    return plan


class SsspCompensation(CompensationFunction):
    """``fix-distances``: reset lost vertices to their initial distances."""

    name = "fix-distances"

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return ctx.initial_partition(partition_id)

    def rebuild_workset(
        self,
        solution: PartitionedDataset,
        workset: PartitionedDataset,
        lost_partitions: list[int],
        ctx: CompensationContext,
    ) -> PartitionedDataset:
        """Re-activate the surviving pending updates, the reset vertices
        and the reset vertices' in-neighbors.

        The reset vertices need fresh candidate distances, which can only
        come from neighbors that reach them; re-activating every vertex
        adjacent to a reset vertex (in either direction in the symmetric
        edge set) guarantees the necessary messages flow again. Surviving
        workset entries are kept because their relaxations were applied
        to the solution set but not yet propagated.
        """
        reset_vertices = {
            record[0]
            for pid in lost_partitions
            for record in ctx.initial_partition(pid)
        }
        neighbor_vertices = {
            edge[1]
            for edge in ctx.static_records("edges")
            if edge[0] in reset_vertices
        } | {
            edge[0]
            for edge in ctx.static_records("edges")
            if edge[1] in reset_vertices
        }
        active = reset_vertices | neighbor_vertices | self.surviving_workset_keys(workset)
        records = [record for record in solution.all_records() if record[0] in active]
        return PartitionedDataset.from_records(
            records, ctx.parallelism, key=ctx.state_key
        )


def exact_weighted_sssp(
    graph: Graph, source: int, weights: dict[tuple[int, int], float]
) -> dict[int, float]:
    """Weighted shortest-path distances via Dijkstra (the test oracle
    for weighted SSSP jobs). ``weights`` maps canonical edges to
    non-negative weights; undirected graphs use them symmetrically."""
    import heapq

    if source not in graph:
        raise GraphError(f"source vertex {source} is not in the graph")
    adjacency: dict[int, list[tuple[int, float]]] = {v: [] for v in graph.vertices}
    for edge in graph.edges:
        weight = weights.get(edge)
        if weight is None:
            raise GraphError(f"no weight for edge {edge!r}")
        if weight < 0:
            raise GraphError(f"negative weight {weight!r} on edge {edge!r}")
        adjacency[edge[0]].append((edge[1], weight))
        if not graph.directed:
            adjacency[edge[1]].append((edge[0], weight))
    distances = {v: math.inf for v in graph.vertices}
    distances[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        distance, vertex = heapq.heappop(heap)
        if distance > distances[vertex]:
            continue
        for neighbor, weight in adjacency[vertex]:
            candidate = distance + weight
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def _edge_records(
    graph: Graph, weights: dict[tuple[int, int], float] | None
) -> list[tuple[int, int, float]]:
    """Expand the graph into ``(vertex, neighbor, weight)`` relaxation
    records (symmetric for undirected graphs)."""
    records: list[tuple[int, int, float]] = []
    for edge in graph.edges:
        weight = 1.0 if weights is None else weights.get(edge)
        if weight is None:
            raise GraphError(f"no weight for edge {edge!r}")
        if weight < 0:
            raise GraphError(f"negative weight {weight!r} on edge {edge!r}")
        records.append((edge[0], edge[1], weight))
        if not graph.directed:
            records.append((edge[1], edge[0], weight))
    return records


def sssp(
    graph: Graph,
    source: int,
    weights: dict[tuple[int, int], float] | None = None,
    max_supersteps: int = 300,
) -> DeltaJob:
    """Build a runnable SSSP job from ``source`` over ``graph``.

    Without ``weights``, distances are hop counts; with ``weights``
    (mapping canonical edge tuples to non-negative floats), the job runs
    the weighted relaxation and its ground truth comes from Dijkstra.
    """
    if source not in graph:
        raise GraphError(f"source vertex {source} is not in the graph")
    distances = [
        (v, 0.0 if v == source else math.inf) for v in graph.vertices
    ]
    edge_records = _edge_records(graph, weights)
    truth = (
        exact_sssp(graph, source)
        if weights is None
        else exact_weighted_sssp(graph, source, weights)
    )
    spec = DeltaIterationSpec(
        name="sssp",
        step_plan=sssp_plan(),
        solution_source="distances",
        workset_source="workset",
        delta_output="distance-update",
        workset_output="distance-update",
        state_key=VERTEX_KEY,
        termination=EmptyWorkset(),
        max_supersteps=max_supersteps,
        message_counter=MESSAGE_COUNTER,
        truth=truth,
        truth_tolerance=1e-9 if weights is not None else 0.0,
    )
    return DeltaJob(
        spec=spec,
        initial_solution=distances,
        initial_workset=[(source, 0.0)],
        statics={"edges": edge_records},
        compensation=SsspCompensation(),
        invariants=[KeySetPreserved()],
    )
