"""HITS (hubs & authorities) as a bulk iteration (extension scope).

Kleinberg's HITS is another member of the robust fixpoint family: the
normalized power iteration

    auth'(v) = sum of hub(u) over in-neighbors u     (then L2-normalize)
    hub'(v)  = sum of auth'(w) over out-neighbors w  (then L2-normalize)

converges to the principal eigenvectors of ``A^T A`` / ``A A^T`` from any
non-degenerate starting vector. That makes it compensable with a
different consistency condition than PageRank: there is no probability
mass to conserve — the per-step normalization absorbs arbitrary scale —
so the compensation only has to keep the vector *non-negative and
non-zero*. ``fix-scores`` resets lost vertices to the uniform initial
score, and the next normalization re-mixes the vector onto the convergent
trajectory.

Dataflow (one superstep = one full auth+hub update):

* ``propagate-hubs`` (join): hub scores flow along edges to targets;
* ``sum-authorities`` (reduce) + ``seed-authorities``: new raw authority
  scores (zero-seeded so every vertex keeps its key);
* ``normalize-authorities`` (reduce + cross): global L2 norm, broadcast;
* symmetrically ``propagate-authorities`` / ``sum-hubs`` /
  ``normalize-hubs`` against reversed edges;
* ``combine-scores`` (join): zip the two vectors into the next state.

State records are ``(vertex, (hub, authority))``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..graph.graph import Graph
from ..iteration.bulk import BulkIterationSpec
from ..iteration.termination import EpsilonL1
from .base import BulkJob

#: the vertex-id key all HITS datasets are partitioned by.
VERTEX_KEY: KeySpec = first_field("vertex")

_NORM_KEY: KeySpec = first_field("norm")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.sum-authorities"


def _normalized(scores_ds, norm_seed, plan_suffix: str):
    """Attach an L2-normalization subplan to ``(v, score)`` records."""
    squared = scores_ds.map(
        lambda record: ("norm", record[1] * record[1]),
        name=f"square-{plan_suffix}",
    )
    total = squared.union(norm_seed, name=f"seed-norm-{plan_suffix}").reduce_by_key(
        _NORM_KEY,
        fn=lambda left, right: ("norm", left[1] + right[1]),
        name=f"sum-norm-{plan_suffix}",
    )
    return scores_ds.cross(
        total,
        fn=lambda record, norm: (
            record[0],
            record[1] / math.sqrt(norm[1]) if norm[1] > 0 else 0.0,
        ),
        name=f"normalize-{plan_suffix}",
    )


def hits_plan() -> Plan:
    """Build the HITS step dataflow.

    Sources: ``scores`` (state, ``(v, (hub, auth))``), ``edges`` (static
    ``(source, target)`` records), ``norm-seed`` (a single zero record
    for the norm aggregates). Sink: ``combine-scores``.
    """
    plan = Plan("hits-step")
    scores = plan.source("scores", partitioned_by=VERTEX_KEY)
    edges = plan.source("edges", partitioned_by=VERTEX_KEY)
    norm_seed = plan.source("norm-seed")

    hubs = scores.map(lambda record: (record[0], record[1][0]), name="select-hubs")

    # authority update: hubs flow along edges
    auth_contribs = hubs.join(
        edges,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda hub, edge: (edge[1], hub[1]),
        name="propagate-hubs",
    )
    auth_zero = scores.map(lambda record: (record[0], 0.0), name="seed-authorities")
    raw_auth = auth_zero.union(auth_contribs, name="gather-authorities").reduce_by_key(
        VERTEX_KEY,
        fn=lambda left, right: (left[0], left[1] + right[1]),
        name="sum-authorities",
    )
    new_auth = _normalized(raw_auth, norm_seed, "authorities")

    # hub update: the *new* authorities flow backward along edges
    hub_contribs = new_auth.join(
        edges,
        left_key=KeySpec("edge-target", lambda record: record[0]),
        right_key=KeySpec("edge-target", lambda record: record[1]),
        fn=lambda auth, edge: (edge[0], auth[1]),
        name="propagate-authorities",
    )
    hub_zero = scores.map(lambda record: (record[0], 0.0), name="seed-hubs")
    raw_hubs = hub_zero.union(hub_contribs, name="gather-hubs").reduce_by_key(
        VERTEX_KEY,
        fn=lambda left, right: (left[0], left[1] + right[1]),
        name="sum-hubs",
    )
    new_hubs = _normalized(raw_hubs, norm_seed, "hubs")

    new_hubs.join(
        new_auth,
        left_key=VERTEX_KEY,
        right_key=VERTEX_KEY,
        fn=lambda hub, auth: (hub[0], (hub[1], auth[1])),
        name="combine-scores",
        preserves="left",
    )
    return plan


class HitsCompensation(CompensationFunction):
    """``fix-scores``: reset lost vertices to the uniform initial score.

    Consistency for HITS only requires a non-negative, non-zero vector —
    the next normalization absorbs the scale error, and the power
    iteration forgets the perturbation geometrically.
    """

    name = "fix-scores"

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return ctx.initial_partition(partition_id)


def exact_hits(
    graph: Graph, epsilon: float = 1e-12, max_iterations: int = 10_000
) -> dict[int, tuple[float, float]]:
    """Reference HITS by dense normalized power iteration (numpy)."""
    vertices = graph.vertices
    n = len(vertices)
    if n == 0:
        return {}
    index = {v: i for i, v in enumerate(vertices)}
    adjacency = np.zeros((n, n))
    for source, target in graph.edges:
        adjacency[index[source], index[target]] = 1.0
        if not graph.directed:
            adjacency[index[target], index[source]] = 1.0
    hubs = np.full(n, 1.0 / math.sqrt(n))
    auth = np.full(n, 1.0 / math.sqrt(n))
    for _ in range(max_iterations):
        new_auth = adjacency.T @ hubs
        norm = np.linalg.norm(new_auth)
        if norm > 0:
            new_auth /= norm
        new_hubs = adjacency @ new_auth
        norm = np.linalg.norm(new_hubs)
        if norm > 0:
            new_hubs /= norm
        delta = float(np.abs(new_auth - auth).sum() + np.abs(new_hubs - hubs).sum())
        hubs, auth = new_hubs, new_auth
        if delta < epsilon:
            break
    return {v: (float(hubs[index[v]]), float(auth[index[v]])) for v in vertices}


def hits(
    graph: Graph,
    epsilon: float = 1e-9,
    max_supersteps: int = 300,
    truth_tolerance: float = 1e-6,
) -> BulkJob:
    """Build a runnable HITS job for ``graph``.

    Initial hub and authority scores are uniform with unit L2 norm. The
    iteration stops when the L1 movement of the combined score vector
    drops below ``epsilon``.
    """
    if graph.num_vertices == 0:
        raise GraphError("HITS needs a non-empty graph")
    if graph.num_edges == 0:
        raise GraphError("HITS needs at least one edge (all scores would be zero)")
    uniform = 1.0 / math.sqrt(graph.num_vertices)
    initial = [(v, (uniform, uniform)) for v in graph.vertices]
    edge_records = (
        graph.edges if graph.directed else graph.symmetric_edge_records()
    )
    spec = BulkIterationSpec(
        name="hits",
        step_plan=hits_plan(),
        state_source="scores",
        next_state_output="combine-scores",
        state_key=VERTEX_KEY,
        termination=EpsilonL1(epsilon),
        max_supersteps=max_supersteps,
        message_counter=MESSAGE_COUNTER,
        # the hub vector is a deterministic function of the authority
        # vector, so authority movement alone is a faithful convergence
        # signal (and, unlike a hub+auth sum, cannot cancel out)
        value_fn=lambda record: record[1][1],
        truth=exact_hits(graph),
        truth_tolerance=truth_tolerance,
    )
    return BulkJob(
        spec=spec,
        initial_records=initial,
        statics={
            "edges": edge_records,
            "norm-seed": [("norm", 0.0)],
        },
        compensation=HitsCompensation(),
        invariants=[KeySetPreserved()],
    )
