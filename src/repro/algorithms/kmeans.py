"""K-Means (Lloyd's algorithm) as a bulk iteration (extension scope).

Schelter et al. discuss compensable fixpoint algorithms beyond graph
propagation; K-Means is the classic bulk-iterative workload on dataflow
engines (small broadcast state — the centroids — recomputed from a large
static point set every superstep), and it admits a simple compensation:
re-initialize lost centroids (here: to their initial positions). The
algorithm then continues Lloyd iterations from a valid centroid set; the
objective keeps decreasing, though it may reach a different local
optimum than the failure-free run — which is exactly the "converges to
*a* correct solution" guarantee this family of algorithms offers.

Dataflow:

* ``assign-points`` (cross): every point paired with every (broadcast)
  centroid, emitting ``(point, (distance, centroid, coords))``;
* ``nearest-centroid`` (reduce): minimum distance per point;
* ``centroid-contributions`` (map) + ``sum-clusters`` (reduce): per-
  centroid coordinate sums and counts;
* ``recompute-centroids`` (co-group with the old centroids): the new
  mean, or the old position for centroids that attracted no points.
"""

from __future__ import annotations

import math
import random
from typing import Any, Sequence

from ..core.compensation import CompensationContext, CompensationFunction
from ..core.guarantees import KeySetPreserved
from ..dataflow.datatypes import KeySpec, first_field
from ..dataflow.plan import Plan
from ..errors import GraphError
from ..iteration.bulk import BulkIterationSpec
from ..iteration.termination import FixedSupersteps
from .base import BulkJob
from .reference import exact_kmeans

#: the centroid-id key the state is partitioned by.
CENTROID_KEY: KeySpec = first_field("centroid")

#: the point-id key used for the per-point minimum.
POINT_KEY: KeySpec = first_field("point")

#: counter whose per-superstep increase is the "messages" statistic.
MESSAGE_COUNTER = "records_in.sum-clusters"


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def kmeans_plan() -> Plan:
    """Build the K-Means step dataflow.

    Sources: ``centroids`` (state, ``(cid, coords)``) and ``points``
    (static, ``(pid, coords)``). Sink: ``recompute-centroids``.
    """
    plan = Plan("kmeans-step")
    centroids = plan.source("centroids", partitioned_by=CENTROID_KEY)
    points = plan.source("points")

    assignments = points.cross(
        centroids,
        fn=lambda point, centroid: (
            point[0],
            (_distance(point[1], centroid[1]), centroid[0], point[1]),
        ),
        name="assign-points",
    )
    nearest = assignments.reduce_by_key(
        POINT_KEY,
        fn=lambda left, right: left if left[1][0] <= right[1][0] else right,
        name="nearest-centroid",
    )
    contributions = nearest.map(
        lambda record: (record[1][1], (record[1][2], 1)),
        name="centroid-contributions",
    )
    sums = contributions.reduce_by_key(
        CENTROID_KEY,
        fn=lambda left, right: (
            left[0],
            (
                tuple(a + b for a, b in zip(left[1][0], right[1][0])),
                left[1][1] + right[1][1],
            ),
        ),
        name="sum-clusters",
    )

    def update(key: Any, summed: list[Any], old: list[Any]):
        if summed:
            total, count = summed[0][1]
            yield (key, tuple(x / count for x in total))
        elif old:
            yield old[0]

    sums.co_group(
        centroids,
        left_key=CENTROID_KEY,
        right_key=CENTROID_KEY,
        fn=update,
        name="recompute-centroids",
        preserves="left",
    )
    return plan


class KMeansCompensation(CompensationFunction):
    """``fix-centroids``: reset lost centroids to their initial positions."""

    name = "fix-centroids"

    def compensate_partition(
        self,
        partition_id: int,
        records: list[Any] | None,
        aggregate: Any,
        ctx: CompensationContext,
    ) -> list[Any]:
        if records is not None:
            return records
        return ctx.initial_partition(partition_id)


def kmeans(
    points: Sequence[tuple[float, ...]],
    k: int,
    iterations: int = 20,
    seed: int = 42,
    with_truth: bool = True,
) -> BulkJob:
    """Build a runnable K-Means job.

    Initial centroids are a seeded random sample of the points. When
    ``with_truth`` is set, the ground truth is the failure-free Lloyd
    fixpoint after ``iterations`` steps (exact agreement only holds for
    failure-free runs — a compensated run may legitimately land in a
    different local optimum).
    """
    points = [tuple(float(x) for x in p) for p in points]
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    if len(points) < k:
        raise GraphError(f"need at least k={k} points, got {len(points)}")
    rng = random.Random(seed)
    initial_centroids = rng.sample(points, k)
    centroid_records = [(cid, coords) for cid, coords in enumerate(initial_centroids)]
    point_records = [(pid, coords) for pid, coords in enumerate(points)]
    truth = None
    if with_truth:
        truth = dict(
            enumerate(exact_kmeans(points, initial_centroids, iterations))
        )
    spec = BulkIterationSpec(
        name="kmeans",
        step_plan=kmeans_plan(),
        state_source="centroids",
        next_state_output="recompute-centroids",
        state_key=CENTROID_KEY,
        termination=FixedSupersteps(iterations),
        # Supersteps hit by failures do not count toward FixedSupersteps
        # (termination is never evaluated on them), so leave headroom for
        # runs with injected failures.
        max_supersteps=iterations * 2 + 10,
        message_counter=MESSAGE_COUNTER,
        truth=truth,
    )
    return BulkJob(
        spec=spec,
        initial_records=centroid_records,
        statics={"points": point_records},
        compensation=KMeansCompensation(),
        invariants=[KeySetPreserved()],
    )
