"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Optimistic recovery for iterative dataflows: a simulated-engine "
        "reproduction of Dudoladov et al., SIGMOD 2015"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
